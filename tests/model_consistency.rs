//! Cross-crate physical-model consistency checks.

use ring_wdm_onoc::prelude::*;
use ring_wdm_onoc::topology::{SpectrumEngine, Transmission};

fn instance_with(nw: usize, options: EvalOptions) -> ProblemInstance {
    ProblemInstance::new(
        OnocArchitecture::paper_architecture(nw),
        ring_wdm_onoc::app::workloads::paper_mapped_application(),
        options,
    )
    .unwrap()
}

#[test]
fn ber_is_insensitive_to_comb_size_for_frugal_allocations() {
    // Fig. 6(b) observation: "as NW increases, the BER is nearly unchanged"
    // — with constraint-aware packing the frugal allocation keeps its
    // channels spread, so BER moves very little across comb sizes.
    let mut bers = Vec::new();
    for nw in [4usize, 8, 12] {
        let instance = ProblemInstance::paper_with_wavelengths(nw);
        let evaluator = instance.evaluator();
        let alloc = instance.allocation_from_counts(&[1; 6]).unwrap();
        bers.push(evaluator.evaluate(&alloc).unwrap().avg_log_ber);
    }
    let spread = bers.iter().fold(f64::NEG_INFINITY, |m, &b| m.max(b))
        - bers.iter().fold(f64::INFINITY, |m, &b| m.min(b));
    assert!(
        spread < 0.4,
        "frugal BER varies too much across NW: {bers:?}"
    );
}

#[test]
fn dense_crosstalk_is_a_material_fraction_of_the_noise() {
    // With Table-I parameters the unattenuated P0 floor (−30 dBm) always
    // dominates the noise, but for dense allocations the crosstalk sum must
    // still be a material fraction of it — that modulation is exactly what
    // separates the BER endpoints of Fig. 6(b).
    let instance = ProblemInstance::paper_with_wavelengths(8);
    let alloc = instance
        .allocation_from_counts(&[4, 4, 8, 4, 4, 8])
        .unwrap();
    let app = instance.app();
    let traffic: Vec<Transmission> = app
        .graph()
        .comms()
        .map(|(id, _)| Transmission::new(id.0, *app.route(id), alloc.channels(id)))
        .collect();
    let engine = SpectrumEngine::new(instance.arch(), &traffic).unwrap();
    let reports = engine.analyze().unwrap();
    let p0 = instance.arch().laser().power_off().to_milliwatts();
    let material = reports
        .iter()
        .filter(|r| r.crosstalk.value() > 0.15 * p0.value())
        .count();
    assert!(
        material * 2 > reports.len(),
        "crosstalk should be material on most dense receivers ({material}/{})",
        reports.len()
    );
}

#[test]
fn p0_floor_dominates_for_the_frugal_allocation() {
    // Conversely, with one well-separated wavelength per communication the
    // Lorentzian leakage is tiny and the noise is essentially P0.
    let instance = ProblemInstance::paper_with_wavelengths(12);
    let alloc = instance.allocation_from_counts(&[1; 6]).unwrap();
    let app = instance.app();
    let traffic: Vec<Transmission> = app
        .graph()
        .comms()
        .map(|(id, _)| Transmission::new(id.0, *app.route(id), alloc.channels(id)))
        .collect();
    let engine = SpectrumEngine::new(instance.arch(), &traffic).unwrap();
    for r in engine.analyze().unwrap() {
        assert!(
            r.crosstalk < r.noise * 0.6,
            "crosstalk {} should stay below the P0 floor share of {}",
            r.crosstalk,
            r.noise
        );
    }
}

#[test]
fn elementwise_model_improves_or_preserves_every_receiver() {
    let paper = instance_with(8, EvalOptions::default());
    let element = instance_with(
        8,
        EvalOptions {
            crosstalk_model: CrosstalkModel::Elementwise,
            ..EvalOptions::default()
        },
    );
    for counts in [[2usize, 3, 4, 3, 2, 4], [4, 4, 8, 4, 4, 8]] {
        let a = paper
            .evaluator()
            .evaluate(&paper.allocation_from_counts(&counts).unwrap())
            .unwrap();
        let b = element
            .evaluator()
            .evaluate(&element.allocation_from_counts(&counts).unwrap())
            .unwrap();
        assert!(b.avg_log_ber <= a.avg_log_ber + 1e-12);
        // Time and energy are unaffected by the crosstalk model.
        assert_eq!(a.exec_time, b.exec_time);
        assert!((a.bit_energy.value() - b.bit_energy.value()).abs() < 1e-9);
    }
}

#[test]
fn linear_convention_is_orders_of_magnitude_more_optimistic() {
    let paper = instance_with(8, EvalOptions::default());
    let linear = instance_with(
        8,
        EvalOptions {
            ber_convention: BerConvention::Linear,
            ..EvalOptions::default()
        },
    );
    let counts = [3usize, 4, 8, 5, 3, 8];
    let a = paper
        .evaluator()
        .evaluate(&paper.allocation_from_counts(&counts).unwrap())
        .unwrap();
    let b = linear
        .evaluator()
        .evaluate(&linear.allocation_from_counts(&counts).unwrap())
        .unwrap();
    assert!(
        a.avg_log_ber - b.avg_log_ber > 2.0,
        "dB {} vs linear {}",
        a.avg_log_ber,
        b.avg_log_ber
    );
}

#[test]
fn wider_channel_spacing_improves_dense_ber() {
    // Chittamuru-style: same count vector, fewer channels in the same FSR
    // ⇒ wider spacing ⇒ better BER.
    let dense = |nw: usize| {
        let instance = ProblemInstance::paper_with_wavelengths(nw);
        let evaluator = instance.evaluator();
        let counts = [2usize, 2, 4, 2, 2, 4];
        evaluator
            .evaluate(&instance.allocation_from_counts(&counts).unwrap())
            .unwrap()
            .avg_log_ber
    };
    let wide = dense(4); // 3.2 nm spacing
    let narrow = dense(16); // 0.8 nm spacing
    assert!(
        wide < narrow,
        "wide spacing ({wide}) should beat narrow spacing ({narrow})"
    );
}

#[test]
fn path_loss_grows_with_distance_and_stack_depth() {
    let instance = ProblemInstance::paper_with_wavelengths(8);
    let arch = instance.arch();
    let grid = arch.grid();
    let short = vec![Transmission::new(
        0,
        arch.route(NodeId(0), NodeId(1), Direction::Clockwise),
        vec![grid.channel(0).unwrap()],
    )];
    let long = vec![Transmission::new(
        0,
        arch.route(NodeId(0), NodeId(9), Direction::Clockwise),
        vec![grid.channel(0).unwrap()],
    )];
    let loss = |traffic: &Vec<Transmission>| {
        SpectrumEngine::new(arch, traffic)
            .unwrap()
            .analyze()
            .unwrap()[0]
            .path_loss
    };
    assert!(loss(&long).value() < loss(&short).value());
}
