//! Integration: static design-time allocation vs the dynamic runtime
//! allocator, across the facade.

use ring_wdm_onoc::prelude::*;
use ring_wdm_onoc::sim::{DynamicPolicy, DynamicSimulator};
use ring_wdm_onoc::wa::exhaustive;

#[test]
fn full_burst_dynamic_bounds_the_static_optimum_from_below() {
    for nw in [4usize, 8, 12] {
        let instance = ProblemInstance::paper_with_wavelengths(nw);
        let evaluator = instance.evaluator();
        let (_, static_best) = exhaustive::time_optimal_counts(&instance, &evaluator);
        let dynamic = DynamicSimulator::new(
            instance.app(),
            nw,
            instance.options().rate,
            DynamicPolicy::Greedy { cap: nw },
        )
        .run();
        assert!(
            (dynamic.makespan as f64) <= static_best.value() + 1e-9,
            "NW = {nw}: dynamic {} should lower-bound static {static_best}",
            dynamic.makespan
        );
        // And neither can beat the zero-communication asymptote.
        assert!(dynamic.makespan >= 20_000);
    }
}

#[test]
fn single_lane_dynamic_equals_the_frugal_static_schedule_when_uncontended() {
    // With ≥ 2 wavelengths the paper app never blocks under Single policy,
    // so the dynamic run must reproduce the [1,…,1] static schedule.
    let instance = ProblemInstance::paper_with_wavelengths(4);
    let frugal = instance.allocation_from_counts(&[1; 6]).unwrap();
    let static_run = Simulator::new(instance.app(), &frugal, instance.options().rate)
        .unwrap()
        .run()
        .unwrap();
    let dynamic = DynamicSimulator::new(
        instance.app(),
        4,
        instance.options().rate,
        DynamicPolicy::Single,
    )
    .run();
    assert_eq!(dynamic.makespan, static_run.makespan);
    assert_eq!(dynamic.blocked_attempts, 0);
}

#[test]
fn dynamic_single_on_one_wavelength_serialises() {
    let instance = ProblemInstance::paper_with_wavelengths(1);
    let dynamic = DynamicSimulator::new(
        instance.app(),
        1,
        instance.options().rate,
        DynamicPolicy::Single,
    )
    .run();
    assert!(dynamic.blocked_attempts > 0);
    assert!(dynamic.makespan > 38_000);
    assert!(dynamic.conflicts.is_empty());
}

#[test]
fn dynamic_gap_shrinks_as_the_comb_grows() {
    // The advantage of runtime bursts over the static optimum diminishes
    // once the static allocation already saturates the useful bandwidth.
    let gap = |nw: usize| {
        let instance = ProblemInstance::paper_with_wavelengths(nw);
        let evaluator = instance.evaluator();
        let (_, static_best) = exhaustive::time_optimal_counts(&instance, &evaluator);
        let dynamic = DynamicSimulator::new(
            instance.app(),
            nw,
            instance.options().rate,
            DynamicPolicy::Greedy { cap: nw },
        )
        .run();
        static_best.value() - dynamic.makespan as f64
    };
    let gap4 = gap(4);
    let gap8 = gap(8);
    assert!(
        gap8 <= gap4,
        "dynamic advantage should shrink: 4λ gap {gap4}, 8λ gap {gap8}"
    );
}
