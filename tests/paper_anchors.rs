//! End-to-end regression of the paper's headline numbers
//! (EXPERIMENTS.md, experiment E6) through the facade crate.

use ring_wdm_onoc::prelude::*;
use ring_wdm_onoc::wa::exhaustive;

#[test]
fn minimum_execution_time_is_20kcc() {
    let instance = ProblemInstance::paper_with_wavelengths(8);
    let schedule = Schedule::new(instance.app().graph(), instance.options().rate).unwrap();
    assert_eq!(schedule.min_makespan().to_kilocycles(), 20.0);
}

#[test]
fn frugal_allocation_anchor() {
    // The paper's minimum-energy point: one wavelength per communication.
    let instance = ProblemInstance::paper_with_wavelengths(12);
    let evaluator = instance.evaluator();
    let alloc = instance.allocation_from_counts(&[1; 6]).unwrap();
    let o = evaluator.evaluate(&alloc).unwrap();
    // Paper Fig. 6: rightmost point at ≈40 kcc; the reconstruction gives 38.
    assert_eq!(o.exec_time.to_kilocycles(), 38.0);
    // Energy calibration: ≈3.5 fJ/bit.
    assert!(
        (2.5..=5.0).contains(&o.bit_energy.value()),
        "{}",
        o.bit_energy
    );
    // Canonical packing puts c0/c1 on adjacent channels: decent BER.
    assert!((-3.85..=-3.2).contains(&o.avg_log_ber), "{}", o.avg_log_ber);

    // With maximum spectral spread the same count vector reaches the
    // paper's best BER (≈ −3.7).
    let mut spread = Allocation::new(6, 12);
    for (k, w) in [0usize, 11, 0, 0, 11, 0].into_iter().enumerate() {
        spread.set(
            ring_wdm_onoc::app::CommId(k),
            ring_wdm_onoc::photonics::WavelengthId(w),
            true,
        );
    }
    let o_spread = evaluator.evaluate(&spread).unwrap();
    assert!(
        (-3.85..=-3.5).contains(&o_spread.avg_log_ber),
        "spread frugal BER {}",
        o_spread.avg_log_ber
    );
}

#[test]
fn exhaustive_optima_match_paper_annotations() {
    // Paper GA-found bests: 28.3 / 23.8 / 22.96 kcc for 4 / 8 / 12 λ.
    // The reconstructed instance's true optima (exhaustive oracle) are
    // 28.0 / 23.7 / 22.39 — the paper's own GA stopped slightly above the
    // 12-λ optimum, so ours may be lower but never higher.
    let expected = [(4usize, 28.0f64), (8, 23.7), (12, 22.3905)];
    for (nw, kcc) in expected {
        let instance = ProblemInstance::paper_with_wavelengths(nw);
        let evaluator = instance.evaluator();
        let (_, makespan) = exhaustive::time_optimal_counts(&instance, &evaluator);
        assert!(
            (makespan.to_kilocycles() - kcc).abs() < 1e-3,
            "NW = {nw}: expected {kcc} kcc, got {makespan}"
        );
        // Within 3% of (and not above) the paper's annotation.
        let paper = match nw {
            4 => 28.3,
            8 => 23.8,
            _ => 22.96,
        };
        let ours = makespan.to_kilocycles();
        assert!(
            ours <= paper + 1e-9 && (paper - ours) / paper < 0.03,
            "NW = {nw}: {makespan} too far from the paper's {paper} kcc"
        );
    }
}

#[test]
fn ber_window_matches_figure_6b() {
    // Every valid allocation of the 8-λ instance must land in (or near)
    // the paper's reported log10(BER) window.
    let instance = ProblemInstance::paper_with_wavelengths(8);
    let evaluator = instance.evaluator();
    for counts in [
        [1usize, 1, 1, 1, 1, 1],
        [1, 4, 2, 1, 2, 2],
        [2, 4, 3, 3, 2, 3],
        [3, 4, 8, 5, 3, 8],
        [1, 7, 4, 4, 3, 5],
    ] {
        let alloc = instance.allocation_from_counts(&counts).unwrap();
        let o = evaluator.evaluate(&alloc).unwrap();
        assert!(
            (-3.9..=-2.8).contains(&o.avg_log_ber),
            "counts {counts:?}: log BER {} outside window",
            o.avg_log_ber
        );
    }
}

#[test]
fn energy_spans_the_figure_6a_band() {
    // Fig. 6(a): ~3.5 fJ/bit (frugal) up to ~8 fJ/bit (dense 12-λ points).
    let instance = ProblemInstance::paper_with_wavelengths(12);
    let evaluator = instance.evaluator();
    let frugal = evaluator
        .evaluate(&instance.allocation_from_counts(&[1; 6]).unwrap())
        .unwrap()
        .bit_energy;
    let rich = evaluator
        .evaluate(
            &instance
                .allocation_from_counts(&[2, 8, 6, 6, 4, 7])
                .unwrap(),
        )
        .unwrap()
        .bit_energy;
    assert!(
        rich.value() / frugal.value() > 1.4,
        "span {frugal} … {rich} too flat"
    );
    assert!(rich.value() < 20.0, "dense point {rich} unreasonably high");
}

#[test]
fn energy_ordering_follows_total_wavelength_count() {
    // The paper: "energy consumption per bit increases with the number of
    // reserved wavelengths". Verify monotonicity along a chain of nested
    // allocations (each adds wavelengths to the previous one).
    let instance = ProblemInstance::paper_with_wavelengths(12);
    let evaluator = instance.evaluator();
    let chain = [
        [1usize, 1, 1, 1, 1, 1],
        [1, 4, 2, 3, 2, 3],
        [1, 5, 4, 2, 4, 4],
        [2, 8, 6, 6, 4, 7],
    ];
    let mut last = 0.0f64;
    for counts in chain {
        let o = evaluator
            .evaluate(&instance.allocation_from_counts(&counts).unwrap())
            .unwrap();
        assert!(
            o.bit_energy.value() > last,
            "energy did not grow at {counts:?}: {} after {last}",
            o.bit_energy
        );
        last = o.bit_energy.value();
    }
}

#[test]
fn paper_chromosome_notation_roundtrip() {
    // §III-D's worked example: [1000/0001/0001/0001/1000/1000] on 4 λ is a
    // valid allocation of one wavelength per communication.
    let instance = ProblemInstance::paper_with_wavelengths(4);
    let genes: Vec<bool> = "100000010001000110001000"
        .chars()
        .map(|c| c == '1')
        .collect();
    let alloc = Allocation::from_genes(genes, 4).unwrap();
    assert_eq!(alloc.to_string(), "[1000/0001/0001/0001/1000/1000]");
    assert!(instance.checker().is_valid(&alloc));
    let o = instance.evaluator().evaluate(&alloc).unwrap();
    assert_eq!(o.exec_time.to_kilocycles(), 38.0);
}
