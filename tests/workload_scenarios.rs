//! Integration: the full pipeline on workloads beyond the paper's virtual
//! application — the generators must compose with mapping, allocation,
//! optimisation and simulation.

use rand::SeedableRng;
use rand::rngs::StdRng;
use ring_wdm_onoc::app::{MappedApplication, Mapping, RouteStrategy, workloads};
use ring_wdm_onoc::prelude::*;
use ring_wdm_onoc::topology::RingTopology;
use ring_wdm_onoc::wa::heuristics;

fn instance_for(
    graph: ring_wdm_onoc::app::TaskGraph,
    nodes: Vec<NodeId>,
    nw: usize,
) -> ProblemInstance {
    let mapping = Mapping::new(&graph, nodes).unwrap();
    let app = MappedApplication::new(
        graph,
        mapping,
        RingTopology::new(16),
        RouteStrategy::Shortest,
    )
    .unwrap();
    let arch = OnocArchitecture::paper_architecture(nw);
    ProblemInstance::new(arch, app, EvalOptions::default()).unwrap()
}

#[test]
fn pipeline_workload_end_to_end() {
    let graph = workloads::pipeline(6, Cycles::from_kilocycles(2.0), Bits::from_kilobits(4.0));
    let nodes: Vec<NodeId> = (0..6).map(|i| NodeId(2 * i)).collect();
    let instance = instance_for(graph, nodes, 8);
    let evaluator = instance.evaluator();

    // A pipeline's stages never share waveguide segments under this spaced
    // placement, so first-fit puts everything on λ1.
    let ff = heuristics::first_fit(&instance).unwrap();
    let o = evaluator.evaluate(&ff).unwrap();
    // 6 stages × 2 kcc + 5 hops × 4 kcc serial transmission.
    assert_eq!(o.exec_time.to_kilocycles(), 32.0);

    // Greedy spends the comb to collapse the communication time.
    let greedy = heuristics::greedy_makespan(&instance, &evaluator).unwrap();
    let og = evaluator.evaluate(&greedy).unwrap();
    assert!(og.exec_time < o.exec_time);

    // The DES agrees.
    let report = Simulator::new(instance.app(), &greedy, instance.options().rate)
        .unwrap()
        .run()
        .unwrap();
    assert!((report.makespan as f64 - og.exec_time.value()).abs() <= 6.0);
    assert!(report.conflicts.is_empty());
}

#[test]
fn fork_join_workload_end_to_end() {
    let graph = workloads::fork_join(4, Cycles::from_kilocycles(3.0), Bits::from_kilobits(6.0));
    let nodes: Vec<NodeId> = vec![
        NodeId(0),
        NodeId(2),
        NodeId(5),
        NodeId(9),
        NodeId(12),
        NodeId(15),
    ];
    let instance = instance_for(graph, nodes, 12);
    let evaluator = instance.evaluator();
    let ga = Nsga2::new(
        &evaluator,
        Nsga2Config {
            population_size: 60,
            generations: 30,
            objectives: ObjectiveSet::TimeEnergy,
            seed: 4,
            ..Nsga2Config::default()
        },
    )
    .run();
    assert!(!ga.front.is_empty());
    // The scatter/gather edges all funnel through the source and sink ONIs,
    // so the fastest point still pays serialisation there.
    let schedule = Schedule::new(instance.app().graph(), instance.options().rate).unwrap();
    let best = ga
        .front
        .points()
        .iter()
        .map(|p| p.objectives.exec_time.value())
        .fold(f64::INFINITY, f64::min);
    assert!(best >= schedule.min_makespan().value());
}

#[test]
fn butterfly_workload_maps_and_simulates() {
    // 4-lane butterfly: 12 tasks, 16 comms — a dense communication pattern.
    let graph = workloads::butterfly(2, Cycles::from_kilocycles(1.0), Bits::from_kilobits(2.0));
    let mut rng = StdRng::seed_from_u64(31);
    let nodes = workloads::random_mapping(&mut rng, graph.task_count(), 16);
    let instance = instance_for(graph, nodes, 16);
    let evaluator = instance.evaluator();

    if let Ok(alloc) = heuristics::first_fit(&instance) {
        let o = evaluator.evaluate(&alloc).unwrap();
        assert!(o.exec_time.is_finite());
        let report = Simulator::new(instance.app(), &alloc, instance.options().rate)
            .unwrap()
            .run()
            .unwrap();
        assert!(report.conflicts.is_empty());
    } else {
        panic!("16-λ comb should fit a 4-lane butterfly under any mapping");
    }
}

#[test]
fn reduction_tree_respects_critical_path() {
    let graph =
        workloads::reduction_tree(8, Cycles::from_kilocycles(2.0), Bits::from_kilobits(3.0));
    assert_eq!(graph.critical_path().unwrap().to_kilocycles(), 8.0);
    let mut rng = StdRng::seed_from_u64(5);
    let nodes = workloads::random_mapping(&mut rng, graph.task_count(), 16);
    let instance = instance_for(graph, nodes, 16);
    let evaluator = instance.evaluator();
    let greedy = heuristics::greedy_makespan(&instance, &evaluator);
    if let Ok(alloc) = greedy {
        let o = evaluator.evaluate(&alloc).unwrap();
        assert!(o.exec_time.to_kilocycles() >= 8.0);
    }
}

#[test]
fn dot_export_is_consistent_with_the_instance() {
    let app = workloads::paper_mapped_application();
    let dot = ring_wdm_onoc::app::dot::mapped_application_dot(&app);
    // Every mapped node appears in the rendering.
    for node in app.mapping().as_slice() {
        assert!(dot.contains(&format!("@ {node}")), "missing {node}");
    }
}
