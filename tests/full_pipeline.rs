//! Full-pipeline integration: GA search → front validation → discrete-event
//! replay, spanning every crate in the workspace.

use ring_wdm_onoc::prelude::*;

fn quick_ga(
    instance: &ProblemInstance,
    set: ObjectiveSet,
    seed: u64,
) -> ring_wdm_onoc::wa::Nsga2Outcome {
    let evaluator = instance.evaluator();
    Nsga2::new(
        &evaluator,
        Nsga2Config {
            population_size: 80,
            generations: 40,
            objectives: set,
            seed,
            ..Nsga2Config::default()
        },
    )
    .run()
}

#[test]
fn ga_front_points_replay_cleanly_in_the_simulator() {
    let instance = ProblemInstance::paper_with_wavelengths(8);
    let outcome = quick_ga(&instance, ObjectiveSet::TimeEnergy, 3);
    assert!(!outcome.front.is_empty());
    for point in outcome.front.points() {
        let sim = Simulator::new(instance.app(), &point.allocation, instance.options().rate)
            .expect("front allocations bind to the application");
        let report = sim.run().expect("front allocations simulate");
        // Statically valid ⇒ dynamically conflict-free.
        assert!(report.conflicts.is_empty(), "{}", point.allocation);
        // DES makespan agrees with the objective up to integer rounding.
        let analytic = point.objectives.exec_time.value();
        assert!(
            (report.makespan as f64 - analytic).abs() <= 6.0,
            "DES {} vs analytic {analytic}",
            report.makespan
        );
    }
}

#[test]
fn front_improves_with_more_wavelengths() {
    // Fig. 6 trend across comb sizes: best execution time decreases
    // (4 λ → 8 λ strictly, 8 λ → 12 λ weakly).
    let best = |nw: usize| {
        let instance = ProblemInstance::paper_with_wavelengths(nw);
        quick_ga(&instance, ObjectiveSet::TimeEnergy, 17)
            .front
            .points()
            .iter()
            .map(|p| p.objectives.exec_time.to_kilocycles())
            .fold(f64::INFINITY, f64::min)
    };
    let (b4, b8, b12) = (best(4), best(8), best(12));
    assert!(b8 < b4, "8λ ({b8}) should beat 4λ ({b4})");
    assert!(
        b12 <= b8 + 0.5,
        "12λ ({b12}) should not regress vs 8λ ({b8})"
    );
    // And everything is bounded below by the 20 kcc asymptote.
    assert!(b12 >= 20.0);
}

#[test]
fn three_objective_front_covers_two_objective_fronts() {
    // Every point on a 2-objective front must be weakly covered by the
    // 3-objective front (same seed ⇒ same explored space is not guaranteed,
    // so check against exhaustive count-space fronts instead).
    use ring_wdm_onoc::wa::exhaustive;
    let instance = ProblemInstance::paper_with_wavelengths(4);
    let evaluator = instance.evaluator();
    let te = exhaustive::enumerate_count_vectors(&instance, &evaluator, ObjectiveSet::TimeEnergy);
    let teb =
        exhaustive::enumerate_count_vectors(&instance, &evaluator, ObjectiveSet::TimeEnergyBer);
    for p in te.front.points() {
        let v3 = p.objectives.values(ObjectiveSet::TimeEnergyBer);
        let covered = teb
            .front
            .points()
            .iter()
            .any(|q| q.values == v3 || !ring_wdm_onoc::wa::dominates(&v3, &q.values));
        assert!(covered);
        // Stronger: no 3-objective front point strictly dominates a
        // 2-objective-front point in the 3-objective space.
        assert!(
            !teb.front
                .points()
                .iter()
                .any(|q| ring_wdm_onoc::wa::dominates(&q.values, &v3) && q.values[0] != v3[0]),
        );
    }
}

#[test]
fn archive_front_dominates_final_population_front() {
    let instance = ProblemInstance::paper_with_wavelengths(8);
    let evaluator = instance.evaluator();
    let run = |track: bool| {
        Nsga2::new(
            &evaluator,
            Nsga2Config {
                population_size: 60,
                generations: 30,
                objectives: ObjectiveSet::TimeEnergy,
                seed: 5,
                track_archive: track,
                ..Nsga2Config::default()
            },
        )
        .run()
    };
    let with_archive = run(true);
    let without = run(false);
    // The archive saw everything the final population saw (same seed ⇒
    // identical evolution), so its front must weakly cover the other.
    for p in without.front.points() {
        let covered =
            with_archive.front.points().iter().any(|q| {
                q.values == p.values || ring_wdm_onoc::wa::dominates(&q.values, &p.values)
            });
        assert!(covered, "population point {:?} not covered", p.values);
    }
}

#[test]
fn evaluator_and_manual_composition_agree() {
    // The Evaluator pipeline must equal hand-wiring schedule + spectrum.
    use ring_wdm_onoc::topology::{SpectrumEngine, Transmission};
    let instance = ProblemInstance::paper_with_wavelengths(8);
    let evaluator = instance.evaluator();
    let alloc = instance
        .allocation_from_counts(&[2, 3, 4, 3, 2, 4])
        .unwrap();
    let objectives = evaluator.evaluate(&alloc).unwrap();

    // Manual schedule.
    let schedule = Schedule::new(instance.app().graph(), instance.options().rate).unwrap();
    let manual_time = schedule.evaluate(&alloc.counts()).unwrap().makespan;
    assert_eq!(objectives.exec_time, manual_time);

    // Manual spectrum → BER.
    let app = instance.app();
    let traffic: Vec<Transmission> = app
        .graph()
        .comms()
        .map(|(id, _)| Transmission::new(id.0, *app.route(id), alloc.channels(id)))
        .collect();
    let engine = SpectrumEngine::new(instance.arch(), &traffic).unwrap();
    let reports = engine.analyze().unwrap();
    let mean_ber = reports
        .iter()
        .map(|r| r.signal_noise().ber(BerConvention::PaperDb))
        .sum::<f64>()
        / reports.len() as f64;
    assert!((objectives.avg_log_ber - mean_ber.log10()).abs() < 1e-12);
}
