//! The classical heuristics are sanity baselines: valid, reproducible and
//! never better than the exhaustive Pareto front.

use rand::SeedableRng;
use rand::rngs::StdRng;
use ring_wdm_onoc::prelude::*;
use ring_wdm_onoc::wa::{dominates, exhaustive, heuristics};

#[test]
fn heuristics_never_beat_the_exhaustive_time_optimum() {
    // Execution time depends only on the wavelength *counts*, so the
    // count-level oracle is exact for it. (BER and energy also depend on
    // the wavelength *positions*, where a heuristic can legitimately beat
    // the oracle's canonical packing — see
    // `heuristics_never_dominate_the_gene_level_front` below.)
    let instance = ProblemInstance::paper_with_wavelengths(8);
    let evaluator = instance.evaluator();
    let (_, best_time) = exhaustive::time_optimal_counts(&instance, &evaluator);

    let mut rng = StdRng::seed_from_u64(1);
    let baselines = vec![
        heuristics::first_fit(&instance).unwrap(),
        heuristics::most_used(&instance).unwrap(),
        heuristics::least_used(&instance).unwrap(),
        heuristics::random_single(&instance, &mut rng, 10_000).unwrap(),
        heuristics::greedy_makespan(&instance, &evaluator).unwrap(),
    ];
    for alloc in baselines {
        let o = evaluator.evaluate(&alloc).expect("baselines are valid");
        assert!(
            o.exec_time >= best_time,
            "heuristic {alloc} beats the exhaustive optimum {best_time}"
        );
    }
}

#[test]
fn heuristics_never_dominate_the_gene_level_front() {
    // On an instance small enough for full gene-space enumeration the
    // oracle front is exact in all objectives.
    use ring_wdm_onoc::app::{MappedApplication, Mapping, RouteStrategy, workloads};
    use ring_wdm_onoc::topology::RingTopology;
    use ring_wdm_onoc::units::{Bits, Cycles};

    let graph = workloads::pipeline(3, Cycles::new(200.0), Bits::new(600.0));
    let mapping = Mapping::new(&graph, vec![NodeId(0), NodeId(1), NodeId(3)]).unwrap();
    let app = MappedApplication::new(
        graph,
        mapping,
        RingTopology::new(4),
        RouteStrategy::Shortest,
    )
    .unwrap();
    let arch = OnocArchitecture::builder()
        .grid_dimensions(2, 2)
        .wavelengths(4)
        .build()
        .unwrap();
    let instance =
        ring_wdm_onoc::wa::ProblemInstance::new(arch, app, EvalOptions::default()).unwrap();
    let evaluator = instance.evaluator();
    let oracle =
        exhaustive::enumerate_gene_space(&instance, &evaluator, ObjectiveSet::TimeEnergyBer);

    let mut rng = StdRng::seed_from_u64(2);
    let baselines = vec![
        heuristics::first_fit(&instance).unwrap(),
        heuristics::most_used(&instance).unwrap(),
        heuristics::least_used(&instance).unwrap(),
        heuristics::random_single(&instance, &mut rng, 10_000).unwrap(),
        heuristics::greedy_makespan(&instance, &evaluator).unwrap(),
    ];
    for alloc in baselines {
        let o = evaluator.evaluate(&alloc).expect("baselines are valid");
        let v = o.values(ObjectiveSet::TimeEnergyBer);
        for p in oracle.front.points() {
            assert!(
                !dominates(&v, &p.values),
                "heuristic {alloc} dominates gene-level oracle point {:?}",
                p.values
            );
        }
    }
}

#[test]
fn single_wavelength_heuristics_sit_on_the_frugal_corner() {
    for nw in [4usize, 8, 12] {
        let instance = ProblemInstance::paper_with_wavelengths(nw);
        let evaluator = instance.evaluator();
        for alloc in [
            heuristics::first_fit(&instance).unwrap(),
            heuristics::most_used(&instance).unwrap(),
            heuristics::least_used(&instance).unwrap(),
        ] {
            let o = evaluator.evaluate(&alloc).unwrap();
            assert_eq!(
                o.exec_time.to_kilocycles(),
                38.0,
                "NW = {nw}: single-λ baselines always run in 38 kcc"
            );
        }
    }
}

#[test]
fn greedy_beats_every_single_wavelength_heuristic_on_time() {
    let instance = ProblemInstance::paper_with_wavelengths(8);
    let evaluator = instance.evaluator();
    let greedy = heuristics::greedy_makespan(&instance, &evaluator).unwrap();
    let greedy_time = evaluator.evaluate(&greedy).unwrap().exec_time;
    let ff = heuristics::first_fit(&instance).unwrap();
    let ff_time = evaluator.evaluate(&ff).unwrap().exec_time;
    assert!(greedy_time < ff_time);
    // …but pays for it in energy (the central trade-off).
    let greedy_energy = evaluator.evaluate(&greedy).unwrap().bit_energy;
    let ff_energy = evaluator.evaluate(&ff).unwrap().bit_energy;
    assert!(greedy_energy > ff_energy);
}

#[test]
fn most_used_reuses_wavelengths_across_disjoint_paths() {
    // On the paper instance c2 and c5 are unconstrained; Most-Used should
    // put them on an already-popular wavelength instead of a fresh one.
    let instance = ProblemInstance::paper_with_wavelengths(8);
    let alloc = heuristics::most_used(&instance).unwrap();
    let mut usage = std::collections::HashMap::<_, usize>::new();
    for k in 0..6 {
        for ch in alloc.channels(ring_wdm_onoc::app::CommId(k)) {
            *usage.entry(ch).or_default() += 1;
        }
    }
    assert!(
        usage.values().any(|&n| n >= 3),
        "most-used should concentrate: {usage:?}"
    );
}
