//! Reproducibility: every stochastic component is exactly deterministic
//! under a fixed seed, and deterministic components are pure.

use rand::SeedableRng;
use rand::rngs::StdRng;
use ring_wdm_onoc::prelude::*;
use ring_wdm_onoc::wa::{heuristics, mapping_search};

#[test]
fn ga_runs_are_bit_identical_per_seed() {
    let instance = ProblemInstance::paper_with_wavelengths(8);
    let evaluator = instance.evaluator();
    let run = |seed: u64| {
        let outcome = Nsga2::new(
            &evaluator,
            Nsga2Config {
                population_size: 50,
                generations: 20,
                objectives: ObjectiveSet::TimeEnergyBer,
                seed,
                ..Nsga2Config::default()
            },
        )
        .run();
        (
            outcome
                .front
                .points()
                .iter()
                .map(|p| (p.allocation.genes().to_vec(), p.values.clone()))
                .collect::<Vec<_>>(),
            outcome.stats,
        )
    };
    assert_eq!(run(123), run(123));
    let (front_a, _) = run(123);
    let (front_b, _) = run(124);
    assert_ne!(
        front_a, front_b,
        "different seeds should explore differently"
    );
}

#[test]
fn evaluation_is_pure() {
    let instance = ProblemInstance::paper_with_wavelengths(12);
    let evaluator = instance.evaluator();
    let alloc = instance
        .allocation_from_counts(&[2, 8, 6, 6, 4, 7])
        .unwrap();
    let a = evaluator.evaluate(&alloc).unwrap();
    let b = evaluator.evaluate(&alloc).unwrap();
    assert_eq!(a, b);
}

#[test]
fn random_heuristic_is_seed_deterministic() {
    let instance = ProblemInstance::paper_with_wavelengths(8);
    let a = heuristics::random_single(&instance, &mut StdRng::seed_from_u64(9), 1000).unwrap();
    let b = heuristics::random_single(&instance, &mut StdRng::seed_from_u64(9), 1000).unwrap();
    assert_eq!(a, b);
}

#[test]
fn mapping_search_is_seed_deterministic() {
    let arch = OnocArchitecture::paper_architecture(4);
    let graph = ring_wdm_onoc::app::workloads::paper_task_graph();
    let config = mapping_search::MappingSearchConfig {
        iterations: 20,
        restarts: 2,
        seed: 77,
        options: EvalOptions::default(),
    };
    let a = mapping_search::optimize_mapping(&arch, &graph, &config);
    let b = mapping_search::optimize_mapping(&arch, &graph, &config);
    assert_eq!(a.mapping, b.mapping);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.evaluated, b.evaluated);
}

#[test]
fn simulator_is_pure() {
    let instance = ProblemInstance::paper_with_wavelengths(8);
    let alloc = instance
        .allocation_from_counts(&[3, 4, 8, 5, 3, 8])
        .unwrap();
    let run = || {
        Simulator::new(instance.app(), &alloc, instance.options().rate)
            .unwrap()
            .run()
            .unwrap()
    };
    assert_eq!(run(), run());
}

#[test]
fn workload_generators_are_seed_deterministic() {
    use ring_wdm_onoc::app::workloads;
    let config = workloads::LayeredDagConfig::default();
    let a = workloads::random_layered_dag(&mut StdRng::seed_from_u64(5), &config);
    let b = workloads::random_layered_dag(&mut StdRng::seed_from_u64(5), &config);
    assert_eq!(a, b);
    let ma = workloads::random_mapping(&mut StdRng::seed_from_u64(5), 6, 16);
    let mb = workloads::random_mapping(&mut StdRng::seed_from_u64(5), 6, 16);
    assert_eq!(ma, mb);
}

#[test]
fn dynamic_simulator_is_pure() {
    use ring_wdm_onoc::sim::{DynamicPolicy, DynamicSimulator};

    let instance = ProblemInstance::paper_with_wavelengths(8);
    let run = || {
        DynamicSimulator::new(
            instance.app(),
            8,
            instance.options().rate,
            DynamicPolicy::Greedy { cap: 4 },
        )
        .run()
    };
    assert_eq!(run(), run());
}

#[test]
fn traffic_traces_are_seed_deterministic() {
    let config = TrafficConfig::paper_ring(TrafficPattern::UniformRandom, 0.02, 11);
    assert_eq!(generate(&config), generate(&config));
    let reseeded = TrafficConfig {
        seed: 12,
        ..config.clone()
    };
    assert_ne!(generate(&config), generate(&reseeded));
}

#[test]
fn open_loop_reports_are_pure() {
    use ring_wdm_onoc::sim::DynamicPolicy;
    use ring_wdm_onoc::topology::RingTopology;

    let config = TrafficConfig::paper_ring(TrafficPattern::BitReversal, 0.03, 5);
    let trace = generate(&config);
    let sim = OpenLoopSimulator::new(
        RingTopology::new(16),
        8,
        BitsPerCycle::new(1.0),
        WavelengthMode::Dynamic(DynamicPolicy::Single),
    );
    let a = sim.run(trace.source()).unwrap();
    let b = sim.run(trace.source()).unwrap();
    assert_eq!(a, b);
}

#[test]
fn sweeps_are_identical_across_thread_counts() {
    use ring_wdm_onoc::traffic::run_sweep;

    let grid = SweepGrid {
        injection_rates: vec![0.005, 0.02],
        horizon: 2_000,
        ..SweepGrid::saturation_default(33)
    };
    let serial = run_sweep(&grid, 1);
    let parallel = run_sweep(&grid, 3);
    let more_parallel = run_sweep(&grid, 7);
    assert_eq!(serial.results, parallel.results);
    assert_eq!(parallel.results, more_parallel.results);
    // And the whole sweep is a pure function of the grid.
    assert_eq!(parallel.results, run_sweep(&grid, 3).results);
}

#[test]
fn closed_loop_reports_are_pure_and_thread_count_independent() {
    use ring_wdm_onoc::sim::DynamicPolicy;
    use ring_wdm_onoc::topology::RingTopology;
    use ring_wdm_onoc::traffic::run_sweep;

    // Engine level: one closed-loop run is a pure function of its input.
    let config = TrafficConfig::paper_ring(TrafficPattern::UniformRandom, 0.05, 5);
    let trace = generate(&config);
    for injection in [
        InjectionMode::Credit { window: 2 },
        InjectionMode::Ecn { threshold: 0.3 },
    ] {
        let sim = OpenLoopSimulator::with_injection(
            RingTopology::new(16),
            4,
            BitsPerCycle::new(1.0),
            WavelengthMode::Dynamic(DynamicPolicy::Single),
            injection,
        );
        let a = sim.run(trace.source()).unwrap();
        let b = sim.run(trace.source()).unwrap();
        assert_eq!(a, b, "{injection:?}");
    }

    // Sweep level: credit-gated sweeps are bit-identical for any worker
    // head-count, like their open-loop counterparts.
    let grid = SweepGrid {
        injection_rates: vec![0.005, 0.08],
        horizon: 2_000,
        injection: InjectionMode::Credit { window: 2 },
        ..SweepGrid::saturation_default(34)
    };
    let serial = run_sweep(&grid, 1);
    let parallel = run_sweep(&grid, 5);
    assert_eq!(serial.results, parallel.results);
    assert!(
        serial.results.iter().any(|r| r.stall_mean > 0.0),
        "the saturated points must exercise the credit gate"
    );
}
