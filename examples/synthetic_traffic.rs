//! Generate synthetic traffic, drive it open loop, and sweep to
//! saturation — the workflow the `onoc-traffic` crate adds on top of the
//! paper's closed-loop task-graph evaluation.
//!
//! Run with `cargo run --release --example synthetic_traffic`.

use ring_wdm_onoc::prelude::*;
use ring_wdm_onoc::sim::DynamicPolicy;
use ring_wdm_onoc::traffic::OnOffConfig;

fn main() {
    // 1. One workload: bursty uniform-random traffic on the paper's ring.
    let config = TrafficConfig {
        burstiness: Some(OnOffConfig::default_bursty()),
        ..TrafficConfig::paper_ring(TrafficPattern::UniformRandom, 0.02, 42)
    };
    let trace = generate(&config);
    println!(
        "generated {} messages over {} cycles (mean offered load {:.1} bits/cycle)",
        trace.len(),
        config.horizon,
        config.offered_load()
    );

    // 2. Drive it through the open-loop simulator on an 8-λ comb.
    let sim = OpenLoopSimulator::new(
        ring_wdm_onoc::topology::RingTopology::new(16),
        8,
        BitsPerCycle::new(1.0),
        WavelengthMode::Dynamic(DynamicPolicy::Single),
    );
    let report = sim.run(trace.source()).expect("generated traces are valid");
    let latency = report.latency();
    println!(
        "delivered {} messages: latency mean {:.0} / p50 {:.0} / p99 {:.0} cycles, \
         {} queued, comb occupancy {:.2}%",
        report.records.len(),
        latency.mean,
        latency.p50,
        latency.p99,
        report.blocked_attempts,
        report.mean_wavelength_occupancy() * 100.0
    );

    // The three busiest flows by p99 latency.
    let mut flows = report.latency_by_flow();
    flows.sort_by(|a, b| b.1.p99.total_cmp(&a.1.p99));
    for ((src, dst), stats) in flows.iter().take(3) {
        println!(
            "  hottest flow {src}→{dst}: {} msgs, p99 {:.0} cycles",
            stats.count, stats.p99
        );
    }

    // 3. Sweep the full pattern panel to saturation on 4 worker threads.
    let grid = SweepGrid {
        horizon: 5_000,
        ..SweepGrid::saturation_default(42)
    };
    let outcome = run_sweep(&grid, 4);
    println!(
        "\nsaturation sweep: {} scenarios on {} workers",
        outcome.results.len(),
        outcome.workers_used
    );
    for r in &outcome.results {
        if r.scenario.injection_rate == 0.16 {
            println!(
                "  {:>16} at rate 0.16: mean latency {:>8.1} cycles, accepted {:>6.1} bits/cycle",
                r.scenario.pattern.name(),
                r.latency.mean,
                r.accepted_throughput
            );
        }
    }
}
