//! The paper's future-work extension: search over task mappings, scoring
//! each placement by its greedily allocated wavelength schedule.
//!
//! ```sh
//! cargo run --release --example mapping_exploration
//! ```

use ring_wdm_onoc::prelude::*;
use ring_wdm_onoc::wa::mapping_search::{MappingSearchConfig, optimize_mapping};

fn main() {
    let arch = OnocArchitecture::paper_architecture(8);
    let graph = ring_wdm_onoc::app::workloads::paper_task_graph();

    println!("Searching mappings of the paper's 6 tasks on the 16-core ring…");
    let result = optimize_mapping(
        &arch,
        &graph,
        &MappingSearchConfig {
            iterations: 150,
            restarts: 3,
            seed: 11,
            options: EvalOptions::default(),
        },
    );

    println!(
        "\nBest mapping found ({} candidate evaluations):",
        result.evaluated
    );
    for (task, node) in result.mapping.iter().enumerate() {
        let (row, col) = arch.geometry().grid_coordinates(*node);
        println!("  T{task} → ring position {node} (tile row {row}, col {col})");
    }
    println!(
        "\nMakespan under greedy wavelength allocation: {:.2} kcc",
        result.makespan.to_kilocycles()
    );
    println!(
        "Paper's hand placement scores 24.0 kcc under the same scorer;\n\
         the zero-communication bound is 20.0 kcc."
    );
}
