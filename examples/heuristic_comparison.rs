//! Compare classical single-wavelength assignment heuristics against the
//! multi-objective search.
//!
//! ```sh
//! cargo run --example heuristic_comparison
//! ```

use rand::SeedableRng;
use rand::rngs::StdRng;
use ring_wdm_onoc::prelude::*;
use ring_wdm_onoc::wa::heuristics;

fn main() {
    let instance = ProblemInstance::paper_with_wavelengths(8);
    let evaluator = instance.evaluator();
    let mut rng = StdRng::seed_from_u64(42);

    let baselines: Vec<(&str, Allocation)> = vec![
        ("first-fit", heuristics::first_fit(&instance).unwrap()),
        ("most-used", heuristics::most_used(&instance).unwrap()),
        ("least-used", heuristics::least_used(&instance).unwrap()),
        (
            "random",
            heuristics::random_single(&instance, &mut rng, 10_000).unwrap(),
        ),
        (
            "greedy-makespan",
            heuristics::greedy_makespan(&instance, &evaluator).unwrap(),
        ),
    ];

    println!(
        "{:<18}{:>12}{:>16}{:>12}   wavelengths per communication",
        "heuristic", "exec (kcc)", "energy (fJ/bit)", "log10(BER)"
    );
    for (name, allocation) in &baselines {
        let o = evaluator
            .evaluate(allocation)
            .expect("heuristics are valid");
        println!(
            "{:<18}{:>12.2}{:>16.2}{:>12.3}   {:?}",
            name,
            o.exec_time.to_kilocycles(),
            o.bit_energy.value(),
            o.avg_log_ber,
            allocation.counts()
        );
    }

    println!(
        "\nThe classical heuristics all sit at the slow end (one wavelength per\n\
         communication ⇒ 38 kcc); greedy buys speed with energy. Neither\n\
         exposes the full trade-off — that is what the NSGA-II front adds\n\
         (run the paper_pareto example)."
    );
}
