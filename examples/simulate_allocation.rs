//! Replay an allocation cycle by cycle in the discrete-event simulator and
//! inspect spans, waveguide utilisation and the runtime conflict check.
//!
//! ```sh
//! cargo run --example simulate_allocation
//! ```

use ring_wdm_onoc::prelude::*;

fn main() {
    let instance = ProblemInstance::paper_with_wavelengths(8);
    let allocation = instance
        .allocation_from_counts(&[3, 4, 8, 5, 3, 8]) // the 8λ time optimum
        .unwrap();

    let simulator = Simulator::new(instance.app(), &allocation, BitsPerCycle::new(1.0))
        .expect("allocation matches the application");
    let report = simulator.run().expect("the DAG drains");

    println!("Simulated makespan: {} cycles", report.makespan);
    println!("Runtime wavelength conflicts: {}\n", report.conflicts.len());

    println!("Task timeline:");
    for (i, &(start, end)) in report.task_spans.iter().enumerate() {
        let name = instance
            .app()
            .graph()
            .task(ring_wdm_onoc::app::TaskId(i))
            .name()
            .to_owned();
        println!("  {name:<4} runs {start:>6} .. {end:>6}");
    }

    println!("\nCommunication timeline:");
    for (i, &(start, end)) in report.comm_spans.iter().enumerate() {
        let id = ring_wdm_onoc::app::CommId(i);
        let route = instance.app().route(id);
        println!(
            "  c{i}: {start:>6} .. {end:>6}  over {route}  on {:?}",
            allocation
                .channels(id)
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
        );
    }

    println!("\nBusiest waveguide segments (wavelength-cycles):");
    let mut busy = report.segment_busy.clone();
    busy.sort_by_key(|&(_, b)| std::cmp::Reverse(b));
    for (segment, cycles) in busy.iter().take(5) {
        println!(
            "  {segment}: {cycles} ({:.1}% of comb capacity)",
            100.0 * report.segment_utilization(*segment, instance.wavelength_count())
        );
    }

    // Cross-check against the analytic model of Eqs. 10–12.
    let schedule = Schedule::new(instance.app().graph(), instance.options().rate).unwrap();
    let analytic = schedule.evaluate(&allocation.counts()).unwrap().makespan;
    println!(
        "\nAnalytic makespan (Eqs. 10-12): {:.1} cycles — the DES agrees up to rounding.",
        analytic.value()
    );
}
