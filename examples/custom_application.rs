//! Bring your own application: build a task graph, map it onto the ring,
//! and search the wavelength-allocation trade-off.
//!
//! Models a small streaming pipeline (capture → two parallel filter stages
//! → fusion → encode) on the paper's 16-core architecture.
//!
//! ```sh
//! cargo run --release --example custom_application
//! ```

use ring_wdm_onoc::prelude::*;

fn main() {
    // 1. Describe the application (Definition 1 of the paper).
    let mut graph = TaskGraph::new();
    let capture = graph.add_task("capture", Cycles::from_kilocycles(3.0));
    let filter_a = graph.add_task("filter-a", Cycles::from_kilocycles(6.0));
    let filter_b = graph.add_task("filter-b", Cycles::from_kilocycles(6.0));
    let fusion = graph.add_task("fusion", Cycles::from_kilocycles(4.0));
    let encode = graph.add_task("encode", Cycles::from_kilocycles(5.0));
    graph
        .add_comm(capture, filter_a, Bits::from_kilobits(12.0))
        .unwrap();
    graph
        .add_comm(capture, filter_b, Bits::from_kilobits(12.0))
        .unwrap();
    graph
        .add_comm(filter_a, fusion, Bits::from_kilobits(6.0))
        .unwrap();
    graph
        .add_comm(filter_b, fusion, Bits::from_kilobits(6.0))
        .unwrap();
    graph
        .add_comm(fusion, encode, Bits::from_kilobits(9.0))
        .unwrap();

    // 2. Place the tasks on the ring (Definition 3) and route shortest-path.
    let mapping = Mapping::new(
        &graph,
        vec![NodeId(0), NodeId(2), NodeId(14), NodeId(4), NodeId(6)],
    )
    .unwrap();
    let app = MappedApplication::new(
        graph,
        mapping,
        ring_wdm_onoc::topology::RingTopology::new(16),
        RouteStrategy::Shortest,
    )
    .unwrap();
    println!("Waveguide-sharing pairs: {:?}", app.overlapping_pairs());

    // 3. Assemble the problem on a 12-channel architecture.
    let arch = OnocArchitecture::builder()
        .grid_dimensions(4, 4)
        .wavelengths(12)
        .build()
        .unwrap();
    let instance =
        ring_wdm_onoc::wa::ProblemInstance::new(arch, app, EvalOptions::default()).unwrap();
    let evaluator = instance.evaluator();

    // 4. Search the trade-off.
    let outcome = Nsga2::new(
        &evaluator,
        Nsga2Config {
            population_size: 120,
            generations: 60,
            objectives: ObjectiveSet::TimeEnergyBer,
            seed: 7,
            ..Nsga2Config::default()
        },
    )
    .run();

    println!(
        "\n3-objective Pareto front ({} points) for the streaming pipeline:",
        outcome.front.len()
    );
    println!(
        "{:>12}{:>16}{:>12}   counts",
        "exec (kcc)", "energy (fJ/bit)", "log10(BER)"
    );
    for p in outcome.front.points() {
        println!(
            "{:>12.2}{:>16.2}{:>12.3}   {:?}",
            p.objectives.exec_time.to_kilocycles(),
            p.objectives.bit_energy.value(),
            p.objectives.avg_log_ber,
            p.allocation.counts()
        );
    }

    let schedule = Schedule::new(instance.app().graph(), instance.options().rate).unwrap();
    println!(
        "\nZero-communication lower bound: {:.1} kcc",
        schedule.min_makespan().to_kilocycles()
    );
}
