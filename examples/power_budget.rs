//! Decompose the optical power budget of every receiver in an allocation —
//! the view an architect uses to see where the dB (and therefore the laser
//! energy) actually go.
//!
//! ```sh
//! cargo run --example power_budget
//! ```

use ring_wdm_onoc::prelude::*;
use ring_wdm_onoc::topology::power_budgets;

fn main() {
    let instance = ProblemInstance::paper_with_wavelengths(8);
    let allocation = instance
        .allocation_from_counts(&[3, 4, 8, 5, 3, 8])
        .unwrap();

    // Re-express the allocation as physical transmissions.
    let app = instance.app();
    let traffic: Vec<Transmission> = app
        .graph()
        .comms()
        .map(|(id, _)| Transmission::new(id.0, *app.route(id), allocation.channels(id)))
        .collect();

    let budgets = power_budgets(instance.arch(), &traffic).unwrap();
    println!(
        "{:<6}{:<5}{:>10}{:>8}{:>8}{:>10}{:>10}{:>8}{:>10}",
        "comm", "λ", "total", "prop", "bend", "offMR", "onMR", "drop", "launch"
    );
    let detector = instance.arch().detector();
    for b in &budgets {
        let launch = detector.required_launch_power(b.total());
        println!(
            "c{:<5}{:<5}{:>9.3}{:>8.3}{:>8.3}{:>8.3}dB×{:<2}{:>6.2}dB×{:<2}{:>6.2}{:>10.2}",
            b.transmission,
            b.channel.to_string(),
            b.total().value(),
            b.propagation.value(),
            b.bending.value(),
            b.off_mr_through.value(),
            b.off_mr_count,
            b.on_mr_through.value(),
            b.on_mr_count,
            b.drop.value(),
            launch.value(),
        );
    }

    // Which communication pays the most?
    let worst = budgets
        .iter()
        .min_by(|a, b| a.total().value().partial_cmp(&b.total().value()).unwrap())
        .unwrap();
    println!(
        "\nLossiest receiver: {worst}\n\
         (the drop ring and the ON-state rings crossed at the shared\n\
         destination dominate — exactly the effect that makes dense\n\
         allocations expensive in Fig. 6(a))"
    );

    // Compare with the worst-case design bound at the same node.
    let bounds = ring_wdm_onoc::topology::worst_case_bounds(
        instance.arch(),
        NodeId(3),
        Direction::Clockwise,
    );
    let p0 = instance.arch().laser().power_off().to_milliwatts();
    let worst_bound = bounds
        .iter()
        .map(|b| b.worst_log_ber(p0, BerConvention::PaperDb))
        .fold(f64::NEG_INFINITY, f64::max);
    println!(
        "\nWorst-case design bound at node 3: log10(BER) = {worst_bound:.2} —\n\
         application-aware allocation beats it comfortably."
    );
}
