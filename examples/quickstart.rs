//! Quickstart: evaluate wavelength allocations on the paper's instance.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use ring_wdm_onoc::prelude::*;

fn main() {
    // The paper's 16-core ring ONoC with an 8-channel WDM comb, running the
    // 6-task virtual application of Fig. 5.
    let instance = ProblemInstance::paper_with_wavelengths(8);
    let evaluator = instance.evaluator();

    println!(
        "Instance: {} communications, {} wavelengths, {} cores\n",
        instance.comm_count(),
        instance.wavelength_count(),
        instance.arch().ring().node_count()
    );

    // Three allocations along the paper's trade-off curve, expressed as
    // wavelength counts per communication (the notation of Fig. 6).
    let candidates: [(&str, [usize; 6]); 3] = [
        ("frugal  [1,1,1,1,1,1]", [1, 1, 1, 1, 1, 1]),
        ("middle  [2,3,4,3,2,4]", [2, 3, 4, 3, 2, 4]),
        ("fastest [3,4,8,5,3,8]", [3, 4, 8, 5, 3, 8]),
    ];

    println!(
        "{:<24}{:>12}{:>16}{:>12}",
        "allocation", "exec (kcc)", "energy (fJ/bit)", "log10(BER)"
    );
    for (name, counts) in candidates {
        let allocation = instance
            .allocation_from_counts(&counts)
            .expect("counts fit the 8-channel comb");
        let objectives = evaluator
            .evaluate(&allocation)
            .expect("packed allocations satisfy the paper's constraints");
        println!(
            "{:<24}{:>12.2}{:>16.2}{:>12.3}",
            name,
            objectives.exec_time.to_kilocycles(),
            objectives.bit_energy.value(),
            objectives.avg_log_ber
        );
    }

    println!(
        "\nMore wavelengths run faster but pay in energy per bit and BER —\n\
         the trade-off the paper explores with NSGA-II (see the\n\
         paper_pareto example)."
    );
}
