//! Reproduce a Fig. 6(a)-style Pareto front with NSGA-II.
//!
//! ```sh
//! cargo run --release --example paper_pareto
//! ```

use ring_wdm_onoc::prelude::*;

fn main() {
    let instance = ProblemInstance::paper_with_wavelengths(8);
    let evaluator = instance.evaluator();

    // A reduced configuration (the paper uses 400 × 300; see the
    // onoc-bench fig6a binary for the full-scale run).
    let config = Nsga2Config {
        population_size: 150,
        generations: 80,
        objectives: ObjectiveSet::TimeEnergy,
        seed: 2017,
        ..Nsga2Config::default()
    };
    println!(
        "Running NSGA-II: population {}, {} generations…",
        config.population_size, config.generations
    );
    let nsga2 = Nsga2::new(&evaluator, config);
    let outcome = nsga2.run_with_observer(|generation, front| {
        if generation % 20 == 0 {
            println!(
                "  generation {generation:>3}: {} points on the front",
                front.len()
            );
        }
    });

    println!(
        "\n{} evaluations, {} valid ({} distinct)",
        outcome.stats.evaluations, outcome.stats.valid_evaluations, outcome.stats.unique_valid
    );
    println!("\nPareto front (execution time vs bit energy):");
    println!("{:>12}{:>16}   counts", "exec (kcc)", "energy (fJ/bit)");
    for point in outcome.front.points() {
        println!(
            "{:>12.2}{:>16.2}   {:?}",
            point.objectives.exec_time.to_kilocycles(),
            point.objectives.bit_energy.value(),
            point.allocation.counts()
        );
    }

    let best_time = outcome
        .front
        .points()
        .iter()
        .map(|p| p.objectives.exec_time.to_kilocycles())
        .fold(f64::INFINITY, f64::min);
    println!(
        "\nBest execution time: {best_time:.2} kcc (paper's 8λ annotation: 23.8 kcc;\n\
         exhaustive optimum of the reconstructed instance: 23.7 kcc)"
    );
}
