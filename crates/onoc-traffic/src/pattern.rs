//! The classic synthetic NoC traffic patterns, adapted to a ring.
//!
//! Each pattern maps a source node to a destination. Permutation patterns
//! (transpose, bit-reversal, bit-complement) are defined on the
//! `b = ⌈log₂ n⌉`-bit id space as usual in the NoC literature (Dally &
//! Towles §3.2); for non-power-of-two rings the image is folded back with
//! `mod n`, which preserves determinism and keeps every pattern total.
//! A pattern may map a node onto itself (e.g. palindromic ids under
//! bit-reversal) — [`TrafficPattern::destination`] then returns `None` and
//! the generator simply skips that injection slot, matching how NoC
//! simulators treat self-addressed packets.

use onoc_topology::NodeId;

use crate::rng::TrafficRng;

/// A destination-selection rule over an `n`-node ring.
#[derive(Debug, Clone, PartialEq)]
pub enum TrafficPattern {
    /// Uniform random over all nodes except the source.
    UniformRandom,
    /// With probability `fraction`, send to one of `hotspots` (uniformly);
    /// otherwise behave like [`TrafficPattern::UniformRandom`]. A hotspot
    /// node that draws itself also falls back to the uniform branch, so
    /// every node injects at the full configured rate. Models a few
    /// memory-controller-like sinks absorbing a share of all traffic.
    Hotspot {
        /// The favoured destinations.
        hotspots: Vec<NodeId>,
        /// Probability of addressing a hotspot, in `[0, 1]`.
        fraction: f64,
    },
    /// Matrix transpose: swap the high and low halves of the `b`-bit id.
    Transpose,
    /// Reverse the `b`-bit id.
    BitReversal,
    /// Complement the `b`-bit id (maximum average distance on a ring).
    BitComplement,
    /// One-hop neighbour, choosing clockwise or counter-clockwise with
    /// equal probability per message.
    NearestNeighbor,
    /// Tornado: send `⌈n/2⌉ − 1` hops clockwise — the classic adversarial
    /// ring pattern (every message takes a strictly-shortest near-half
    /// path in the same direction, loading one rotation maximally).
    Tornado,
}

impl TrafficPattern {
    /// Short machine-friendly name (CSV column values, bench ids).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            TrafficPattern::UniformRandom => "uniform",
            TrafficPattern::Hotspot { .. } => "hotspot",
            TrafficPattern::Transpose => "transpose",
            TrafficPattern::BitReversal => "bit_reversal",
            TrafficPattern::BitComplement => "bit_complement",
            TrafficPattern::NearestNeighbor => "nearest_neighbor",
            TrafficPattern::Tornado => "tornado",
        }
    }

    /// The default four-pattern panel used by the saturation binaries.
    #[must_use]
    pub fn panel() -> Vec<TrafficPattern> {
        vec![
            TrafficPattern::UniformRandom,
            TrafficPattern::Transpose,
            TrafficPattern::BitComplement,
            TrafficPattern::NearestNeighbor,
        ]
    }

    /// Validates the pattern against a ring size.
    ///
    /// # Panics
    ///
    /// Panics if a hotspot node is outside the ring, the hotspot list is
    /// empty, or `fraction` is outside `[0, 1]`.
    pub fn validate(&self, nodes: usize) {
        if let TrafficPattern::Hotspot { hotspots, fraction } = self {
            assert!(
                !hotspots.is_empty(),
                "hotspot pattern needs at least one hotspot"
            );
            assert!(
                (0.0..=1.0).contains(fraction),
                "hotspot fraction must be in [0, 1], got {fraction}"
            );
            for h in hotspots {
                assert!(h.0 < nodes, "{h} is not on a {nodes}-node ring");
            }
        }
    }

    /// Picks the destination for a message from `src`, or `None` when the
    /// pattern maps `src` onto itself (the slot is skipped).
    ///
    /// Deterministic patterns ignore `rng`; random ones draw from it.
    ///
    /// # Panics
    ///
    /// Panics if `src` is outside the ring or `nodes < 2`.
    #[must_use]
    pub fn destination(&self, src: NodeId, nodes: usize, rng: &mut TrafficRng) -> Option<NodeId> {
        assert!(nodes >= 2, "a ring needs at least 2 nodes, got {nodes}");
        assert!(src.0 < nodes, "{src} is not on a {nodes}-node ring");
        let dst = match self {
            TrafficPattern::UniformRandom => other_than(src, nodes, rng),
            TrafficPattern::Hotspot { hotspots, fraction } => {
                let hot = hotspots[rng.below(hotspots.len())];
                // A hotspot node drawing itself falls back to the uniform
                // branch so every node keeps the full injection rate.
                if rng.bernoulli(*fraction) && hot != src {
                    hot
                } else {
                    other_than(src, nodes, rng)
                }
            }
            TrafficPattern::Transpose => {
                let b = id_bits(nodes);
                let half = b / 2;
                let mask = (1usize << b) - 1;
                let s = src.0;
                NodeId((((s >> half) | (s << (b - half))) & mask) % nodes)
            }
            TrafficPattern::BitReversal => {
                let b = id_bits(nodes);
                let mut s = src.0;
                let mut r = 0usize;
                for _ in 0..b {
                    r = (r << 1) | (s & 1);
                    s >>= 1;
                }
                NodeId(r % nodes)
            }
            TrafficPattern::BitComplement => {
                let mask = (1usize << id_bits(nodes)) - 1;
                NodeId((src.0 ^ mask) % nodes)
            }
            TrafficPattern::NearestNeighbor => {
                if rng.bernoulli(0.5) {
                    NodeId((src.0 + 1) % nodes)
                } else {
                    NodeId((src.0 + nodes - 1) % nodes)
                }
            }
            TrafficPattern::Tornado => NodeId((src.0 + nodes.div_ceil(2) - 1) % nodes),
        };
        (dst != src).then_some(dst)
    }
}

impl core::fmt::Display for TrafficPattern {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TrafficPattern::Hotspot { hotspots, fraction } => {
                write!(f, "hotspot(×{}, {:.0}%)", hotspots.len(), fraction * 100.0)
            }
            other => write!(f, "{}", other.name()),
        }
    }
}

/// Bits needed to address `nodes` ids (≥ 1).
fn id_bits(nodes: usize) -> usize {
    (usize::BITS - (nodes - 1).leading_zeros()).max(1) as usize
}

/// Uniform over `[0, nodes) \ {src}`.
fn other_than(src: NodeId, nodes: usize, rng: &mut TrafficRng) -> NodeId {
    let raw = rng.below(nodes - 1);
    NodeId(if raw >= src.0 { raw + 1 } else { raw })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TrafficRng {
        TrafficRng::new(42)
    }

    #[test]
    fn uniform_never_self_and_covers_ring() {
        let mut rng = rng();
        let mut seen = [false; 8];
        for _ in 0..500 {
            let dst = TrafficPattern::UniformRandom
                .destination(NodeId(3), 8, &mut rng)
                .unwrap();
            assert_ne!(dst, NodeId(3));
            seen[dst.0] = true;
        }
        assert_eq!(seen.iter().filter(|&&s| s).count(), 7);
    }

    #[test]
    fn transpose_is_an_involution_on_square_rings() {
        // 16 nodes = 4-bit ids, half swap of 2 bits each: applying the
        // pattern twice returns to the source.
        let mut r = rng();
        for s in 0..16 {
            if let Some(d) = TrafficPattern::Transpose.destination(NodeId(s), 16, &mut r) {
                let back = TrafficPattern::Transpose
                    .destination(d, 16, &mut r)
                    .unwrap();
                assert_eq!(back, NodeId(s));
            }
        }
    }

    #[test]
    fn transpose_known_values() {
        let mut r = rng();
        // id 0b0001 → 0b0100 on 16 nodes.
        assert_eq!(
            TrafficPattern::Transpose.destination(NodeId(1), 16, &mut r),
            Some(NodeId(4))
        );
        // 0b0101 is fixed under transpose → skipped.
        assert_eq!(
            TrafficPattern::Transpose.destination(NodeId(5), 16, &mut r),
            None
        );
    }

    #[test]
    fn bit_reversal_known_values() {
        let mut r = rng();
        // 0b0001 reversed over 4 bits = 0b1000.
        assert_eq!(
            TrafficPattern::BitReversal.destination(NodeId(1), 16, &mut r),
            Some(NodeId(8))
        );
        // Palindromic id 0b1001 maps to itself → skipped.
        assert_eq!(
            TrafficPattern::BitReversal.destination(NodeId(9), 16, &mut r),
            None
        );
    }

    #[test]
    fn bit_complement_known_values() {
        let mut r = rng();
        assert_eq!(
            TrafficPattern::BitComplement.destination(NodeId(0), 16, &mut r),
            Some(NodeId(15))
        );
        assert_eq!(
            TrafficPattern::BitComplement.destination(NodeId(5), 16, &mut r),
            Some(NodeId(10))
        );
    }

    #[test]
    fn bit_patterns_fold_into_non_power_of_two_rings() {
        let mut r = rng();
        for pattern in [
            TrafficPattern::Transpose,
            TrafficPattern::BitReversal,
            TrafficPattern::BitComplement,
        ] {
            for s in 0..12 {
                if let Some(d) = pattern.destination(NodeId(s), 12, &mut r) {
                    assert!(d.0 < 12, "{pattern} sent n{s} to {d}");
                }
            }
        }
    }

    #[test]
    fn nearest_neighbor_is_one_hop_both_ways() {
        let mut r = rng();
        let mut cw = 0;
        let mut ccw = 0;
        for _ in 0..200 {
            let d = TrafficPattern::NearestNeighbor
                .destination(NodeId(0), 16, &mut r)
                .unwrap();
            match d.0 {
                1 => cw += 1,
                15 => ccw += 1,
                other => panic!("nearest neighbor sent 0 to {other}"),
            }
        }
        assert!(cw > 50 && ccw > 50, "cw {cw}, ccw {ccw}");
    }

    #[test]
    fn hotspot_fraction_is_respected() {
        let hotspot = NodeId(7);
        let pattern = TrafficPattern::Hotspot {
            hotspots: vec![hotspot],
            fraction: 0.8,
        };
        pattern.validate(16);
        let mut r = rng();
        let hits = (0..1_000)
            .filter(|_| pattern.destination(NodeId(0), 16, &mut r) == Some(hotspot))
            .count();
        // 80% direct + ~1.3% via the uniform branch.
        assert!((730..=880).contains(&hits), "hits = {hits}");
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn bad_hotspot_fraction_rejected() {
        TrafficPattern::Hotspot {
            hotspots: vec![NodeId(0)],
            fraction: 1.5,
        }
        .validate(16);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(TrafficPattern::UniformRandom.name(), "uniform");
        assert_eq!(TrafficPattern::panel().len(), 4);
        assert_eq!(
            TrafficPattern::Hotspot {
                hotspots: vec![NodeId(1)],
                fraction: 0.3
            }
            .to_string(),
            "hotspot(×1, 30%)"
        );
    }
}
