//! Scenario grids and the parallel saturation-sweep runner.
//!
//! A [`SweepGrid`] declares the cartesian product
//! `{pattern} × {injection rate} × {wavelength count} × {ring size}`;
//! [`run_sweep`] fans the scenarios out over a fixed-size pool of scoped
//! worker threads and collects one [`ScenarioResult`] per point, in grid
//! order.
//!
//! Determinism: each scenario's traffic seed derives from
//! `(grid seed, scenario index)` through the splittable
//! [`TrafficRng`](crate::TrafficRng), and results are written back by
//! scenario index — so the outcome is bit-identical for 1, 4 or 64
//! worker threads. The only thread-dependent value is the
//! [`SweepOutcome::workers_used`] head-count kept as run metadata.

use std::sync::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use onoc_sim::{
    AimdParams, DynamicPolicy, EnergyProbe, EnergyReport, FaultPlan, HealingConfig, InjectionMode,
    LatencyStats, OpenLoopSimulator, ReliabilityProbe, ReportMode, SimScratch, StaticFlowMap,
    TransportMode, WavelengthMode,
};
use onoc_topology::RingTopology;
use onoc_units::{Bits, BitsPerCycle};

use crate::pattern::TrafficPattern;
use crate::rng::TrafficRng;
use crate::trace::{OnOffConfig, TrafficConfig, generate};

/// The declared sweep space.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepGrid {
    /// Traffic patterns to sweep.
    pub patterns: Vec<TrafficPattern>,
    /// Mean messages per node per cycle, one scenario per value.
    pub injection_rates: Vec<f64>,
    /// Comb sizes to sweep.
    pub wavelengths: Vec<usize>,
    /// Ring sizes to sweep.
    pub ring_sizes: Vec<usize>,
    /// Message size shared by every scenario.
    pub message_volume: Bits,
    /// Injection window in cycles.
    pub horizon: u64,
    /// Master seed for the whole sweep.
    pub seed: u64,
    /// Per-wavelength data rate.
    pub lane_rate: BitsPerCycle,
    /// Runtime wavelength policy used by every scenario.
    pub policy: DynamicPolicy,
    /// Optional bursty ON-OFF injection (shared by every scenario).
    pub burstiness: Option<OnOffConfig>,
    /// Injection policy (open loop, credit-based or ECN closed loop)
    /// shared by every scenario.
    pub injection: InjectionMode,
    /// Optional energy model: when set, every scenario runs with an
    /// [`EnergyProbe`] attached and its result carries the folded
    /// energy-per-bit figures (0 otherwise).
    pub energy: Option<onoc_sim::EnergyModel>,
    /// Optional fault plan (lane outages, BER corruption) shared by
    /// every scenario.
    pub faults: Option<FaultPlan>,
    /// Reliable-transport recovery mode layered over the injection
    /// policy (defaults to no recovery).
    pub transport: TransportMode,
    /// Optional self-healing configuration shared by every scenario.
    /// Re-pack policies require [`SweepGrid::static_map`] (the engine
    /// asserts this); inert without [`SweepGrid::faults`].
    pub healing: Option<HealingConfig>,
    /// ECN AIMD pacing constants (only read in ECN injection mode).
    pub aimd: AimdParams,
    /// Intra-run PDES workers per scenario (1 = the serial engine).
    /// Values above 1 dispatch each scenario through
    /// [`OpenLoopSimulator::run_parallel`]; results are bit-identical
    /// to serial for any count.
    pub workers: usize,
    /// Optional static wavelength map shared by every scenario: when
    /// set, scenarios run in [`WavelengthMode::Static`] instead of the
    /// dynamic `policy` (required for source-sharded parallel runs).
    pub static_map: Option<StaticFlowMap>,
}

impl SweepGrid {
    /// The default saturation study on the paper's 16-node ring: the
    /// four-pattern panel over seven injection rates at 8 wavelengths.
    #[must_use]
    pub fn saturation_default(seed: u64) -> Self {
        Self {
            patterns: TrafficPattern::panel(),
            injection_rates: vec![0.002, 0.005, 0.01, 0.02, 0.04, 0.08, 0.16],
            wavelengths: vec![8],
            ring_sizes: vec![16],
            message_volume: Bits::new(512.0),
            horizon: 20_000,
            seed,
            lane_rate: BitsPerCycle::new(1.0),
            policy: DynamicPolicy::Single,
            burstiness: None,
            injection: InjectionMode::Open,
            energy: None,
            faults: None,
            transport: TransportMode::None,
            healing: None,
            aimd: AimdParams::default(),
            workers: 1,
            static_map: None,
        }
    }

    /// Expands the grid into scenarios, slowest axis first:
    /// ring size → wavelengths → pattern → injection rate.
    #[must_use]
    pub fn scenarios(&self) -> Vec<Scenario> {
        let mut out = Vec::new();
        for &nodes in &self.ring_sizes {
            for &wavelengths in &self.wavelengths {
                for pattern in &self.patterns {
                    for &injection_rate in &self.injection_rates {
                        out.push(Scenario {
                            index: out.len(),
                            pattern: pattern.clone(),
                            injection_rate,
                            wavelengths,
                            nodes,
                        });
                    }
                }
            }
        }
        out
    }
}

/// One point of the sweep space.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Position in grid order (also the result slot and the seed salt).
    pub index: usize,
    /// Traffic pattern.
    pub pattern: TrafficPattern,
    /// Mean messages per node per cycle.
    pub injection_rate: f64,
    /// Comb size.
    pub wavelengths: usize,
    /// Ring size.
    pub nodes: usize,
}

/// Measured outcome of one scenario. Contains only seed-deterministic
/// values, so whole-sweep results compare with `==` across thread counts.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioResult {
    /// The scenario this result belongs to.
    pub scenario: Scenario,
    /// Messages the trace injected.
    pub injected: usize,
    /// Offered load in bits per cycle (whole ring).
    pub offered_load: f64,
    /// Accepted throughput in bits per cycle over the run.
    pub accepted_throughput: f64,
    /// End-to-end latency statistics.
    pub latency: LatencyStats,
    /// Messages that had to queue for wavelengths at least once.
    pub blocked: usize,
    /// Mean comb occupancy over the run.
    pub occupancy: f64,
    /// Mean cycles the closed-loop gate held messages at their source
    /// (0 in open-loop mode).
    pub stall_mean: f64,
    /// Time-averaged fraction of the credit windows in use (0 outside
    /// credit mode).
    pub credit_occupancy: f64,
    /// Energy per delivered bit in pJ (0 when the grid has no
    /// [`SweepGrid::energy`] model).
    pub energy_pj_per_bit: f64,
    /// Static (laser-on + MR tuning) share of the total energy in
    /// `[0, 1]` (0 without an energy model).
    pub energy_static_frac: f64,
    /// Attempts that failed and were retransmitted or lost (0 without
    /// faults).
    pub failed_attempts: usize,
    /// Messages permanently lost (retries exhausted or unrecoverable).
    pub lost: usize,
    /// Bits spent on failed attempts (wasted fabric traffic).
    pub retransmitted_bits: f64,
    /// Lane outages the run observed (scheduled, stochastic or
    /// quarantine; 0 without faults).
    pub outages: u64,
    /// Mid-run heals applied (0 without a re-pack healing policy).
    pub heals: u64,
    /// Median per-outage recovery latency in cycles (lane-down to
    /// goodput restored; 0 without outages).
    pub recovery_p50: f64,
    /// 95th-percentile recovery latency in cycles.
    pub recovery_p95: f64,
    /// 99th-percentile recovery latency in cycles (the SLO figure).
    pub recovery_p99: f64,
}

/// A finished sweep: per-scenario results in grid order plus parallelism
/// metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome {
    /// One result per scenario, ordered by [`Scenario::index`].
    pub results: Vec<ScenarioResult>,
    /// Worker threads the pool was started with.
    pub threads: usize,
    /// Workers that actually processed at least one scenario
    /// (thread-schedule dependent; metadata only).
    pub workers_used: usize,
}

impl SweepOutcome {
    /// The CSV header matching [`SweepOutcome::to_csv`].
    pub const CSV_HEADER: &'static str = "pattern,nodes,wavelengths,injection_rate,\
        offered_bits_per_cycle,accepted_bits_per_cycle,messages,blocked,\
        latency_mean,latency_p50,latency_p95,latency_p99,latency_max,occupancy,\
        stall_mean,credit_occupancy,energy_pj_per_bit,energy_static_frac,\
        failed_attempts,lost,retx_bits,outages,heals,recovery_p50,\
        recovery_p95,recovery_p99";

    /// Renders every result as one CSV row (no header).
    #[must_use]
    pub fn to_csv(&self) -> Vec<String> {
        self.results
            .iter()
            .map(|r| {
                format!(
                    "{},{},{},{},{:.3},{:.3},{},{},{:.2},{:.2},{:.2},{:.2},{},{:.5},{:.2},{:.5},{:.4},{:.4},{},{},{:.1},{},{},{:.1},{:.1},{:.1}",
                    r.scenario.pattern.name(),
                    r.scenario.nodes,
                    r.scenario.wavelengths,
                    r.scenario.injection_rate,
                    r.offered_load,
                    r.accepted_throughput,
                    r.injected,
                    r.blocked,
                    r.latency.mean,
                    r.latency.p50,
                    r.latency.p95,
                    r.latency.p99,
                    r.latency.max,
                    r.occupancy,
                    r.stall_mean,
                    r.credit_occupancy,
                    r.energy_pj_per_bit,
                    r.energy_static_frac,
                    r.failed_attempts,
                    r.lost,
                    r.retransmitted_bits,
                    r.outages,
                    r.heals,
                    r.recovery_p50,
                    r.recovery_p95,
                    r.recovery_p99,
                )
            })
            .collect()
    }

    /// Renders the whole outcome as a self-contained JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .results
            .iter()
            .map(|r| {
                format!(
                    "    {{\"pattern\": \"{}\", \"nodes\": {}, \"wavelengths\": {}, \
                     \"injection_rate\": {}, \"offered_bits_per_cycle\": {:.3}, \
                     \"accepted_bits_per_cycle\": {:.3}, \"messages\": {}, \"blocked\": {}, \
                     \"latency\": {{\"mean\": {:.2}, \"p50\": {:.2}, \"p95\": {:.2}, \
                     \"p99\": {:.2}, \"max\": {}}}, \"occupancy\": {:.5}, \
                     \"stall_mean\": {:.2}, \"credit_occupancy\": {:.5}, \
                     \"energy_pj_per_bit\": {:.4}, \"energy_static_frac\": {:.4}, \
                     \"failed_attempts\": {}, \"lost\": {}, \"retx_bits\": {:.1}, \
                     \"outages\": {}, \"heals\": {}, \"recovery\": {{\"p50\": {:.1}, \
                     \"p95\": {:.1}, \"p99\": {:.1}}}}}",
                    r.scenario.pattern.name(),
                    r.scenario.nodes,
                    r.scenario.wavelengths,
                    r.scenario.injection_rate,
                    r.offered_load,
                    r.accepted_throughput,
                    r.injected,
                    r.blocked,
                    r.latency.mean,
                    r.latency.p50,
                    r.latency.p95,
                    r.latency.p99,
                    r.latency.max,
                    r.occupancy,
                    r.stall_mean,
                    r.credit_occupancy,
                    r.energy_pj_per_bit,
                    r.energy_static_frac,
                    r.failed_attempts,
                    r.lost,
                    r.retransmitted_bits,
                    r.outages,
                    r.heals,
                    r.recovery_p50,
                    r.recovery_p95,
                    r.recovery_p99,
                )
            })
            .collect();
        format!(
            "{{\n  \"threads\": {},\n  \"workers_used\": {},\n  \"results\": [\n{}\n  ]\n}}",
            self.threads,
            self.workers_used,
            rows.join(",\n")
        )
    }
}

/// Runs one scenario to completion (generation + open-loop simulation).
#[must_use]
pub fn run_scenario(grid: &SweepGrid, scenario: &Scenario) -> ScenarioResult {
    run_scenario_with(grid, scenario, &mut SimScratch::new())
}

/// Wall-clock phase split of one scenario run, in milliseconds: trace
/// setup (seed split + generation), the engine run, and the fold of the
/// run into a [`ScenarioResult`]. The bench harness accumulates these
/// across a grid's points so slowdowns are attributable to a phase.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ScenarioPhases {
    /// Trace-generation wall time.
    pub setup_ms: f64,
    /// Engine (simulation) wall time.
    pub simulate_ms: f64,
    /// Report-folding wall time.
    pub report_ms: f64,
}

impl ScenarioPhases {
    /// Adds another run's phase split into this one.
    pub fn accumulate(&mut self, other: ScenarioPhases) {
        self.setup_ms += other.setup_ms;
        self.simulate_ms += other.simulate_ms;
        self.report_ms += other.report_ms;
    }
}

#[allow(clippy::cast_precision_loss)]
fn elapsed_ms(since: Instant) -> f64 {
    since.elapsed().as_nanos() as f64 / 1e6
}

/// [`run_scenario`] with caller-provided reusable simulator buffers.
///
/// The sweep runs in the engine's streaming report mode: per-message
/// records are folded into log-scale histograms on the fly, so a
/// scenario's memory is `O(bins + sources + in-flight)` regardless of how
/// many messages it injects, and the latency quantiles in the result
/// follow the nearest-rank convention within one histogram bin
/// (≤ 12.5% relative) of exact. Count, mean, max, throughput, occupancy
/// and stall/credit integrals stay exact.
#[must_use]
pub fn run_scenario_with(
    grid: &SweepGrid,
    scenario: &Scenario,
    scratch: &mut SimScratch,
) -> ScenarioResult {
    run_scenario_phased(grid, scenario, scratch).0
}

/// [`run_scenario_with`] plus the wall-clock phase split of the run.
#[must_use]
pub fn run_scenario_phased(
    grid: &SweepGrid,
    scenario: &Scenario,
    scratch: &mut SimScratch,
) -> (ScenarioResult, ScenarioPhases) {
    let setup_start = Instant::now();
    let seed = TrafficRng::new(grid.seed)
        .split(scenario.index as u64)
        .next_u64();
    let config = TrafficConfig {
        nodes: scenario.nodes,
        pattern: scenario.pattern.clone(),
        injection_rate: scenario.injection_rate,
        message_volume: grid.message_volume,
        horizon: grid.horizon,
        seed,
        burstiness: grid.burstiness.clone(),
    };
    let trace = generate(&config);
    let setup_ms = elapsed_ms(setup_start);
    let simulate_start = Instant::now();
    let mode = match &grid.static_map {
        Some(map) => WavelengthMode::Static(map.clone()),
        None => WavelengthMode::Dynamic(grid.policy),
    };
    let mut sim = OpenLoopSimulator::with_injection(
        RingTopology::new(scenario.nodes),
        scenario.wavelengths,
        grid.lane_rate,
        mode,
        grid.injection,
    )
    .with_transport(grid.transport)
    .with_aimd(grid.aimd);
    if let Some(plan) = &grid.faults {
        sim = sim.with_faults(plan.clone());
    }
    if let Some(healing) = grid.healing {
        sim = sim.with_healing(healing);
    }
    let sim = sim;
    let parallel = grid.workers > 1;
    if !parallel {
        // Serial runs adopt the PDES workers' restricted table build:
        // route/mask rows only for the flows this trace actually
        // injects, O(active flows) instead of O(nodes²) setup work.
        let mut rows: Vec<u32> = trace
            .events()
            .iter()
            .map(|e| {
                #[allow(clippy::cast_possible_truncation)]
                let row = (e.src.0 * scenario.nodes + e.dst.0) as u32;
                row
            })
            .collect();
        rows.sort_unstable();
        rows.dedup();
        scratch.set_flow_rows(Some(rows));
    }
    let mut rel = ReliabilityProbe::new(scenario.wavelengths);
    let (report, energy): (_, Option<EnergyReport>) = match &grid.energy {
        Some(model) => {
            let mut probe = EnergyProbe::new(model.clone(), scenario.nodes, scenario.wavelengths);
            let mut pair = (&mut probe, &mut rel);
            let report = if parallel {
                sim.run_parallel_probed(
                    trace.source(),
                    grid.workers,
                    ReportMode::Streaming,
                    &mut pair,
                )
            } else {
                sim.run_with_scratch_probed(
                    trace.source(),
                    scratch,
                    ReportMode::Streaming,
                    &mut pair,
                )
            }
            .expect("generated traces are ordered and non-degenerate");
            (report, Some(probe.report()))
        }
        None => (
            if parallel {
                sim.run_parallel_probed(
                    trace.source(),
                    grid.workers,
                    ReportMode::Streaming,
                    &mut rel,
                )
            } else {
                sim.run_with_scratch_probed(
                    trace.source(),
                    scratch,
                    ReportMode::Streaming,
                    &mut rel,
                )
            }
            .expect("generated traces are ordered and non-degenerate"),
            None,
        ),
    };
    let rel = rel.report();
    let simulate_ms = elapsed_ms(simulate_start);
    let report_start = Instant::now();
    let result = ScenarioResult {
        scenario: scenario.clone(),
        injected: trace.len(),
        offered_load: config.offered_load(),
        accepted_throughput: report.accepted_throughput(),
        latency: report.latency(),
        blocked: report.blocked_attempts,
        occupancy: report.mean_wavelength_occupancy(),
        stall_mean: report.stall().mean,
        credit_occupancy: report.credit_occupancy,
        energy_pj_per_bit: energy.as_ref().map_or(0.0, EnergyReport::pj_per_bit),
        energy_static_frac: energy.as_ref().map_or(0.0, EnergyReport::static_fraction),
        failed_attempts: report.failed_attempts,
        lost: report.lost_messages,
        retransmitted_bits: report.retransmitted_bits,
        outages: rel.outages,
        heals: rel.heals,
        recovery_p50: rel.outage_recovery.p50,
        recovery_p95: rel.outage_recovery.p95,
        recovery_p99: rel.outage_recovery.p99,
    };
    let phases = ScenarioPhases {
        setup_ms,
        simulate_ms,
        report_ms: elapsed_ms(report_start),
    };
    (result, phases)
}

/// Fans the grid out over `threads` scoped workers and gathers results in
/// grid order.
///
/// Workers pull scenario indices from a shared atomic counter, so load
/// balances itself; results land in their scenario's slot, so the output
/// is identical for any `threads ≥ 1`.
///
/// # Panics
///
/// Panics if `threads == 0` or a worker panics (the panic is propagated).
#[must_use]
pub fn run_sweep(grid: &SweepGrid, threads: usize) -> SweepOutcome {
    assert!(threads > 0, "the sweep needs at least one worker thread");
    let scenarios = grid.scenarios();
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<ScenarioResult>>> = Mutex::new(vec![None; scenarios.len()]);
    let workers_used = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            handles.push(scope.spawn(|| {
                let mut did_work = false;
                // One reusable buffer set per worker: successive scenarios
                // run allocation-free once the buffers are warm.
                let mut scratch = SimScratch::new();
                loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    let Some(scenario) = scenarios.get(index) else {
                        break;
                    };
                    let result = run_scenario_with(grid, scenario, &mut scratch);
                    slots.lock().expect("no worker panicked holding the lock")[index] =
                        Some(result);
                    did_work = true;
                }
                if did_work {
                    workers_used.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
        for handle in handles {
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
    });

    let results = slots
        .into_inner()
        .expect("all workers joined")
        .into_iter()
        .map(|slot| slot.expect("every scenario index was claimed exactly once"))
        .collect();
    SweepOutcome {
        results,
        threads,
        workers_used: workers_used.into_inner(),
    }
}

/// Configuration of the adaptive sustained-knee search
/// (see [`find_sustained_knee`]).
#[derive(Debug, Clone, PartialEq)]
pub struct KneeSearchConfig {
    /// Accepted throughput within this fraction of the plateau counts as
    /// "at the knee" (matches the grid-mode experiment's 0.98).
    pub tolerance: f64,
    /// Lower end of the offered-rate bracket.
    pub rate_lo: f64,
    /// Upper end of the bracket; must be comfortably past saturation.
    pub rate_hi: f64,
    /// Bisection stops once the bracket's ratio `hi/lo` is below
    /// `1 + rate_resolution`.
    pub rate_resolution: f64,
}

impl Default for KneeSearchConfig {
    fn default() -> Self {
        Self {
            tolerance: 0.98,
            rate_lo: 0.001,
            rate_hi: 0.32,
            rate_resolution: 0.05,
        }
    }
}

/// Outcome of [`find_sustained_knee`].
#[derive(Debug, Clone, PartialEq)]
pub struct KneeResult {
    /// The sustained accepted-throughput plateau (bits per cycle).
    pub plateau: f64,
    /// Lowest probed offered rate whose accepted throughput reaches
    /// `tolerance × plateau`.
    pub knee_rate: f64,
    /// Offered load (bits per cycle) at the knee rate.
    pub knee_offered: f64,
    /// Simulation runs the search spent.
    pub evaluations: usize,
    /// Every probed `(rate, accepted throughput)`, in probe order.
    pub probes: Vec<(f64, f64)>,
}

/// Locates the sustained saturation knee of a (single-pattern,
/// single-comb, single-ring) grid by geometric bisection instead of a
/// fixed rate grid: `O(log(hi/lo) / log(1 + resolution))` simulation runs
/// to a configurable tolerance, versus one run per grid point.
///
/// The plateau is probed at `rate_hi` and `2 × rate_hi` (doubling once
/// more if throughput still grows by > 2%, so an undersized bracket is
/// corrected rather than silently accepted). The knee is the lowest rate
/// whose accepted throughput reaches `tolerance × plateau`; accepted
/// throughput is monotone in offered rate up to simulation noise, which
/// the bisection inherits from the grid mode anyway. Deterministic under
/// the grid seed.
///
/// # Panics
///
/// Panics if the grid has more than one pattern/comb/ring axis value, or
/// the bracket is degenerate.
#[must_use]
pub fn find_sustained_knee(grid: &SweepGrid, config: &KneeSearchConfig) -> KneeResult {
    assert_eq!(grid.patterns.len(), 1, "knee search needs one pattern");
    assert_eq!(grid.wavelengths.len(), 1, "knee search needs one comb");
    assert_eq!(grid.ring_sizes.len(), 1, "knee search needs one ring");
    assert!(
        config.rate_lo > 0.0 && config.rate_lo < config.rate_hi,
        "need 0 < rate_lo < rate_hi"
    );
    assert!(
        config.tolerance > 0.0 && config.tolerance <= 1.0,
        "tolerance must be in (0, 1]"
    );
    assert!(config.rate_resolution > 0.0, "resolution must be positive");

    let mut probes = Vec::new();
    let mut scratch = SimScratch::new();
    let mut probe = |rate: f64, probes: &mut Vec<(f64, f64)>| -> ScenarioResult {
        let point = SweepGrid {
            injection_rates: vec![rate],
            ..grid.clone()
        };
        let scenario = &point.scenarios()[0];
        let result = run_scenario_with(&point, scenario, &mut scratch);
        probes.push((rate, result.accepted_throughput));
        result
    };

    // Establish the plateau; double the upper bracket (up to four times)
    // while accepted throughput still climbs noticeably. `throughput_hi`
    // tracks f(hi) so the bisection invariant — the upper bracket meets
    // the target — holds even for tolerances close to 1.
    let mut hi = config.rate_hi;
    let mut throughput_hi = probe(hi, &mut probes).accepted_throughput;
    let mut plateau = throughput_hi;
    for _ in 0..4 {
        let doubled = probe(hi * 2.0, &mut probes).accepted_throughput;
        if doubled <= plateau * 1.02 {
            if doubled > plateau {
                plateau = doubled;
                if throughput_hi < config.tolerance * plateau {
                    // f(hi) no longer reaches the (raised) target; the
                    // doubled rate, which set the plateau, does.
                    hi *= 2.0;
                    throughput_hi = doubled;
                }
            }
            break;
        }
        hi *= 2.0;
        throughput_hi = doubled;
        plateau = doubled;
    }
    let target = config.tolerance * plateau;
    debug_assert!(
        throughput_hi >= target,
        "upper bracket must meet the knee target"
    );

    let mut lo = config.rate_lo;
    let lo_result = probe(lo, &mut probes);
    if lo_result.accepted_throughput >= target {
        // Already saturated at the bracket floor.
        return KneeResult {
            plateau,
            knee_rate: lo,
            knee_offered: lo_result.offered_load,
            evaluations: probes.len(),
            probes,
        };
    }
    while hi / lo > 1.0 + config.rate_resolution {
        let mid = (lo * hi).sqrt();
        if probe(mid, &mut probes).accepted_throughput >= target {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    // Offered load is analytic (rate × nodes × message volume), so the
    // knee's offered point needs no extra simulation run.
    #[allow(clippy::cast_precision_loss)]
    let knee_offered = hi * grid.ring_sizes[0] as f64 * grid.message_volume.value();
    KneeResult {
        plateau,
        knee_rate: hi,
        knee_offered,
        evaluations: probes.len(),
        probes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_grid() -> SweepGrid {
        SweepGrid {
            patterns: vec![TrafficPattern::UniformRandom, TrafficPattern::Transpose],
            injection_rates: vec![0.005, 0.02],
            wavelengths: vec![4],
            ring_sizes: vec![8, 16],
            message_volume: Bits::new(256.0),
            horizon: 2_000,
            seed: 99,
            lane_rate: BitsPerCycle::new(1.0),
            policy: DynamicPolicy::Single,
            burstiness: None,
            injection: InjectionMode::Open,
            energy: None,
            faults: None,
            transport: TransportMode::None,
            healing: None,
            aimd: AimdParams::default(),
            workers: 1,
            static_map: None,
        }
    }

    #[test]
    fn grid_expansion_order_and_indices() {
        let scenarios = tiny_grid().scenarios();
        assert_eq!(scenarios.len(), 8);
        for (i, s) in scenarios.iter().enumerate() {
            assert_eq!(s.index, i);
        }
        // Slowest axis is ring size.
        assert!(scenarios[..4].iter().all(|s| s.nodes == 8));
        assert!(scenarios[4..].iter().all(|s| s.nodes == 16));
    }

    #[test]
    fn sweep_is_identical_across_thread_counts() {
        let grid = tiny_grid();
        let one = run_sweep(&grid, 1);
        let four = run_sweep(&grid, 4);
        assert_eq!(one.results, four.results);
        assert_eq!(one.results.len(), 8);
    }

    #[test]
    fn multiple_workers_participate() {
        // 8 scenarios over 4 workers: with work-stealing via the shared
        // counter, at least two workers get a scenario in practice. The
        // assertion is intentionally weak (≥ 1) plus a sanity ceiling —
        // scheduling can in principle let one worker drain the queue.
        let outcome = run_sweep(&tiny_grid(), 4);
        assert!(outcome.workers_used >= 1 && outcome.workers_used <= 4);
        assert_eq!(outcome.threads, 4);
    }

    #[test]
    fn latency_grows_towards_saturation() {
        let grid = SweepGrid {
            patterns: vec![TrafficPattern::UniformRandom],
            injection_rates: vec![0.002, 0.2],
            wavelengths: vec![2],
            ring_sizes: vec![16],
            horizon: 5_000,
            ..tiny_grid()
        };
        let outcome = run_sweep(&grid, 2);
        let low = &outcome.results[0];
        let high = &outcome.results[1];
        assert!(
            high.latency.mean > 2.0 * low.latency.mean,
            "saturated mean {} vs unloaded mean {}",
            high.latency.mean,
            low.latency.mean
        );
        assert!(high.blocked > low.blocked);
    }

    #[test]
    fn closed_loop_sweep_is_thread_deterministic_and_reports_backpressure() {
        let grid = SweepGrid {
            injection: InjectionMode::Credit { window: 2 },
            injection_rates: vec![0.002, 0.2],
            wavelengths: vec![2],
            ring_sizes: vec![16],
            horizon: 4_000,
            ..tiny_grid()
        };
        let one = run_sweep(&grid, 1);
        let four = run_sweep(&grid, 4);
        assert_eq!(one.results, four.results);
        // Past saturation the credit gate stalls sources and the credit
        // windows fill up; below it they barely register. (Grid order:
        // uniform @ {0.002, 0.2}, then transpose @ {0.002, 0.2}; at 256
        // bits per message a 16-node 2-λ ring saturates near rate 0.004.)
        let (low, high) = (&one.results[0], &one.results[1]);
        assert!(high.stall_mean > low.stall_mean);
        assert!(high.credit_occupancy > low.credit_occupancy);
        assert!(high.credit_occupancy <= 1.0 + 1e-9);
    }

    #[test]
    fn credit_sweep_accepted_throughput_plateaus_where_open_loop_queues() {
        let base = SweepGrid {
            patterns: vec![TrafficPattern::UniformRandom],
            injection_rates: vec![0.08, 0.32],
            wavelengths: vec![1],
            ring_sizes: vec![16],
            horizon: 5_000,
            ..tiny_grid()
        };
        let credit = SweepGrid {
            injection: InjectionMode::Credit { window: 1 },
            ..base.clone()
        };
        let open = run_sweep(&base, 2);
        let closed = run_sweep(&credit, 2);
        // Both operating points are past the 1-λ knee: the closed loop
        // sustains (near-)identical accepted throughput at 4× the offered
        // load instead of just queueing deeper.
        let ratio = closed.results[1].accepted_throughput / closed.results[0].accepted_throughput;
        assert!(
            (0.85..=1.15).contains(&ratio),
            "sustained knee must plateau, got ratio {ratio}"
        );
        // And the closed loop's end-to-end latency stays bounded by the
        // stall-aware admission rather than exploding NI queues.
        assert!(closed.results[1].stall_mean > 0.0);
        assert!(open.results[1].latency.mean > closed.results[1].latency.mean / 10.0);
    }

    #[test]
    fn csv_and_json_are_well_formed() {
        let outcome = run_sweep(&tiny_grid(), 2);
        let rows = outcome.to_csv();
        assert_eq!(rows.len(), 8);
        let columns = SweepOutcome::CSV_HEADER.split(',').count();
        for row in &rows {
            assert_eq!(row.split(',').count(), columns, "row {row}");
        }
        let json = outcome.to_json();
        assert!(json.contains("\"results\": ["));
        assert_eq!(json.matches("\"pattern\"").count(), 8);
        // Balanced braces as a cheap well-formedness proxy.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn fault_sweep_populates_reliability_columns_and_is_deterministic() {
        let grid = SweepGrid {
            faults: Some(FaultPlan::new(7).with_ber(1e-3)),
            transport: TransportMode::go_back_n(),
            patterns: vec![TrafficPattern::UniformRandom],
            injection_rates: vec![0.01, 0.04],
            wavelengths: vec![2],
            ring_sizes: vec![16],
            horizon: 3_000,
            ..tiny_grid()
        };
        let one = run_sweep(&grid, 1);
        let four = run_sweep(&grid, 4);
        assert_eq!(one.results, four.results, "fault runs replay exactly");
        // At BER 1e-3 and 256-bit messages roughly a fifth of attempts
        // corrupt, so the grid sees retransmissions somewhere.
        assert!(one.results.iter().any(|r| r.failed_attempts > 0));
        for r in &one.results {
            assert_eq!(r.failed_attempts == 0, r.retransmitted_bits == 0.0, "{r:?}");
        }
        // A vacuous plan with no transport leaves the sweep bit-identical
        // to the plain grid.
        let vacuous = SweepGrid {
            faults: Some(FaultPlan::new(3)),
            ..tiny_grid()
        };
        assert_eq!(
            run_sweep(&vacuous, 2).results,
            run_sweep(&tiny_grid(), 2).results
        );
    }

    #[test]
    fn healing_sweep_populates_recovery_columns_and_beats_parking() {
        use onoc_sim::{HealPolicy, LaneFault};
        let grid = |policy: HealPolicy| SweepGrid {
            static_map: Some(StaticFlowMap::striped(16, 4, 1)),
            faults: Some(FaultPlan::new(5).with_scheduled(LaneFault {
                lane: 0,
                at: 500,
                duration: u64::MAX,
            })),
            healing: Some(HealingConfig {
                policy,
                ber_threshold: None,
            }),
            patterns: vec![TrafficPattern::UniformRandom],
            injection_rates: vec![0.02],
            wavelengths: vec![4],
            ring_sizes: vec![16],
            horizon: 4_000,
            ..tiny_grid()
        };
        let park = run_sweep(&grid(HealPolicy::Park), 2);
        let repack = run_sweep(&grid(HealPolicy::RePackRelaxed), 2);
        let (p, r) = (&park.results[0], &repack.results[0]);
        // Both observe the outage; only the re-pack heals, and its
        // recovery latency is the finite heal delay rather than the
        // horizon-censored park figure.
        assert_eq!(p.outages, 1);
        assert_eq!(r.outages, 1);
        assert_eq!(p.heals, 0);
        assert_eq!(r.heals, 1);
        assert!(r.recovery_p99 <= p.recovery_p99);
        assert!(
            r.accepted_throughput > p.accepted_throughput,
            "re-pack throughput {} must beat park {}",
            r.accepted_throughput,
            p.accepted_throughput
        );
        assert!(r.lost < p.lost);
        // The healing sweep replays across thread counts.
        assert_eq!(
            run_sweep(&grid(HealPolicy::RePackRelaxed), 1).results,
            repack.results
        );
    }

    #[test]
    fn energy_model_populates_the_energy_columns_deterministically() {
        use onoc_sim::EnergyModel;
        let grid = SweepGrid {
            energy: Some(EnergyModel::paper(16, 4)),
            patterns: vec![TrafficPattern::UniformRandom],
            injection_rates: vec![0.005, 0.04],
            wavelengths: vec![4],
            ring_sizes: vec![16],
            horizon: 3_000,
            ..tiny_grid()
        };
        let one = run_sweep(&grid, 1);
        let four = run_sweep(&grid, 4);
        assert_eq!(one.results, four.results, "energy folding is deterministic");
        for r in &one.results {
            assert!(r.energy_pj_per_bit > 0.0, "{r:?}");
            assert!(
                r.energy_static_frac > 0.0 && r.energy_static_frac < 1.0,
                "{r:?}"
            );
        }
        // Higher load amortises the always-on MR tuning power over more
        // bits: energy per bit drops as offered load grows.
        assert!(
            one.results[1].energy_pj_per_bit < one.results[0].energy_pj_per_bit,
            "pJ/bit must fall with load: {} vs {}",
            one.results[1].energy_pj_per_bit,
            one.results[0].energy_pj_per_bit
        );
        // Without a model the columns are exact zeroes and the rest of
        // the result is unchanged.
        let plain = run_sweep(
            &SweepGrid {
                energy: None,
                ..grid
            },
            2,
        );
        for (e, p) in one.results.iter().zip(&plain.results) {
            assert_eq!(p.energy_pj_per_bit, 0.0);
            assert_eq!(p.energy_static_frac, 0.0);
            assert_eq!(e.latency, p.latency, "probes must not change results");
            assert_eq!(e.accepted_throughput, p.accepted_throughput);
        }
    }

    #[test]
    fn scenario_seeds_differ_per_index() {
        let grid = tiny_grid();
        let scenarios = grid.scenarios();
        let a = run_scenario(&grid, &scenarios[0]);
        let b = run_scenario(&grid, &scenarios[1]);
        // Same pattern family, different rate AND different derived seed.
        assert_ne!(a.injected, 0);
        assert_ne!(a.latency, b.latency);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let _ = run_sweep(&tiny_grid(), 0);
    }

    // ------------------------------------------------- knee search --

    fn knee_grid(window: usize) -> SweepGrid {
        SweepGrid {
            patterns: vec![TrafficPattern::UniformRandom],
            injection_rates: vec![],
            wavelengths: vec![1],
            ring_sizes: vec![16],
            message_volume: Bits::new(256.0),
            horizon: 4_000,
            seed: 2017,
            lane_rate: BitsPerCycle::new(1.0),
            policy: DynamicPolicy::Single,
            burstiness: None,
            injection: InjectionMode::Credit { window },
            energy: None,
            faults: None,
            transport: TransportMode::None,
            healing: None,
            aimd: AimdParams::default(),
            workers: 1,
            static_map: None,
        }
    }

    #[test]
    fn knee_search_brackets_the_grid_mode_knee() {
        let grid = knee_grid(2);
        let config = KneeSearchConfig::default();
        let knee = find_sustained_knee(&grid, &config);
        // The plateau is a real operating point, the knee sits inside
        // the bracket, and its throughput is within tolerance of it.
        assert!(knee.plateau > 0.0);
        assert!(knee.knee_rate >= config.rate_lo && knee.knee_rate <= config.rate_hi * 16.0);
        let (_, at_knee) = *knee
            .probes
            .iter()
            .rfind(|&&(r, _)| (r - knee.knee_rate).abs() < 1e-12)
            .expect("knee rate was probed");
        assert!(at_knee >= config.tolerance * knee.plateau * 0.999);
        // O(log) evaluations: a 0.001..0.32 bracket at 5% resolution is
        // ~120 grid points; the search spends far fewer runs.
        assert!(
            knee.evaluations <= 2 + 4 + 120,
            "evaluations {}",
            knee.evaluations
        );
        assert!(knee.evaluations < 130);
        assert_eq!(knee.evaluations, knee.probes.len());
    }

    #[test]
    fn knee_search_is_deterministic_and_logarithmic() {
        let grid = knee_grid(2);
        let config = KneeSearchConfig {
            rate_resolution: 0.10,
            ..KneeSearchConfig::default()
        };
        let a = find_sustained_knee(&grid, &config);
        let b = find_sustained_knee(&grid, &config);
        assert_eq!(a, b, "pure function of grid + config");
        // log(320)/log(1.1) ≈ 61 bisection steps worst case; the real
        // count also includes the plateau and floor probes.
        assert!(a.evaluations <= 70, "evaluations {}", a.evaluations);
    }

    #[test]
    fn knee_search_saturated_floor_short_circuits() {
        // With a bracket floor already past saturation the knee is the
        // floor and the search stops after the plateau + floor probes.
        let grid = knee_grid(1);
        let config = KneeSearchConfig {
            rate_lo: 0.16,
            rate_hi: 0.32,
            ..KneeSearchConfig::default()
        };
        let knee = find_sustained_knee(&grid, &config);
        assert_eq!(knee.knee_rate, 0.16);
        assert!(knee.evaluations <= 6, "evaluations {}", knee.evaluations);
    }

    #[test]
    #[should_panic(expected = "one pattern")]
    fn knee_search_rejects_multi_axis_grids() {
        let grid = SweepGrid {
            patterns: vec![TrafficPattern::UniformRandom, TrafficPattern::Transpose],
            ..knee_grid(2)
        };
        let _ = find_sustained_knee(&grid, &KneeSearchConfig::default());
    }
}
