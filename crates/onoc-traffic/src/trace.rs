//! Trace generation: turn a pattern + injection process into a stream of
//! timed [`TrafficEvent`]s.
//!
//! Each node runs an independent injection process derived from the master
//! seed via [`TrafficRng::split`], so the trace is a pure function of the
//! configuration — independent of generation order, thread count, or how
//! many other scenarios share the seed.
//!
//! Two injection processes are provided:
//!
//! * **Bernoulli** (default): each node independently injects a message
//!   with probability `injection_rate` per cycle — the standard open-loop
//!   load model.
//! * **ON-OFF bursty** ([`OnOffConfig`]): nodes alternate Pareto-length ON
//!   periods and geometric OFF gaps, injecting only while ON. Heavy-tailed
//!   ON periods give the aggregate stream the burstiness/self-similarity
//!   of measured traffic (Willinger et al.'s ON-OFF construction). The ON
//!   rate is scaled so the long-run mean rate still equals
//!   `injection_rate`, keeping sweeps comparable.

use onoc_sim::{TrafficEvent, TrafficSource};
use onoc_topology::NodeId;
use onoc_units::Bits;

use crate::pattern::TrafficPattern;
use crate::rng::TrafficRng;

/// Parameters of the bursty ON-OFF injection process.
#[derive(Debug, Clone, PartialEq)]
pub struct OnOffConfig {
    /// Mean ON-period length in cycles (Pareto-distributed, shape
    /// [`OnOffConfig::PARETO_SHAPE`], capped at 64× the mean).
    pub mean_on: f64,
    /// Mean OFF-period length in cycles (geometric); exactly 0 (never
    /// idle) or at least 1.
    pub mean_off: f64,
}

impl OnOffConfig {
    /// Pareto shape for ON periods. 1.5 sits in the (1, 2) range that
    /// yields self-similar aggregate traffic: finite mean, infinite
    /// variance.
    pub const PARETO_SHAPE: f64 = 1.5;

    /// A moderately bursty default: 50-cycle bursts separated by
    /// 200-cycle idle gaps (20% duty cycle).
    #[must_use]
    pub fn default_bursty() -> Self {
        Self {
            mean_on: 50.0,
            mean_off: 200.0,
        }
    }

    /// Fraction of time a node spends ON.
    #[must_use]
    pub fn duty_cycle(&self) -> f64 {
        self.mean_on / (self.mean_on + self.mean_off)
    }

    fn validate(&self) {
        assert!(
            self.mean_on >= 1.0 && (self.mean_off == 0.0 || self.mean_off >= 1.0),
            "ON-OFF means must be >= 1 (on) and 0 or >= 1 (off), got on {} / off {}",
            self.mean_on,
            self.mean_off
        );
    }

    /// Pareto scale `x_m` whose mean equals `mean_on` at the fixed shape.
    fn pareto_scale(&self) -> f64 {
        // E[X] = α·x_m / (α − 1)  ⇒  x_m = mean·(α − 1)/α.
        self.mean_on * (Self::PARETO_SHAPE - 1.0) / Self::PARETO_SHAPE
    }
}

/// Full specification of one synthetic traffic workload.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficConfig {
    /// Ring size.
    pub nodes: usize,
    /// Destination rule.
    pub pattern: TrafficPattern,
    /// Mean injected messages per node per cycle, in `[0, 1]`.
    pub injection_rate: f64,
    /// Size of every message.
    pub message_volume: Bits,
    /// Injection window: messages enter during `[0, horizon)`.
    pub horizon: u64,
    /// Master seed; everything downstream derives from it.
    pub seed: u64,
    /// `Some` switches the Bernoulli process to bursty ON-OFF.
    pub burstiness: Option<OnOffConfig>,
}

impl TrafficConfig {
    /// A small, fast default on the paper's 16-node ring: uniform traffic,
    /// 512-bit messages, a 10 kcc window.
    #[must_use]
    pub fn paper_ring(pattern: TrafficPattern, injection_rate: f64, seed: u64) -> Self {
        Self {
            nodes: 16,
            pattern,
            injection_rate,
            message_volume: Bits::new(512.0),
            horizon: 10_000,
            seed,
            burstiness: None,
        }
    }

    fn validate(&self) {
        assert!(
            self.nodes >= 2,
            "a ring needs at least 2 nodes, got {}",
            self.nodes
        );
        assert!(
            (0.0..=1.0).contains(&self.injection_rate),
            "injection rate is a per-cycle probability, got {}",
            self.injection_rate
        );
        assert!(
            self.message_volume.value() > 0.0,
            "messages need a positive volume, got {}",
            self.message_volume
        );
        self.pattern.validate(self.nodes);
        if let Some(b) = &self.burstiness {
            b.validate();
            // The ON-period rate is injection_rate / duty_cycle; it must
            // stay a probability or the mean-rate guarantee breaks.
            assert!(
                self.injection_rate <= b.duty_cycle(),
                "bursty injection rate {} exceeds the ON-OFF duty cycle {:.3}: \
                 the rescaled burst rate would exceed 1 msg/cycle",
                self.injection_rate,
                b.duty_cycle()
            );
        }
    }

    /// Mean offered load in bits per cycle across the whole ring.
    #[must_use]
    pub fn offered_load(&self) -> f64 {
        self.injection_rate * self.nodes as f64 * self.message_volume.value()
    }
}

/// A generated, time-ordered batch of traffic events.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficTrace {
    events: Vec<TrafficEvent>,
}

impl TrafficTrace {
    /// The events in nondecreasing time order.
    #[must_use]
    pub fn events(&self) -> &[TrafficEvent] {
        &self.events
    }

    /// Number of messages.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no node ever injected.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// A polling [`TrafficSource`] over the trace (cheap; clones nothing).
    #[must_use]
    pub fn source(&self) -> TraceSource<'_> {
        TraceSource {
            events: &self.events,
            at: 0,
        }
    }

    /// Consumes the trace into an owning source.
    #[must_use]
    pub fn into_source(self) -> std::vec::IntoIter<TrafficEvent> {
        self.events.into_iter()
    }

    /// Summarises the trace: counts, cycle span, volume, offered load and
    /// per-node histograms (the `onoc trace info` payload).
    #[must_use]
    pub fn stats(&self) -> TraceStats {
        let mut stats = TraceStats {
            messages: self.events.len(),
            first_cycle: self.events.iter().map(|e| e.time).min().unwrap_or(0),
            last_cycle: self.events.iter().map(|e| e.time).max().unwrap_or(0),
            total_bits: self.events.iter().map(|e| e.volume.value()).sum(),
            mean_offered_bits_per_cycle: 0.0,
            per_source: Vec::new(),
            per_dest: Vec::new(),
        };
        let nodes = self
            .events
            .iter()
            .map(|e| e.src.0.max(e.dst.0) + 1)
            .max()
            .unwrap_or(0);
        stats.per_source = vec![0; nodes];
        stats.per_dest = vec![0; nodes];
        for e in &self.events {
            stats.per_source[e.src.0] += 1;
            stats.per_dest[e.dst.0] += 1;
        }
        if stats.messages > 0 {
            // The offered window convention matches
            // `OpenLoopReport::offered_load`: a burst entirely at cycle 0
            // is a 1-cycle window.
            #[allow(clippy::cast_precision_loss)]
            {
                stats.mean_offered_bits_per_cycle =
                    stats.total_bits / (stats.last_cycle + 1) as f64;
            }
        }
        stats
    }
}

/// Summary statistics of a message trace (see [`TrafficTrace::stats`]).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Number of messages.
    pub messages: usize,
    /// Earliest offered cycle (0 for an empty trace).
    pub first_cycle: u64,
    /// Latest offered cycle (0 for an empty trace).
    pub last_cycle: u64,
    /// Total offered volume in bits.
    pub total_bits: f64,
    /// `total_bits / (last_cycle + 1)` — the whole-trace offered load.
    pub mean_offered_bits_per_cycle: f64,
    /// Messages produced per source node (indexed by node id, length
    /// `max referenced node + 1`).
    pub per_source: Vec<usize>,
    /// Messages consumed per destination node (same indexing).
    pub per_dest: Vec<usize>,
}

/// Why a CSV trace document could not be loaded.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceParseError {
    /// A row could not be parsed.
    Row {
        /// 1-based line number of the offending row.
        line: usize,
        /// What is wrong with it.
        message: String,
    },
    /// The document holds no event rows.
    Empty,
}

impl core::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TraceParseError::Row { line, message } => {
                write!(f, "trace line {line}: {message}")
            }
            TraceParseError::Empty => write!(f, "trace holds no event rows"),
        }
    }
}

impl std::error::Error for TraceParseError {}

/// The header [`TrafficTrace::to_csv`] writes and
/// [`TrafficTrace::from_csv_str`] accepts (and skips) on the first line.
pub const TRACE_CSV_HEADER: &str = "cycle,src,dst,size";

impl TrafficTrace {
    /// Loads an external message trace from `cycle,src,dst,size` CSV rows
    /// (sizes in bits; an optional header line and blank or `#`-comment
    /// lines are skipped). Rows are sorted by `(cycle, src, dst)`, so
    /// out-of-order dumps replay deterministically.
    ///
    /// Node bounds are checked by the engine against the ring the trace
    /// is replayed on, not here — a trace file is ring-agnostic data.
    ///
    /// # Errors
    ///
    /// Returns [`TraceParseError`] on a malformed row (wrong column
    /// count, unparsable number, nonpositive size) or an event-free
    /// document.
    pub fn from_csv_str(input: &str) -> Result<Self, TraceParseError> {
        let mut events = Vec::new();
        let mut seen_row = false;
        for (index, raw) in input.lines().enumerate() {
            let line = index + 1;
            let row = raw.trim();
            if row.is_empty() || row.starts_with('#') {
                continue;
            }
            // The header may follow leading blank/comment lines, but not
            // actual data rows.
            if !seen_row && row.eq_ignore_ascii_case(TRACE_CSV_HEADER) {
                seen_row = true;
                continue;
            }
            seen_row = true;
            let fields: Vec<&str> = row.split(',').map(str::trim).collect();
            if fields.len() != 4 {
                return Err(TraceParseError::Row {
                    line,
                    message: format!(
                        "expected 4 columns (cycle,src,dst,size), got {}",
                        fields.len()
                    ),
                });
            }
            let number = |field: &str, what: &str| -> Result<u64, TraceParseError> {
                field.parse::<u64>().map_err(|_| TraceParseError::Row {
                    line,
                    message: format!("could not parse {what} {field:?}"),
                })
            };
            let time = number(fields[0], "cycle")?;
            let src = number(fields[1], "src")? as usize;
            let dst = number(fields[2], "dst")? as usize;
            let size = fields[3].parse::<f64>().map_err(|_| TraceParseError::Row {
                line,
                message: format!("could not parse size {:?}", fields[3]),
            })?;
            if !size.is_finite() || size <= 0.0 {
                return Err(TraceParseError::Row {
                    line,
                    message: format!("size must be a positive bit count, got {size}"),
                });
            }
            if src == dst {
                return Err(TraceParseError::Row {
                    line,
                    message: format!("self-addressed row n{src}→n{dst} never enters the ring"),
                });
            }
            events.push(TrafficEvent {
                time,
                src: NodeId(src),
                dst: NodeId(dst),
                volume: Bits::new(size),
            });
        }
        if events.is_empty() {
            return Err(TraceParseError::Empty);
        }
        events.sort_by_key(|e| (e.time, e.src, e.dst));
        Ok(Self { events })
    }

    /// Renders the trace as `cycle,src,dst,size` CSV with a header line
    /// (the inverse of [`TrafficTrace::from_csv_str`]).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from(TRACE_CSV_HEADER);
        for e in &self.events {
            out.push('\n');
            out.push_str(&format!(
                "{},{},{},{}",
                e.time,
                e.src.0,
                e.dst.0,
                e.volume.value()
            ));
        }
        out.push('\n');
        out
    }

    /// The largest node index any event references (the minimum ring
    /// size for replay is one more than this).
    #[must_use]
    pub fn max_node(&self) -> usize {
        self.events
            .iter()
            .map(|e| e.src.0.max(e.dst.0))
            .max()
            .unwrap_or(0)
    }
}

/// Borrowing [`TrafficSource`] over a [`TrafficTrace`].
#[derive(Debug, Clone)]
pub struct TraceSource<'a> {
    events: &'a [TrafficEvent],
    at: usize,
}

impl TrafficSource for TraceSource<'_> {
    fn next_event(&mut self) -> Option<TrafficEvent> {
        let event = self.events.get(self.at).copied();
        self.at += 1;
        event
    }
}

/// Generates the deterministic trace for `config`.
///
/// Each node walks the injection window cycle by cycle with its own split
/// stream; per-node events are then merged by `(time, src)`, which is a
/// total order because one node injects at most once per cycle.
///
/// # Panics
///
/// Panics on a degenerate configuration (see [`TrafficConfig`] field
/// docs).
#[must_use]
pub fn generate(config: &TrafficConfig) -> TrafficTrace {
    config.validate();
    let master = TrafficRng::new(config.seed);
    let mut events = Vec::new();
    for node in 0..config.nodes {
        generate_node(config, node, &master, &mut events);
    }
    events.sort_by_key(|e| (e.time, e.src));
    TrafficTrace { events }
}

/// One node's independent injection process.
fn generate_node(
    config: &TrafficConfig,
    node: usize,
    master: &TrafficRng,
    out: &mut Vec<TrafficEvent>,
) {
    if config.burstiness.is_none() {
        generate_node_geometric(config, node, master, out);
    } else {
        generate_node_per_cycle(config, node, master, out);
    }
}

/// Smooth-traffic fast path: geometric inter-arrival sampling.
///
/// Instead of one Bernoulli draw (uniform → `f64` → compare) per cycle,
/// the clock stream is scanned as raw 53-bit integers against a
/// precomputed threshold, yielding the next arrival gap directly — the
/// gap is Geometric(`injection_rate`) by construction. The scan consumes
/// exactly one draw per cycle, and `k < ⌈p·2⁵³⌉` decides identically to
/// `k·2⁻⁵³ < p` (both products are exact: power-of-two scaling loses no
/// bits), so the trace is bit-identical to the per-cycle reference —
/// pinned by the `geometric_sampling_matches_per_cycle_reference`
/// property test.
fn generate_node_geometric(
    config: &TrafficConfig,
    node: usize,
    master: &TrafficRng,
    out: &mut Vec<TrafficEvent>,
) {
    let mut clock_rng = master.split(node as u64 * 2);
    let mut addr_rng = master.split(node as u64 * 2 + 1);
    let src = NodeId(node);
    let threshold = bernoulli_threshold(config.injection_rate);
    let mut cycle = 0u64;
    while let Some(hit) = next_arrival(&mut clock_rng, threshold, cycle, config.horizon) {
        if let Some(dst) = config.pattern.destination(src, config.nodes, &mut addr_rng) {
            out.push(TrafficEvent {
                time: hit,
                src,
                dst,
                volume: config.message_volume,
            });
        }
        cycle = hit + 1;
    }
}

/// The integer threshold equivalent to [`TrafficRng::bernoulli`]\(`p`\):
/// a draw hits iff its top 53 bits are below the returned value.
fn bernoulli_threshold(p: f64) -> u64 {
    let p = if p.is_nan() { 0.0 } else { p.clamp(0.0, 1.0) };
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    {
        (p * (1u64 << 53) as f64).ceil() as u64
    }
}

/// Scans the clock stream from `from`, returning the first cycle before
/// `horizon` whose draw hits `threshold` (one draw per cycle).
fn next_arrival(rng: &mut TrafficRng, threshold: u64, from: u64, horizon: u64) -> Option<u64> {
    (from..horizon).find(|_| (rng.next_u64() >> 11) < threshold)
}

/// The cycle-by-cycle reference process: one Bernoulli draw per cycle,
/// plus the ON/OFF phase machine when burstiness is configured.
fn generate_node_per_cycle(
    config: &TrafficConfig,
    node: usize,
    master: &TrafficRng,
    out: &mut Vec<TrafficEvent>,
) {
    // Separate streams for timing and addressing, so adding a pattern draw
    // never perturbs the arrival process.
    let mut clock_rng = master.split(node as u64 * 2);
    let mut addr_rng = master.split(node as u64 * 2 + 1);
    let src = NodeId(node);

    let (rate_when_active, mut phase) = match &config.burstiness {
        None => (config.injection_rate, Phase::AlwaysOn),
        Some(onoff) => {
            // Rescale so duty_cycle × on_rate = mean injection rate;
            // validate() guarantees the rescaled rate stays a probability.
            let on_rate = config.injection_rate / onoff.duty_cycle();
            (on_rate, Phase::Off { remaining: 0 })
        }
    };

    for cycle in 0..config.horizon {
        if let Some(onoff) = &config.burstiness {
            phase = phase.step(onoff, &mut clock_rng);
        }
        let active = matches!(phase, Phase::AlwaysOn | Phase::On { .. });
        if !active || !clock_rng.bernoulli(rate_when_active) {
            continue;
        }
        if let Some(dst) = config.pattern.destination(src, config.nodes, &mut addr_rng) {
            out.push(TrafficEvent {
                time: cycle,
                src,
                dst,
                volume: config.message_volume,
            });
        }
    }
}

/// ON-OFF state machine for one node.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    /// Bernoulli process without bursts.
    AlwaysOn,
    /// Injecting for `remaining` more cycles.
    On { remaining: u64 },
    /// Idle for `remaining` more cycles.
    Off { remaining: u64 },
}

impl Phase {
    /// Advances one cycle, drawing fresh period lengths at boundaries.
    fn step(self, onoff: &OnOffConfig, rng: &mut TrafficRng) -> Phase {
        match self {
            Phase::AlwaysOn => Phase::AlwaysOn,
            Phase::On { remaining: 0 } | Phase::Off { remaining: 0 } => {
                let entering_on = matches!(self, Phase::Off { .. });
                if entering_on {
                    let cap = onoff.mean_on * 64.0;
                    let len = rng
                        .pareto(onoff.pareto_scale(), OnOffConfig::PARETO_SHAPE, cap)
                        .round()
                        .max(1.0) as u64;
                    Phase::On { remaining: len - 1 }
                } else if onoff.mean_off == 0.0 {
                    // Degenerate always-on configuration; validate()
                    // forbids mean_off in (0, 1) so p below stays ≤ 1.
                    Phase::On { remaining: 0 }
                } else {
                    // Geometric with mean `mean_off` via inverse CDF.
                    let p = 1.0 / onoff.mean_off;
                    let u = rng.next_f64().max(f64::MIN_POSITIVE);
                    let len = (u.ln() / (1.0 - p).ln()).ceil().max(1.0) as u64;
                    Phase::Off { remaining: len - 1 }
                }
            }
            Phase::On { remaining } => Phase::On {
                remaining: remaining - 1,
            },
            Phase::Off { remaining } => Phase::Off {
                remaining: remaining - 1,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_config() -> TrafficConfig {
        TrafficConfig::paper_ring(TrafficPattern::UniformRandom, 0.02, 7)
    }

    proptest::proptest! {
        #[test]
        fn geometric_sampling_matches_per_cycle_reference(
            seed in 0u64..10_000,
            nodes in 2usize..10,
            rate_mil in 0u64..=1_000,
            horizon in 1u64..3_000,
            uniform in proptest::any::<bool>(),
        ) {
            #[allow(clippy::cast_precision_loss)]
            let config = TrafficConfig {
                nodes,
                pattern: if uniform {
                    TrafficPattern::UniformRandom
                } else {
                    TrafficPattern::BitComplement
                },
                injection_rate: rate_mil as f64 / 1_000.0,
                horizon,
                seed,
                ..TrafficConfig::paper_ring(TrafficPattern::UniformRandom, 0.5, seed)
            };
            config.validate();
            let master = TrafficRng::new(config.seed);
            for node in 0..config.nodes {
                let mut fast = Vec::new();
                generate_node_geometric(&config, node, &master, &mut fast);
                let mut reference = Vec::new();
                generate_node_per_cycle(&config, node, &master, &mut reference);
                proptest::prop_assert_eq!(&fast, &reference);
            }
        }
    }

    #[test]
    fn bernoulli_threshold_is_exact_at_the_edges() {
        assert_eq!(bernoulli_threshold(0.0), 0);
        assert_eq!(bernoulli_threshold(1.0), 1u64 << 53);
        assert_eq!(bernoulli_threshold(f64::NAN), 0);
        assert_eq!(bernoulli_threshold(-3.0), 0);
        assert_eq!(bernoulli_threshold(7.0), 1u64 << 53);
        // 0.5 · 2⁵³ is exact; a draw of exactly the threshold misses.
        assert_eq!(bernoulli_threshold(0.5), 1u64 << 52);
    }

    #[test]
    fn traces_are_seed_deterministic() {
        let a = generate(&base_config());
        let b = generate(&base_config());
        assert_eq!(a, b);
        let c = generate(&TrafficConfig {
            seed: 8,
            ..base_config()
        });
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn trace_is_time_ordered_and_in_window() {
        let trace = generate(&base_config());
        assert!(!trace.is_empty());
        for pair in trace.events().windows(2) {
            assert!(pair[0].time <= pair[1].time);
        }
        assert!(trace.events().iter().all(|e| e.time < 10_000));
        assert!(trace.events().iter().all(|e| e.src != e.dst));
    }

    #[test]
    fn mean_rate_is_close_to_configured() {
        let config = TrafficConfig {
            horizon: 50_000,
            ..base_config()
        };
        let trace = generate(&config);
        let expected = config.injection_rate * config.nodes as f64 * config.horizon as f64;
        let got = trace.len() as f64;
        assert!(
            (got - expected).abs() < expected * 0.1,
            "expected ≈{expected}, got {got}"
        );
    }

    #[test]
    fn bursty_mean_rate_is_preserved() {
        let config = TrafficConfig {
            horizon: 200_000,
            burstiness: Some(OnOffConfig::default_bursty()),
            ..base_config()
        };
        let trace = generate(&config);
        let expected = config.injection_rate * config.nodes as f64 * config.horizon as f64;
        let got = trace.len() as f64;
        // Heavy-tailed ON periods converge slowly; 25% is enough to catch
        // a broken rescale (which would be off by 5×).
        assert!(
            (got - expected).abs() < expected * 0.25,
            "expected ≈{expected}, got {got}"
        );
    }

    #[test]
    fn bursty_traffic_is_burstier() {
        // Compare the variance of per-100-cycle message counts.
        let smooth = generate(&TrafficConfig {
            horizon: 50_000,
            ..base_config()
        });
        let bursty = generate(&TrafficConfig {
            horizon: 50_000,
            burstiness: Some(OnOffConfig::default_bursty()),
            ..base_config()
        });
        let variance = |trace: &TrafficTrace| {
            let mut bins = vec![0f64; 500];
            for e in trace.events() {
                bins[(e.time / 100) as usize] += 1.0;
            }
            let mean = bins.iter().sum::<f64>() / bins.len() as f64;
            bins.iter().map(|b| (b - mean).powi(2)).sum::<f64>() / bins.len() as f64
        };
        assert!(
            variance(&bursty) > 2.0 * variance(&smooth),
            "bursty {} vs smooth {}",
            variance(&bursty),
            variance(&smooth)
        );
    }

    #[test]
    fn source_yields_events_in_order() {
        let trace = generate(&base_config());
        let mut source = trace.source();
        let mut n = 0;
        while let Some(e) = source.next_event() {
            assert_eq!(e, trace.events()[n]);
            n += 1;
        }
        assert_eq!(n, trace.len());
    }

    #[test]
    fn deterministic_pattern_traces_have_fixed_destinations() {
        let config = TrafficConfig::paper_ring(TrafficPattern::BitComplement, 0.05, 3);
        let trace = generate(&config);
        assert!(trace.events().iter().all(|e| e.dst.0 == (e.src.0 ^ 0xF)));
    }

    #[test]
    fn offered_load_formula() {
        let config = base_config();
        assert!((config.offered_load() - 0.02 * 16.0 * 512.0).abs() < 1e-9);
    }

    #[test]
    fn zero_rate_gives_empty_trace() {
        let config = TrafficConfig {
            injection_rate: 0.0,
            ..base_config()
        };
        assert!(generate(&config).is_empty());
    }

    #[test]
    #[should_panic(expected = "per-cycle probability")]
    fn excessive_rate_rejected() {
        let config = TrafficConfig {
            injection_rate: 1.5,
            ..base_config()
        };
        let _ = generate(&config);
    }

    #[test]
    fn csv_round_trips_through_loader_and_writer() {
        let trace = generate(&base_config());
        let round = TrafficTrace::from_csv_str(&trace.to_csv()).unwrap();
        assert_eq!(round, trace);
    }

    #[test]
    fn csv_loader_sorts_skips_and_validates() {
        let parsed = TrafficTrace::from_csv_str(
            "cycle,src,dst,size\n# warm-up burst\n20, 3, 1, 64\n\n5,0,2,128.5\n",
        )
        .unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed.events()[0].time, 5, "rows are time-sorted");
        assert_eq!(parsed.events()[0].src, NodeId(0));
        assert!((parsed.events()[0].volume.value() - 128.5).abs() < 1e-12);
        assert_eq!(parsed.max_node(), 3);

        // The header is recognised after leading comments/blank lines…
        let late_header = TrafficTrace::from_csv_str(
            "# generated by dump tool\n\ncycle,src,dst,size\n0,0,3,256\n",
        )
        .unwrap();
        assert_eq!(late_header.len(), 1);
        // …but a header-looking line after data rows is a malformed row.
        assert!(matches!(
            TrafficTrace::from_csv_str("0,0,3,256\ncycle,src,dst,size\n").unwrap_err(),
            TraceParseError::Row { line: 2, .. }
        ));

        let bad_columns = TrafficTrace::from_csv_str("1,2,3\n").unwrap_err();
        assert!(matches!(bad_columns, TraceParseError::Row { line: 1, .. }));
        let bad_size = TrafficTrace::from_csv_str("1,0,2,-5\n").unwrap_err();
        assert!(matches!(bad_size, TraceParseError::Row { line: 1, .. }));
        let self_loop = TrafficTrace::from_csv_str("1,2,2,64\n").unwrap_err();
        assert!(matches!(self_loop, TraceParseError::Row { line: 1, .. }));
        assert_eq!(
            TrafficTrace::from_csv_str("# only comments\n").unwrap_err(),
            TraceParseError::Empty
        );
    }

    #[test]
    fn csv_trace_drives_both_injection_modes() {
        use onoc_sim::{DynamicPolicy, InjectionMode, OpenLoopSimulator, WavelengthMode};
        use onoc_topology::RingTopology;
        use onoc_units::BitsPerCycle;

        let trace = TrafficTrace::from_csv_str("0,0,3,256\n0,0,3,256\n4,5,9,128\n").unwrap();
        for injection in [InjectionMode::Open, InjectionMode::Credit { window: 1 }] {
            let sim = OpenLoopSimulator::with_injection(
                RingTopology::new(16),
                2,
                BitsPerCycle::new(1.0),
                WavelengthMode::Dynamic(DynamicPolicy::Single),
                injection,
            );
            let report = sim.run(trace.source()).unwrap();
            assert_eq!(report.records.len(), 3, "{injection}");
            assert_eq!(report.delivered_bits, 640.0, "{injection}");
        }
    }

    #[test]
    fn simulates_end_to_end_with_openloop() {
        use onoc_sim::{DynamicPolicy, OpenLoopSimulator, WavelengthMode};
        use onoc_topology::RingTopology;
        use onoc_units::BitsPerCycle;

        let trace = generate(&base_config());
        let sim = OpenLoopSimulator::new(
            RingTopology::new(16),
            8,
            BitsPerCycle::new(1.0),
            WavelengthMode::Dynamic(DynamicPolicy::Single),
        );
        let report = sim.run(trace.source()).unwrap();
        assert_eq!(report.records.len(), trace.len());
        assert!(report.latency().mean > 0.0);
    }

    #[test]
    fn trace_stats_summarise_counts_span_and_load() {
        let trace = TrafficTrace::from_csv_str(
            "cycle,src,dst,size\n0,0,3,256\n5,1,4,128\n9,0,3,256\n9,4,1,60\n",
        )
        .unwrap();
        let stats = trace.stats();
        assert_eq!(stats.messages, 4);
        assert_eq!((stats.first_cycle, stats.last_cycle), (0, 9));
        assert!((stats.total_bits - 700.0).abs() < 1e-9);
        assert!((stats.mean_offered_bits_per_cycle - 70.0).abs() < 1e-9);
        assert_eq!(stats.per_source, vec![2, 1, 0, 0, 1]);
        assert_eq!(stats.per_dest, vec![0, 1, 0, 2, 1]);
    }

    #[test]
    fn trace_stats_match_generated_traffic() {
        let trace = generate(&base_config());
        let stats = trace.stats();
        assert_eq!(stats.messages, trace.len());
        assert_eq!(stats.per_source.iter().sum::<usize>(), trace.len());
        assert_eq!(stats.per_dest.iter().sum::<usize>(), trace.len());
        assert!(stats.mean_offered_bits_per_cycle > 0.0);
    }
}
