//! Synthetic traffic generation and saturation sweeps for ring WDM ONoCs.
//!
//! The paper evaluates wavelength allocation against one mapped task graph.
//! This crate opens the *open-loop* side of the evaluation space that the
//! 3D-NoC literature characterises architectures with (Das et al.,
//! arXiv:1608.06972; Dally & Towles ch. 23): parameterised synthetic
//! traffic driven through the network at a controlled injection rate,
//! swept until saturation.
//!
//! * [`TrafficPattern`] — uniform-random, hotspot, transpose,
//!   bit-reversal, bit-complement and nearest-neighbour destination rules,
//! * [`TrafficRng`] — a seeded *splittable* PRNG making every trace a pure
//!   function of `(seed, node)` and every sweep thread-count independent,
//! * [`generate`] / [`TrafficTrace`] — timed message streams, optionally
//!   bursty via a Pareto ON-OFF process ([`OnOffConfig`]),
//! * [`TrafficTrace::from_csv_str`] — external `cycle,src,dst,size` CSV
//!   traces replayed through the same engine,
//! * [`sweep`] — scenario grids `{pattern × rate × λ × ring}` fanned out
//!   over scoped worker threads under any
//!   [`InjectionMode`](onoc_sim::InjectionMode) (open loop, or
//!   credit/ECN closed loop with backpressure-aware offered-vs-accepted
//!   reporting), emitting CSV/JSON saturation curves.
//!
//! Traces feed `onoc-sim`'s [`OpenLoopSimulator`](onoc_sim::OpenLoopSimulator)
//! through the [`TrafficSource`](onoc_sim::TrafficSource) trait.
//!
//! # Example: one saturation point
//!
//! ```
//! use onoc_sim::{DynamicPolicy, OpenLoopSimulator, WavelengthMode};
//! use onoc_topology::RingTopology;
//! use onoc_traffic::{generate, TrafficConfig, TrafficPattern};
//! use onoc_units::BitsPerCycle;
//!
//! let config = TrafficConfig::paper_ring(TrafficPattern::UniformRandom, 0.01, 7);
//! let trace = generate(&config);
//! let sim = OpenLoopSimulator::new(
//!     RingTopology::new(16),
//!     8,
//!     BitsPerCycle::new(1.0),
//!     WavelengthMode::Dynamic(DynamicPolicy::Single),
//! );
//! let report = sim.run(trace.source()).unwrap();
//! assert_eq!(report.records.len(), trace.len());
//! assert!(report.latency().p99 >= report.latency().p50);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod pattern;
mod rng;
pub mod sweep;
mod trace;

pub use pattern::TrafficPattern;
pub use rng::TrafficRng;
pub use sweep::{
    KneeResult, KneeSearchConfig, Scenario, ScenarioPhases, ScenarioResult, SweepGrid,
    SweepOutcome, find_sustained_knee, run_scenario, run_scenario_phased, run_scenario_with,
    run_sweep,
};
pub use trace::{
    OnOffConfig, TRACE_CSV_HEADER, TraceParseError, TraceSource, TraceStats, TrafficConfig,
    TrafficTrace, generate,
};
