//! A seeded, *splittable* PRNG for deterministic traffic generation.
//!
//! Scenario sweeps run on a thread pool, and per-node injection streams
//! interleave arbitrarily — so sharing one sequential generator would make
//! results depend on scheduling. [`TrafficRng`] solves this the way
//! splittable PRNGs do (Steele, Lea & Flood, OOPSLA 2014): [`TrafficRng::split`]
//! derives an *independent* child stream from `(parent seed, salt)` without
//! advancing the parent, so
//!
//! * every node's stream is a pure function of `(master seed, node index)`,
//! * every sweep scenario's stream is a pure function of
//!   `(sweep seed, scenario index)`,
//!
//! and the whole sweep is bit-identical for any worker-thread count.
//!
//! The core is SplitMix64 with an odd per-stream increment (gamma) derived
//! from the salt, which keeps sibling streams decorrelated.

/// A 64-bit splittable generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrafficRng {
    /// Seed-derived stream identity; set at construction, never mutated.
    /// [`TrafficRng::split`] keys children off this, so splitting is
    /// independent of how many values were already drawn.
    identity: u64,
    state: u64,
    gamma: u64,
}

/// One SplitMix64 output/mixing step.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Variant mixer used to derive gammas (David Stafford's Mix13 constants).
fn mix_gamma(mut z: u64) -> u64 {
    z = (z ^ (z >> 33)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    z = (z ^ (z >> 33)).wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    // Gammas must be odd; weight test per Steele et al. is overkill here.
    (z ^ (z >> 33)) | 1
}

impl TrafficRng {
    /// The canonical SplitMix64 increment.
    const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

    /// Creates the master stream for `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let identity = mix(seed.wrapping_add(Self::GOLDEN_GAMMA));
        Self {
            identity,
            state: identity,
            gamma: Self::GOLDEN_GAMMA,
        }
    }

    /// Derives an independent child stream from this stream's *seed
    /// identity* and `salt`, without advancing `self`.
    ///
    /// Splitting is pure: `rng.split(s)` is the same stream no matter how
    /// many values were drawn from `rng` before the call, and
    /// `split(a) != split(b)` for `a != b`.
    #[must_use]
    pub fn split(&self, salt: u64) -> Self {
        let identity = mix(self.identity ^ mix(salt.wrapping_add(Self::GOLDEN_GAMMA)));
        Self {
            identity,
            state: identity,
            gamma: mix_gamma(identity ^ salt),
        }
    }

    /// Returns the next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(self.gamma);
        mix(self.state)
    }

    /// Uniform `f64` in `[0, 1)` with 53-bit precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        let p = if p.is_nan() { 0.0 } else { p.clamp(0.0, 1.0) };
        self.next_f64() < p
    }

    /// Uniform integer in `[0, bound)` via debiased multiply-shift.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "cannot sample below 0");
        let span = bound as u64;
        let mut x = self.next_u64();
        let mut m = (x as u128) * (span as u128);
        let mut lo = m as u64;
        if lo < span {
            let threshold = span.wrapping_neg() % span;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (span as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as usize
    }

    /// A bounded Pareto sample with scale `x_m` and shape `alpha`, capped
    /// at `cap` (self-similar ON-period lengths; the cap keeps horizons
    /// finite).
    ///
    /// # Panics
    ///
    /// Panics unless `x_m > 0`, `alpha > 0` and `cap >= x_m`.
    pub fn pareto(&mut self, x_m: f64, alpha: f64, cap: f64) -> f64 {
        assert!(
            x_m > 0.0 && alpha > 0.0 && cap >= x_m,
            "invalid Pareto parameters"
        );
        let u = self.next_f64().max(f64::MIN_POSITIVE);
        (x_m / u.powf(1.0 / alpha)).min(cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = TrafficRng::new(7);
        let mut b = TrafficRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn split_is_pure_and_position_independent() {
        let mut advanced = TrafficRng::new(7);
        for _ in 0..1_000 {
            advanced.next_u64();
        }
        let fresh = TrafficRng::new(7);
        assert_eq!(fresh.split(3), advanced.split(3));
        assert_ne!(fresh.split(3), fresh.split(4));
    }

    #[test]
    fn siblings_are_decorrelated() {
        let master = TrafficRng::new(1);
        let mut a = master.split(0);
        let mut b = master.split(1);
        let matches = (0..1_000)
            .filter(|_| (a.next_u64() & 1) == (b.next_u64() & 1))
            .count();
        // Two independent bit streams agree ~half the time.
        assert!((350..=650).contains(&matches), "matches = {matches}");
    }

    #[test]
    fn below_is_unbiased_enough_and_in_bounds() {
        let mut rng = TrafficRng::new(9);
        let mut counts = [0usize; 7];
        for _ in 0..7_000 {
            counts[rng.below(7)] += 1;
        }
        for (value, &count) in counts.iter().enumerate() {
            assert!((800..=1200).contains(&count), "value {value}: {count}");
        }
    }

    #[test]
    fn bernoulli_edges() {
        let mut rng = TrafficRng::new(3);
        assert!(!rng.bernoulli(0.0));
        assert!(rng.bernoulli(1.0));
        assert!(!rng.bernoulli(f64::NAN));
    }

    #[test]
    fn unit_floats_are_unit() {
        let mut rng = TrafficRng::new(5);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn pareto_respects_scale_and_cap() {
        let mut rng = TrafficRng::new(11);
        for _ in 0..10_000 {
            let x = rng.pareto(2.0, 1.5, 500.0);
            assert!((2.0..=500.0).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "below 0")]
    fn zero_bound_panics() {
        let _ = TrafficRng::new(0).below(0);
    }
}
