//! Probe-layer guarantees: probed runs are bit-identical to unprobed
//! ones in both report modes, the fact stream conserves traffic, and the
//! energy probe's laser term cross-validates against the analytic
//! `onoc_wa::Evaluator` bit-energy on the paper's 16-core instance.

use onoc_app::workloads;
use onoc_photonics::EnergyParams;
use onoc_sim::{
    DynamicPolicy, EnergyModel, EnergyProbe, MsgRecord, OpenLoopSimulator, ReportMode, SimProbe,
    SimScratch, TrafficEvent, TxFact, WavelengthMode,
};
use onoc_topology::{NodeId, RingTopology};
use onoc_units::{Bits, BitsPerCycle};
use onoc_wa::ProblemInstance;

fn event(time: u64, src: usize, dst: usize, bits: f64) -> TrafficEvent {
    TrafficEvent {
        time,
        src: NodeId(src),
        dst: NodeId(dst),
        volume: Bits::new(bits),
    }
}

/// A probe accumulating every fact, for conservation checks.
#[derive(Default)]
struct Recorder {
    admitted: usize,
    started: usize,
    completed: usize,
    retired: usize,
    stall_cycles: u64,
    retired_bits: f64,
    lane_cycles: u64,
    hop_lane_cycles: u64,
    horizon: Option<u64>,
}

impl SimProbe for Recorder {
    fn admitted(&mut self, _now: u64, stall: u64, _src: NodeId) {
        self.admitted += 1;
        self.stall_cycles += stall;
    }
    fn started(&mut self, _fact: TxFact) {
        self.started += 1;
    }
    fn completed(&mut self, fact: TxFact) {
        self.completed += 1;
        self.lane_cycles += fact.span() * fact.lane_count() as u64;
        self.hop_lane_cycles += fact.span() * fact.lane_count() as u64 * fact.hops as u64;
    }
    fn retired(&mut self, _record: &MsgRecord, volume_bits: f64, _hops: usize) {
        self.retired += 1;
        self.retired_bits += volume_bits;
    }
    fn finished(&mut self, horizon: u64, _last_injection: u64) {
        self.horizon = Some(horizon);
    }
}

/// A deterministic pseudo-random ordered stream from a seed (the
/// conservation-corpus generator of the engine's own proptests).
fn corpus(seed: u64, len: usize) -> Vec<TrafficEvent> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut time = 0u64;
    (0..len)
        .map(|_| {
            time += next() % 4;
            let src = (next() % 16) as usize;
            let dst = (src + 1 + (next() % 15) as usize) % 16;
            event(time, src, dst, 64.0 + (next() % 512) as f64)
        })
        .collect()
}

proptest::proptest! {
    /// Attaching probes never changes the report, in either mode, under
    /// any injection policy of the conservation corpus — and the fact
    /// stream itself conserves traffic (every offered message is
    /// admitted, started, completed and retired exactly once, with the
    /// offered bits accounted).
    #[test]
    fn probed_runs_are_bit_identical_and_conserve_facts(
        seed in 0u64..200,
        wavelengths in 1usize..5,
        use_ecn in 0usize..3,
    ) {
        use onoc_sim::InjectionMode;
        use proptest::prelude::*;

        let injection = match use_ecn {
            0 => InjectionMode::Open,
            1 => InjectionMode::Credit { window: 2 },
            _ => InjectionMode::Ecn { threshold: 0.2 },
        };
        let events = corpus(seed, 80);
        let sim = OpenLoopSimulator::with_injection(
            RingTopology::new(16),
            wavelengths,
            BitsPerCycle::new(1.0),
            WavelengthMode::Dynamic(DynamicPolicy::Single),
            injection,
        );
        for mode in [ReportMode::Full, ReportMode::Streaming] {
            let plain = sim
                .run_with_scratch(events.clone().into_iter(), &mut SimScratch::new(), mode)
                .unwrap();
            let mut recorder = Recorder::default();
            let probed = sim
                .run_with_scratch_probed(
                    events.clone().into_iter(),
                    &mut SimScratch::new(),
                    mode,
                    &mut recorder,
                )
                .unwrap();
            prop_assert_eq!(&probed, &plain, "{:?} report changed under a probe", mode);

            prop_assert_eq!(recorder.admitted, events.len());
            prop_assert_eq!(recorder.started, events.len());
            prop_assert_eq!(recorder.completed, events.len());
            prop_assert_eq!(recorder.retired, events.len());
            prop_assert!((recorder.retired_bits - plain.offered_bits).abs() < 1e-9);
            prop_assert_eq!(recorder.horizon, Some(plain.horizon));
            // Lane×hop busy integral from the fact stream equals the
            // report's per-segment busy integral.
            let busy: u64 = plain.segment_busy.iter().map(|&(_, b)| b).sum();
            prop_assert_eq!(recorder.hop_lane_cycles, busy);
            // Open loop admits at the offered time; closed loops may
            // stall but never un-stall what the report counts.
            if injection == InjectionMode::Open {
                prop_assert_eq!(recorder.stall_cycles, 0);
            }
        }
    }
}

#[test]
fn energy_probe_composes_with_static_mode_and_scratch_reuse() {
    use onoc_sim::StaticFlowMap;
    let map = StaticFlowMap::striped(16, 8, 1);
    let sim = OpenLoopSimulator::new(
        RingTopology::new(16),
        8,
        BitsPerCycle::new(1.0),
        WavelengthMode::Static(map),
    );
    let events: Vec<TrafficEvent> = (0..50u64)
        .map(|k| {
            event(
                k * 3,
                (k % 16) as usize,
                ((k % 16 + 3) % 16) as usize,
                128.0,
            )
        })
        .collect();
    let model = EnergyModel::paper(16, 8);
    let mut probe = EnergyProbe::new(model, 16, 8);
    let mut scratch = SimScratch::new();
    let report = sim
        .run_with_scratch_probed(
            events.clone().into_iter(),
            &mut scratch,
            ReportMode::Streaming,
            &mut probe,
        )
        .unwrap();
    let energy = probe.report();
    assert_eq!(energy.messages, 50);
    assert_eq!(energy.bits, report.delivered_bits);
    assert_eq!(energy.horizon, report.horizon);
    assert!(energy.pj_per_bit() > 0.0);
    // Static-mode per-lane laser-on time: each message drives exactly its
    // flow's one lane for its span; the total lane-on time equals the
    // lane busy integral divided by the per-flow hop count only when
    // paths are uniform, so check the weaker invariant: every driven
    // lane shows up.
    assert!(energy.lane_on_cycles.iter().any(|&c| c > 0));

    // The probe resets and observes a second run identically.
    let mut again = EnergyProbe::new(EnergyModel::paper(16, 8), 16, 8);
    probe.reset();
    let _ = sim
        .run_with_scratch_probed(
            events.into_iter(),
            &mut scratch,
            ReportMode::Streaming,
            &mut (&mut probe, &mut again),
        )
        .unwrap();
    assert_eq!(probe.report(), again.report());
    assert_eq!(probe.report(), energy);
}

/// The headline cross-validation: the energy probe's laser-only fJ/bit on
/// the paper's 16-core instance agrees with the analytic
/// `onoc_wa::Evaluator` bit-energy objective.
///
/// The two models differ by construction — the evaluator sizes each
/// communication's laser through its *allocation-dependent* spectrum walk
/// (ON-MR crossings of concurrently allocated channels included), while
/// the probe's [`EnergyModel::from_architecture`] uses the traffic-free
/// mean path-loss budget over all ordered pairs — so exact equality is
/// not expected. The documented tolerance is **10% relative** on the
/// frugal single-wavelength allocation; the test also pins both values
/// into the Fig. 6(a) few-fJ/bit band so the agreement cannot drift into
/// vacuity.
#[test]
fn simulated_laser_energy_cross_validates_against_the_evaluator() {
    let instance = ProblemInstance::paper_with_wavelengths(4);
    let evaluator = instance.evaluator();
    let frugal = instance.allocation_from_counts(&[1; 6]).unwrap();
    let analytic_fj_per_bit = evaluator.evaluate(&frugal).unwrap().bit_energy.value();

    // Replay the paper application's six communications as an open-loop
    // message stream on the same architecture: one message per
    // communication, single-lane dynamic arbitration (the frugal
    // allocation gives every communication exactly one wavelength).
    let app = workloads::paper_mapped_application();
    let mut events: Vec<TrafficEvent> = app
        .graph()
        .comms()
        .map(|(id, comm)| {
            let path = app.route(id);
            TrafficEvent {
                time: 0,
                src: path.src(),
                dst: path.dst(),
                volume: comm.volume(),
            }
        })
        .collect();
    events.sort_by_key(|e| (e.src.0, e.dst.0));
    assert_eq!(events.len(), 6, "the paper app has six communications");

    let sim = OpenLoopSimulator::new(
        RingTopology::new(16),
        4,
        BitsPerCycle::new(1.0),
        WavelengthMode::Dynamic(DynamicPolicy::Single),
    );
    let model = EnergyModel::from_architecture(instance.arch(), EnergyParams::paper(), 1.0);
    let mut probe = EnergyProbe::new(model, 16, 4);
    let report = sim.run_probed(events.into_iter(), &mut probe).unwrap();
    assert_eq!(report.message_count, 6);
    let simulated_fj_per_bit = probe.report().laser_fj_per_bit();

    let relative = (simulated_fj_per_bit - analytic_fj_per_bit).abs() / analytic_fj_per_bit;
    assert!(
        relative < 0.10,
        "simulated laser energy {simulated_fj_per_bit:.3} fJ/bit vs analytic \
         {analytic_fj_per_bit:.3} fJ/bit: {:.1}% apart (documented tolerance 10%)",
        relative * 100.0
    );
    // Both sit in the paper's Fig. 6(a) low band.
    for value in [simulated_fj_per_bit, analytic_fj_per_bit] {
        assert!(
            value > 1.0 && value < 6.0,
            "{value} fJ/bit outside the calibrated band"
        );
    }
}
