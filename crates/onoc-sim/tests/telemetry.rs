//! Telemetry-layer guarantees: the windowed time series conserves the
//! streaming report's totals for every injection mode and window size,
//! the per-flow energy attribution reconciles with the run totals, and
//! the Chrome trace export covers every retirement.

use onoc_sim::{
    ChromeTraceProbe, DynamicPolicy, EnergyModel, EnergyProbe, FlowEnergy, InjectionMode,
    OpenLoopSimulator, ReportMode, SimScratch, TimeSeriesProbe, TrafficEvent, WavelengthMode,
};
use onoc_topology::{NodeId, RingTopology};
use onoc_units::{Bits, BitsPerCycle};

/// The conservation-corpus generator shared with the probe tests.
fn corpus(seed: u64, len: usize) -> Vec<TrafficEvent> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut time = 0u64;
    (0..len)
        .map(|_| {
            time += next() % 4;
            let src = (next() % 16) as usize;
            let dst = (src + 1 + (next() % 15) as usize) % 16;
            TrafficEvent {
                time,
                src: NodeId(src),
                dst: NodeId(dst),
                volume: Bits::new(64.0 + (next() % 512) as f64),
            }
        })
        .collect()
}

proptest::proptest! {
    /// Windowed totals equal the streaming report's, whatever the window
    /// size or injection policy: accepted messages, retired bits, stall
    /// cycles, and the lane×hop busy integral all fold to the same
    /// numbers through the time-series bins.
    #[test]
    fn windowed_series_conserves_report_totals(
        seed in 0u64..120,
        window_sel in 0usize..5,
        use_ecn in 0usize..3,
    ) {
        use proptest::prelude::*;

        let window = [1u64, 7, 32, 256, 4096][window_sel];
        let injection = match use_ecn {
            0 => InjectionMode::Open,
            1 => InjectionMode::Credit { window: 2 },
            _ => InjectionMode::Ecn { threshold: 0.2 },
        };
        let events = corpus(seed, 80);
        let sim = OpenLoopSimulator::with_injection(
            RingTopology::new(16),
            4,
            BitsPerCycle::new(1.0),
            WavelengthMode::Dynamic(DynamicPolicy::Single),
            injection,
        );
        let mut probe = TimeSeriesProbe::new(window, 16, 4);
        let report = sim
            .run_with_scratch_probed(
                events.clone().into_iter(),
                &mut SimScratch::new(),
                ReportMode::Streaming,
                &mut probe,
            )
            .unwrap();
        let series = probe.report();

        prop_assert_eq!(series.total_offered(), events.len() as u64);
        prop_assert_eq!(series.total_admitted(), report.message_count as u64);
        prop_assert_eq!(series.total_retired(), report.message_count as u64);
        prop_assert!((series.total_retired_bits() - report.delivered_bits).abs() < 1e-9);
        // The stall histogram tracks count and sum exactly, so the
        // windowed stall-cycle total must match its integral.
        #[allow(clippy::cast_precision_loss)]
        let report_stall = report.stall_hist.mean() * report.stall_hist.count() as f64;
        #[allow(clippy::cast_precision_loss)]
        let series_stall = series.total_stall_cycles() as f64;
        prop_assert!((series_stall - report_stall).abs() < 1e-6);
        // Lane×hop overlap cycles, spread across windows, re-sum to the
        // report's per-segment busy integral — exactly, in integers.
        let busy: u64 = report.segment_busy.iter().map(|&(_, b)| b).sum();
        prop_assert_eq!(series.total_seg_cycles(), busy);
        prop_assert_eq!(series.horizon, report.horizon);
        // The series covers the whole run.
        let covered = series.windows.len() as u64 * window;
        prop_assert!(covered >= report.horizon);
        // Per-source retirements re-sum to the run totals too.
        prop_assert_eq!(
            series.source_retired.iter().sum::<u64>(),
            report.message_count as u64
        );
        prop_assert!(
            (series.source_retired_bits.iter().sum::<f64>() - report.delivered_bits).abs() < 1e-9
        );
        prop_assert!(
            (series.flow_bits.iter().sum::<f64>() - report.delivered_bits).abs() < 1e-9
        );
        // Open loop admits at the offered cycle: nothing is ever held at
        // a gate, and no window may claim otherwise.
        if injection == InjectionMode::Open {
            prop_assert_eq!(series.total_stall_cycles(), 0);
            prop_assert!(series.windows.iter().all(|w| w.gate_held == 0));
        }
        // ECN marks only exist under the ECN policy.
        if !matches!(injection, InjectionMode::Ecn { .. }) {
            prop_assert_eq!(series.total_ecn_marks(), 0);
        }
    }

    /// Per-flow energy attribution reconciles with the run totals on the
    /// conservation corpus: every term's flow sum recovers the report's
    /// value to floating-point rounding.
    #[test]
    fn per_flow_energy_conserves_run_totals(
        seed in 0u64..120,
        wavelengths in 1usize..5,
        use_ecn in 0usize..3,
    ) {
        use proptest::prelude::*;

        let injection = match use_ecn {
            0 => InjectionMode::Open,
            1 => InjectionMode::Credit { window: 2 },
            _ => InjectionMode::Ecn { threshold: 0.2 },
        };
        let events = corpus(seed, 80);
        let sim = OpenLoopSimulator::with_injection(
            RingTopology::new(16),
            wavelengths,
            BitsPerCycle::new(1.0),
            WavelengthMode::Dynamic(DynamicPolicy::Single),
            injection,
        );
        let mut probe = EnergyProbe::new(EnergyModel::paper(16, wavelengths), 16, wavelengths);
        sim.run_probed(events.into_iter(), &mut probe).unwrap();
        let report = probe.report();
        let flows = report.per_flow();
        prop_assert!(!flows.is_empty());

        let close = |sum: f64, total: f64| (sum - total).abs() <= 1e-9 * total.abs() + 1e-9;
        prop_assert!(close(flows.iter().map(|f| f.laser_fj).sum(), report.laser_fj));
        prop_assert!(close(flows.iter().map(|f| f.tuning_fj).sum(), report.tuning_fj));
        prop_assert!(close(flows.iter().map(|f| f.tx_fj).sum(), report.tx_fj));
        prop_assert!(close(flows.iter().map(|f| f.rx_fj).sum(), report.rx_fj));
        prop_assert!(close(
            flows.iter().map(FlowEnergy::total_fj).sum(),
            report.total_fj()
        ));
        prop_assert!(close(flows.iter().map(|f| f.bits).sum(), report.bits));
        prop_assert_eq!(
            flows.iter().map(|f| f.messages).sum::<u64>(),
            report.messages
        );
        // The flow lane-on integral is the lane one, redistributed.
        prop_assert_eq!(
            flows.iter().map(|f| f.lane_on_cycles).sum::<u64>(),
            report.lane_on_cycles.iter().sum::<u64>()
        );
    }
}

#[test]
fn chrome_trace_covers_every_retirement() {
    let events = corpus(3, 60);
    let sim = OpenLoopSimulator::with_injection(
        RingTopology::new(16),
        4,
        BitsPerCycle::new(1.0),
        WavelengthMode::Dynamic(DynamicPolicy::Single),
        InjectionMode::Credit { window: 2 },
    );
    let mut trace = ChromeTraceProbe::with_capacity(events.len());
    let report = sim.run_probed(events.into_iter(), &mut trace).unwrap();
    assert_eq!(trace.len(), report.message_count);
    let json = trace.to_json();
    assert_eq!(json.matches("\"ph\":\"X\"").count(), report.message_count);
    // Balanced braces as a cheap well-formedness check (no string values
    // beyond the fixed keys, so counting is exact).
    assert_eq!(json.matches('{').count(), json.matches('}').count());
}

/// The time-series probe composes beside the energy probe and the
/// trace exporter in one run, and a reset probe re-folds a second run
/// identically.
#[test]
fn telemetry_composes_and_resets() {
    let events = corpus(9, 60);
    let sim = OpenLoopSimulator::new(
        RingTopology::new(16),
        4,
        BitsPerCycle::new(1.0),
        WavelengthMode::Dynamic(DynamicPolicy::Single),
    );
    let mut energy = EnergyProbe::new(EnergyModel::paper(16, 4), 16, 4);
    let mut series = TimeSeriesProbe::new(64, 16, 4);
    let mut trace = ChromeTraceProbe::new();
    let report = sim
        .run_probed(
            events.clone().into_iter(),
            &mut (&mut energy, (&mut series, &mut trace)),
        )
        .unwrap();
    assert_eq!(series.report().total_retired(), report.message_count as u64);
    assert_eq!(trace.len(), report.message_count);
    assert_eq!(energy.report().messages, report.message_count as u64);

    let first = series.report();
    series.reset();
    let _ = sim.run_probed(events.into_iter(), &mut series).unwrap();
    assert_eq!(series.report(), first);
}
