//! Regression gate: the steady-state admit path of the open-loop engine
//! makes **zero heap allocations** once a reused [`SimScratch`] is warm.
//!
//! A counting global allocator is armed by the traffic source itself
//! after a few warm-up messages and disarmed when the source runs dry, so
//! the counted window covers exactly the steady-state portion of the
//! run — offers, admissions, transmission starts, completions and
//! retirements interleaved — and not the run's setup or the report
//! assembly.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use onoc_photonics::EnergyParams;
use onoc_sim::{
    DynamicPolicy, EnergyModel, EnergyProbe, OpenLoopSimulator, ReportMode, SimScratch,
    TimeSeriesProbe, TrafficEvent, TrafficSource, WavelengthMode,
};
use onoc_topology::{NodeId, RingTopology};
use onoc_units::{Bits, BitsPerCycle};

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// A deterministic 64-message open-loop workload on the 16-node ring.
fn workload() -> Vec<TrafficEvent> {
    (0..64u64)
        .map(|k| TrafficEvent {
            time: k * 3,
            src: NodeId((k % 16) as usize),
            dst: NodeId(((k % 16 + 1 + k % 7) % 16) as usize),
            volume: Bits::new(96.0),
        })
        .collect()
}

/// Arms the allocation counter after `warmup` events and disarms it when
/// the stream ends.
struct ArmingSource {
    events: std::vec::IntoIter<TrafficEvent>,
    seen: usize,
    warmup: usize,
}

impl TrafficSource for ArmingSource {
    fn next_event(&mut self) -> Option<TrafficEvent> {
        let next = self.events.next();
        if next.is_none() {
            ARMED.store(false, Ordering::SeqCst);
            return None;
        }
        self.seen += 1;
        if self.seen == self.warmup {
            ARMED.store(true, Ordering::SeqCst);
        }
        next
    }
}

#[test]
fn steady_state_admit_path_is_allocation_free() {
    let sim = OpenLoopSimulator::new(
        RingTopology::new(16),
        4,
        BitsPerCycle::new(1.0),
        WavelengthMode::Dynamic(DynamicPolicy::Single),
    );
    let mut scratch = SimScratch::new();
    // The probes attach *inside* the counted window: per-lane, per-source
    // and per-flow buffers are sized at construction and the telemetry
    // window vector is hinted past the run's horizon, so observing
    // admissions, completions and retirements must not allocate either.
    let model = EnergyModel::new(0.003, EnergyParams::paper(), 1.0);
    let mut energy = EnergyProbe::new(model, 16, 4);
    let mut telemetry = TimeSeriesProbe::new(32, 16, 4).with_horizon_hint(1 << 14);

    // Warm run: sizes every buffer (window, calendar buckets, NI queues).
    let warm = sim
        .run_with_scratch(workload().into_iter(), &mut scratch, ReportMode::Streaming)
        .unwrap();
    assert_eq!(warm.message_count, 64);

    // Counted run on the same warm scratch: after 8 warm-up messages the
    // counter arms, and every remaining offer/admit/start/complete must
    // reuse existing capacity — with the energy probe attached.
    ALLOCATIONS.store(0, Ordering::SeqCst);
    let source = ArmingSource {
        events: workload().into_iter(),
        seen: 0,
        warmup: 8,
    };
    let report = sim
        .run_with_scratch_probed(
            source,
            &mut scratch,
            ReportMode::Streaming,
            &mut (&mut energy, &mut telemetry),
        )
        .unwrap();
    assert!(!ARMED.load(Ordering::SeqCst), "source disarmed the counter");
    assert_eq!(report.message_count, 64);
    assert_eq!(
        report, warm,
        "scratch reuse and probes must not change results"
    );
    let counted = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        counted, 0,
        "steady-state admit path allocated {counted} times"
    );
    let energy = energy.report();
    assert_eq!(energy.messages, 64);
    assert!(energy.pj_per_bit() > 0.0);
    let series = telemetry.report();
    assert_eq!(series.total_retired(), 64);
    assert_eq!(series.horizon, report.horizon);
}
