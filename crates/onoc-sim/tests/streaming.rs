//! Streaming-report guarantees: bounded memory at millions of messages,
//! agreement with the record-retaining mode on everything exact, and
//! quantile agreement within one histogram bin.

use onoc_photonics::WavelengthId;
use onoc_sim::{
    DynamicPolicy, InjectionMode, OpenLoopSimulator, ReportMode, SimScratch, StaticFlowMap,
    TrafficEvent, WavelengthMode,
};
use onoc_topology::{NodeId, RingTopology};
use onoc_units::{Bits, BitsPerCycle};

fn event(time: u64, src: usize, dst: usize, bits: f64) -> TrafficEvent {
    TrafficEvent {
        time,
        src: NodeId(src),
        dst: NodeId(dst),
        volume: Bits::new(bits),
    }
}

/// A million-message source generated on the fly (no trace vector): one
/// short message per cycle, round-robin over sources, unsaturated.
fn million() -> impl Iterator<Item = TrafficEvent> {
    (0..1_000_000u64).map(|k| {
        let src = (k % 16) as usize;
        event(k, src, (src + 5) % 16, 8.0)
    })
}

#[test]
fn streaming_mode_runs_a_million_messages_without_retaining_records() {
    let sim = OpenLoopSimulator::new(
        RingTopology::new(16),
        8,
        BitsPerCycle::new(1.0),
        WavelengthMode::Dynamic(DynamicPolicy::Single),
    );
    let report = sim.run_streaming(million()).unwrap();
    assert_eq!(report.message_count, 1_000_000);
    assert_eq!(report.latency_hist.count(), 1_000_000);
    assert!(
        report.records.is_empty(),
        "streaming mode must not retain MsgRecords"
    );
    // The in-flight window — the only per-message state — stays tiny:
    // memory is O(bins + sources + in-flight), not O(messages).
    assert!(
        report.peak_in_flight < 1_000,
        "peak in-flight window was {}",
        report.peak_in_flight
    );
    // Conservation integrals are exact.
    assert_eq!(report.offered_bits, report.delivered_bits);
    assert_eq!(report.offered_bits, 8_000_000.0);
    assert!(report.accepted_throughput() > 0.0);
    assert_eq!(report.stalled_count(), 0, "open loop never stalls");
}

/// A mixed workload that queues, so latencies spread over several bins.
fn contended() -> Vec<TrafficEvent> {
    (0..4_000u64)
        .map(|k| {
            let src = (k % 16) as usize;
            event(
                k / 4,
                src,
                (src + 3 + (k % 9) as usize) % 16,
                64.0 + (k % 7) as f64 * 100.0,
            )
        })
        .collect()
}

#[test]
fn streaming_matches_full_mode_on_everything_exact() {
    for injection in [
        InjectionMode::Open,
        InjectionMode::Credit { window: 3 },
        InjectionMode::Ecn { threshold: 0.2 },
    ] {
        let sim = OpenLoopSimulator::with_injection(
            RingTopology::new(16),
            4,
            BitsPerCycle::new(1.0),
            WavelengthMode::Dynamic(DynamicPolicy::Single),
            injection,
        );
        let full = sim.run(contended().into_iter()).unwrap();
        let streaming = sim.run_streaming(contended().into_iter()).unwrap();

        assert_eq!(streaming.message_count, full.message_count, "{injection}");
        assert_eq!(streaming.horizon, full.horizon, "{injection}");
        assert_eq!(streaming.offered_bits, full.offered_bits, "{injection}");
        assert_eq!(streaming.delivered_bits, full.delivered_bits, "{injection}");
        assert_eq!(
            streaming.blocked_attempts, full.blocked_attempts,
            "{injection}"
        );
        assert_eq!(streaming.segment_busy, full.segment_busy, "{injection}");
        assert_eq!(streaming.lane_busy, full.lane_busy, "{injection}");
        assert_eq!(
            streaming.credit_occupancy, full.credit_occupancy,
            "{injection}"
        );
        assert_eq!(
            streaming.stalled_count(),
            full.stalled_count(),
            "{injection}"
        );
        // The histograms themselves are identical — full mode fills them
        // too; only record retention differs.
        assert_eq!(streaming.latency_hist, full.latency_hist, "{injection}");
        assert_eq!(streaming.stall_hist, full.stall_hist, "{injection}");
        assert!(streaming.records.is_empty() && !full.records.is_empty());
        // Exact moments agree; quantiles agree within one log bin
        // (≤ 12.5 % relative — see LatencyHistogram).
        let (fl, sl) = (full.latency(), streaming.latency());
        assert_eq!(fl.count, sl.count, "{injection}");
        assert!((fl.mean - sl.mean).abs() < 1e-9, "{injection}");
        assert_eq!(fl.max, sl.max, "{injection}");
        for (exact, approx) in [(fl.p50, sl.p50), (fl.p95, sl.p95), (fl.p99, sl.p99)] {
            assert!(
                approx <= exact + 1.0 && exact <= approx * 1.125 + 1.0,
                "{injection}: exact {exact} vs streaming {approx}"
            );
        }
    }
}

#[test]
fn streaming_static_mode_counts_conflicts_exactly() {
    // Two flows forced onto one wavelength on a shared segment: the
    // full-mode offline sweep and the streaming online counter must agree
    // on the count (examples are a full-mode-only diagnostic).
    let nodes = 4;
    let mut table = vec![Vec::new(); nodes * nodes];
    table[2] = vec![WavelengthId(0)]; // flow 0→2
    table[nodes + 2] = vec![WavelengthId(0)]; // flow 1→2
    for src in 0..nodes {
        for dst in 0..nodes {
            if src != dst && table[src * nodes + dst].is_empty() {
                table[src * nodes + dst] = vec![WavelengthId(1)];
            }
        }
    }
    let map = StaticFlowMap::from_table(nodes, 2, table);
    let sim = OpenLoopSimulator::new(
        RingTopology::new(nodes),
        2,
        BitsPerCycle::new(1.0),
        WavelengthMode::Static(map),
    );
    let mut events = Vec::new();
    for k in 0..40u64 {
        events.push(event(k * 7, 0, 2, 100.0));
        events.push(event(k * 7, 1, 2, 80.0));
        events.push(event(k * 7, 3, 1, 50.0));
    }
    let full = sim.run(events.clone().into_iter()).unwrap();
    let streaming = sim.run_streaming(events.into_iter()).unwrap();
    assert!(full.conflict_count > 0, "workload must actually collide");
    assert_eq!(streaming.conflict_count, full.conflict_count);
    assert!(!full.conflict_examples.is_empty());
    assert!(streaming.conflict_examples.is_empty());
    assert_eq!(streaming.segment_busy, full.segment_busy);
    assert_eq!(streaming.blocked_attempts, full.blocked_attempts);
}

#[test]
fn scratch_reuse_across_geometries_is_safe() {
    // The same scratch serves different ring sizes, comb sizes and modes
    // back to back; every run must match a fresh-scratch run exactly.
    let mut scratch = SimScratch::new();
    let configs = [(8usize, 2usize), (16, 4), (4, 1), (16, 8)];
    for (nodes, wavelengths) in configs {
        let sim = OpenLoopSimulator::new(
            RingTopology::new(nodes),
            wavelengths,
            BitsPerCycle::new(1.0),
            WavelengthMode::Dynamic(DynamicPolicy::Single),
        );
        let events: Vec<TrafficEvent> = (0..200u64)
            .map(|k| {
                let src = (k % nodes as u64) as usize;
                event(k, src, (src + 1) % nodes, 64.0)
            })
            .collect();
        let reused = sim
            .run_with_scratch(events.clone().into_iter(), &mut scratch, ReportMode::Full)
            .unwrap();
        let fresh = sim.run(events.into_iter()).unwrap();
        assert_eq!(reused, fresh, "{nodes} nodes × {wavelengths} λ");
    }
}
