//! Fault-injection and reliable-transport guarantees: faults-disabled
//! configurations are bit-identical to the plain engine, faulty runs
//! conserve every offered bit (delivered + lost), replay exactly from
//! their seed, and the reliability probe's fold agrees with the report.

use onoc_sim::{
    DynamicPolicy, FaultPlan, HealPolicy, HealingConfig, InjectionMode, LaneFault,
    OpenLoopSimulator, ReliabilityProbe, ReportMode, SimScratch, StaticFlowMap, StochasticFaults,
    TrafficEvent, TransportMode, WavelengthMode,
};
use onoc_topology::{NodeId, RingTopology};
use onoc_units::{Bits, BitsPerCycle};

fn event(time: u64, src: usize, dst: usize, bits: f64) -> TrafficEvent {
    TrafficEvent {
        time,
        src: NodeId(src),
        dst: NodeId(dst),
        volume: Bits::new(bits),
    }
}

/// The engine proptests' deterministic conservation corpus.
fn corpus(seed: u64, len: usize) -> Vec<TrafficEvent> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut time = 0u64;
    (0..len)
        .map(|_| {
            time += next() % 4;
            let src = (next() % 16) as usize;
            let dst = (src + 1 + (next() % 15) as usize) % 16;
            event(time, src, dst, 64.0 + (next() % 512) as f64)
        })
        .collect()
}

fn dynamic_sim(wavelengths: usize, injection: InjectionMode) -> OpenLoopSimulator {
    OpenLoopSimulator::with_injection(
        RingTopology::new(16),
        wavelengths,
        BitsPerCycle::new(1.0),
        WavelengthMode::Dynamic(DynamicPolicy::Single),
        injection,
    )
}

proptest::proptest! {
    /// A vacuous fault plan plus `TransportMode::None` is the plain
    /// engine: reports are bit-identical in both modes under every
    /// injection policy of the corpus.
    #[test]
    fn vacuous_faults_are_bit_identical_to_the_plain_engine(
        seed in 0u64..100,
        wavelengths in 1usize..5,
        policy in 0usize..4,
    ) {
        use proptest::prelude::*;
        let injection = match policy {
            0 => InjectionMode::Open,
            1 => InjectionMode::Credit { window: 2 },
            2 => InjectionMode::CreditPerDst { window: 2 },
            _ => InjectionMode::Ecn { threshold: 0.2 },
        };
        let events = corpus(seed, 80);
        let plain = dynamic_sim(wavelengths, injection);
        let faulty = dynamic_sim(wavelengths, injection)
            .with_faults(FaultPlan::new(seed))
            .with_transport(TransportMode::None);
        prop_assert!(faulty.faults().is_some_and(FaultPlan::is_vacuous));
        for mode in [ReportMode::Full, ReportMode::Streaming] {
            let a = plain
                .run_with_scratch(events.clone().into_iter(), &mut SimScratch::new(), mode)
                .unwrap();
            let b = faulty
                .run_with_scratch(events.clone().into_iter(), &mut SimScratch::new(), mode)
                .unwrap();
            prop_assert_eq!(&a, &b, "{:?} report drifted under a vacuous fault plan", mode);
        }
    }

    /// Go-back-N under BER corruption conserves traffic: every offered
    /// message is either delivered or lost, every offered bit is
    /// accounted exactly once, and retransmitted bits never count
    /// toward the delivered total.
    #[test]
    fn gbn_runs_conserve_offered_bits(
        seed in 0u64..100,
        ber_exp in 3u32..6,
        wavelengths in 1usize..5,
    ) {
        use proptest::prelude::*;
        let ber = 10f64.powi(-(i32::try_from(ber_exp).unwrap()));
        let events = corpus(seed, 60);
        let offered: f64 = events.iter().map(|e| e.volume.value()).sum();
        let sim = dynamic_sim(wavelengths, InjectionMode::Open)
            .with_faults(FaultPlan::new(seed).with_ber(ber))
            .with_transport(TransportMode::go_back_n());
        let report = sim
            .run_with_scratch(events.clone().into_iter(), &mut SimScratch::new(), ReportMode::Full)
            .unwrap();
        prop_assert_eq!(report.message_count + report.lost_messages, events.len());
        prop_assert!(
            (report.delivered_bits + report.lost_bits - offered).abs() < 1e-6,
            "offered {} != delivered {} + lost {}",
            offered, report.delivered_bits, report.lost_bits
        );
        // Every failed attempt retransmitted its full message volume.
        prop_assert!(report.retransmitted_bits >= 0.0);
        prop_assert!((report.failed_attempts == 0) == (report.retransmitted_bits == 0.0));
    }

    /// Stochastic lane outages with go-back-N recovery still conserve
    /// traffic, and a rerun from the same plan replays bit-identically.
    #[test]
    fn stochastic_outages_conserve_and_replay(
        seed in 0u64..60,
        wavelengths in 2usize..5,
    ) {
        use proptest::prelude::*;
        let events = corpus(seed, 50);
        let offered: f64 = events.iter().map(|e| e.volume.value()).sum();
        let plan = FaultPlan::new(seed)
            .with_stochastic(StochasticFaults {
                mean_up: 300.0,
                mean_down: 40.0,
                horizon: 2_000,
            })
            .with_ber(1e-5);
        let sim = dynamic_sim(wavelengths, InjectionMode::Open)
            .with_faults(plan)
            .with_transport(TransportMode::go_back_n());
        let a = sim
            .run_with_scratch(events.clone().into_iter(), &mut SimScratch::new(), ReportMode::Full)
            .unwrap();
        let b = sim
            .run_with_scratch(events.clone().into_iter(), &mut SimScratch::new(), ReportMode::Full)
            .unwrap();
        prop_assert_eq!(&a, &b, "a seeded fault run must replay exactly");
        prop_assert_eq!(a.message_count + a.lost_messages, events.len());
        prop_assert!((a.delivered_bits + a.lost_bits - offered).abs() < 1e-6);
    }

    /// PFC backpressure is lossless without faults: everything is
    /// delivered, nothing is retransmitted, and the reports replay.
    #[test]
    fn pfc_without_faults_is_lossless(seed in 0u64..60, wavelengths in 1usize..5) {
        use proptest::prelude::*;
        let events = corpus(seed, 60);
        let offered: f64 = events.iter().map(|e| e.volume.value()).sum();
        let sim = dynamic_sim(wavelengths, InjectionMode::Open)
            .with_transport(TransportMode::pfc());
        let report = sim
            .run_with_scratch(events.clone().into_iter(), &mut SimScratch::new(), ReportMode::Full)
            .unwrap();
        prop_assert_eq!(report.message_count, events.len());
        prop_assert_eq!(report.lost_messages, 0);
        prop_assert_eq!(report.failed_attempts, 0);
        prop_assert!((report.delivered_bits - offered).abs() < 1e-6);
    }
}

fn static_sim(wavelengths: usize, injection: InjectionMode) -> OpenLoopSimulator {
    OpenLoopSimulator::with_injection(
        RingTopology::new(16),
        wavelengths,
        BitsPerCycle::new(1.0),
        WavelengthMode::Static(StaticFlowMap::striped(16, wavelengths, 1)),
        injection,
    )
}

proptest::proptest! {
    /// Healing disabled — the default [`HealingConfig`] (park policy, no
    /// quarantine threshold) — is bit-identical to the engine without a
    /// healing config, across injection modes and fault-plan shapes.
    #[test]
    fn park_healing_is_bit_identical_to_the_plain_engine(
        seed in 0u64..40,
        wavelengths in 2usize..5,
        policy in 0usize..4,
        plan_kind in 0usize..4,
    ) {
        use proptest::prelude::*;
        let injection = match policy {
            0 => InjectionMode::Open,
            1 => InjectionMode::Credit { window: 2 },
            2 => InjectionMode::CreditPerDst { window: 2 },
            _ => InjectionMode::Ecn { threshold: 0.2 },
        };
        let plan = match plan_kind {
            0 => FaultPlan::new(seed).with_scheduled(LaneFault {
                lane: 0,
                at: 40,
                duration: 120,
            }),
            1 => FaultPlan::new(seed).with_stochastic(StochasticFaults {
                mean_up: 250.0,
                mean_down: 40.0,
                horizon: 2_000,
            }),
            2 => FaultPlan::new(seed).with_ber(1e-4),
            _ => FaultPlan::new(seed).with_ber(1e-4).with_scheduled(LaneFault {
                lane: 1,
                at: 60,
                duration: u64::MAX,
            }),
        };
        let events = corpus(seed, 60);
        let plain = static_sim(wavelengths, injection)
            .with_faults(plan.clone())
            .with_transport(TransportMode::go_back_n());
        let healed = static_sim(wavelengths, injection)
            .with_faults(plan)
            .with_transport(TransportMode::go_back_n())
            .with_healing(HealingConfig::default());
        for mode in [ReportMode::Full, ReportMode::Streaming] {
            let a = plain
                .run_with_scratch(events.clone().into_iter(), &mut SimScratch::new(), mode)
                .unwrap();
            let b = healed
                .run_with_scratch(events.clone().into_iter(), &mut SimScratch::new(), mode)
                .unwrap();
            prop_assert_eq!(&a, &b, "{:?} report drifted under park healing", mode);
        }
    }

    /// Mid-run re-allocation conserves traffic: under a permanent outage
    /// with a re-pack heal (strict or relaxed), every offered message is
    /// delivered or lost and every offered bit is accounted exactly once.
    #[test]
    fn healed_runs_conserve_offered_bits(
        seed in 0u64..40,
        wavelengths in 2usize..5,
        relaxed in 0usize..2,
    ) {
        use proptest::prelude::*;
        let events = corpus(seed, 60);
        let offered: f64 = events.iter().map(|e| e.volume.value()).sum();
        let policy = if relaxed == 1 {
            HealPolicy::RePackRelaxed
        } else {
            HealPolicy::RePackStrict
        };
        let sim = static_sim(wavelengths, InjectionMode::Open)
            .with_faults(
                FaultPlan::new(seed)
                    .with_ber(1e-4)
                    .with_scheduled(LaneFault {
                        lane: 0,
                        at: 80,
                        duration: u64::MAX,
                    }),
            )
            .with_transport(TransportMode::go_back_n())
            .with_healing(HealingConfig {
                policy,
                ber_threshold: None,
            });
        let a = sim
            .run_with_scratch(events.clone().into_iter(), &mut SimScratch::new(), ReportMode::Full)
            .unwrap();
        let b = sim
            .run_with_scratch(events.clone().into_iter(), &mut SimScratch::new(), ReportMode::Full)
            .unwrap();
        prop_assert_eq!(&a, &b, "a healed run must replay exactly");
        prop_assert_eq!(a.message_count + a.lost_messages, events.len());
        prop_assert!(
            (a.delivered_bits + a.lost_bits - offered).abs() < 1e-6,
            "offered {} != delivered {} + lost {}",
            offered, a.delivered_bits, a.lost_bits
        );
    }
}

/// A scheduled finite outage on a static flow's only lane parks the
/// message and delivers it after the repair; a permanent outage loses it.
#[test]
fn static_mode_parks_across_repair_and_loses_on_permanent_outage() {
    let events = vec![event(10, 0, 1, 32.0)];
    let base = || {
        OpenLoopSimulator::new(
            RingTopology::new(16),
            8,
            BitsPerCycle::new(1.0),
            WavelengthMode::Static(StaticFlowMap::striped(16, 8, 1)),
        )
    };
    let make = |fault: LaneFault| base().with_faults(FaultPlan::new(7).with_scheduled(fault));
    // Flow 0→1 is striped onto a single lane; find it by running clean.
    let clean = base().run(events.clone().into_iter()).unwrap();
    assert_eq!(clean.message_count, 1);
    let lane = clean.lane_busy.iter().position(|&b| b > 0).unwrap();

    // Outage spans the offer: the message parks and restarts at repair.
    let repaired = make(LaneFault {
        lane,
        at: 0,
        duration: 100,
    })
    .run(events.clone().into_iter())
    .unwrap();
    assert_eq!(repaired.message_count, 1);
    assert_eq!(repaired.lost_messages, 0);
    let started = repaired.records[0].started;
    assert!(
        started >= 100,
        "parked message started at {started}, before the lane repair"
    );

    // A permanent outage with no recovery pending loses the message.
    let lost = make(LaneFault {
        lane,
        at: 0,
        duration: u64::MAX,
    })
    .run(events.into_iter())
    .unwrap();
    assert_eq!(lost.message_count, 0);
    assert_eq!(lost.lost_messages, 1);
    assert!((lost.lost_bits - 32.0).abs() < 1e-12);
}

/// An in-flight dynamic transmission crossing a scheduled outage is
/// dropped with the lane-down cause and recovered by go-back-N.
#[test]
fn gbn_recovers_a_transmission_cut_by_a_scheduled_outage() {
    let sim = dynamic_sim(1, InjectionMode::Open)
        .with_faults(FaultPlan::new(3).with_scheduled(LaneFault {
            lane: 0,
            at: 20,
            duration: 30,
        }))
        .with_transport(TransportMode::go_back_n());
    // A 64-cycle transmission starting at 0 is mid-flight at cycle 20.
    let report = sim.run(vec![event(0, 0, 2, 64.0)].into_iter()).unwrap();
    assert_eq!(report.message_count, 1);
    assert_eq!(report.lost_messages, 0);
    assert!(report.failed_attempts >= 1);
    assert!((report.retransmitted_bits - 64.0 * report.failed_attempts as f64).abs() < 1e-9);
    let record = &report.records[0];
    assert!(record.attempts >= 2);
    assert!(
        record.completed >= 50 + 64,
        "delivery at {} cannot predate repair + full span",
        record.completed
    );
}

/// The reliability probe's fold agrees with the engine report, and its
/// derived figures are internally consistent.
#[test]
fn reliability_probe_matches_the_report() {
    let events = corpus(11, 80);
    let sim = dynamic_sim(2, InjectionMode::Open)
        .with_faults(FaultPlan::new(11).with_ber(5e-4).with_scheduled(LaneFault {
            lane: 1,
            at: 50,
            duration: 200,
        }))
        .with_transport(TransportMode::go_back_n());
    let mut probe = ReliabilityProbe::new(2);
    let report = sim
        .run_with_scratch_probed(
            events.into_iter(),
            &mut SimScratch::new(),
            ReportMode::Full,
            &mut probe,
        )
        .unwrap();
    let rel = probe.report();
    assert_eq!(rel.delivered_messages as usize, report.message_count);
    assert!((rel.delivered_bits - report.delivered_bits).abs() < 1e-9);
    assert_eq!(rel.failed_attempts() as usize, report.failed_attempts);
    assert!((rel.retransmitted_bits - report.retransmitted_bits).abs() < 1e-9);
    assert_eq!(rel.lost_messages as usize, report.lost_messages);
    assert_eq!(rel.horizon, report.horizon);
    // The scheduled outage is visible as lane downtime on lane 1 only.
    assert_eq!(rel.lane_downtime[1], 200);
    assert_eq!(rel.lane_downtime[0], 0);
    assert!(rel.goodput() > 0.0);
    assert!(rel.delivery_ratio() > 0.0 && rel.delivery_ratio() <= 1.0);
    assert!(rel.waste_fraction() >= 0.0 && rel.waste_fraction() < 1.0);
    // Every message recovered after a failure contributes its latency.
    assert_eq!(rel.recovered_messages, rel.recovery_latency.count as u64);
}

/// Goodput is monotonically non-increasing in the uniform BER: the
/// corruption draws are coupled through the shared hash stream, so a
/// message corrupted at a low rate stays corrupted at every higher one.
#[test]
fn delivered_bits_never_increase_with_ber() {
    let events = corpus(5, 60);
    let mut last = f64::INFINITY;
    for ber in [0.0, 1e-5, 1e-4, 1e-3, 1e-2] {
        let plan = if ber > 0.0 {
            FaultPlan::new(5).with_ber(ber)
        } else {
            FaultPlan::new(5)
        };
        let report = dynamic_sim(2, InjectionMode::Open)
            .with_faults(plan)
            .with_transport(TransportMode::go_back_n())
            .run(events.clone().into_iter())
            .unwrap();
        assert!(
            report.delivered_bits <= last + 1e-9,
            "delivered bits rose from {last} to {} at BER {ber}",
            report.delivered_bits
        );
        last = report.delivered_bits;
    }
}

/// A pinned seeded fault schedule: the exact report of a small run with
/// scheduled outages, BER corruption and go-back-N recovery. Any engine
/// change that shifts fault arithmetic shows up here first.
#[test]
fn golden_seeded_fault_schedule() {
    let events = vec![
        event(0, 0, 4, 96.0),
        event(5, 1, 5, 64.0),
        event(12, 2, 6, 128.0),
        event(30, 3, 7, 64.0),
        event(64, 4, 0, 96.0),
    ];
    let sim = dynamic_sim(2, InjectionMode::Open)
        .with_faults(FaultPlan::new(42).with_ber(2e-3).with_scheduled(LaneFault {
            lane: 0,
            at: 24,
            duration: 40,
        }))
        .with_transport(TransportMode::GoBackN {
            window: 8,
            nack_delay: 16,
            timeout: 256,
            max_retries: 8,
        });
    let report = sim.run(events.into_iter()).unwrap();
    let summary = format!(
        "messages={} lost={} failed={} retx={:.1} delivered={:.1} horizon={}",
        report.message_count,
        report.lost_messages,
        report.failed_attempts,
        report.retransmitted_bits,
        report.delivered_bits,
        report.horizon,
    );
    assert_eq!(
        summary, "messages=5 lost=0 failed=2 retx=224.0 delivered=448.0 horizon=352",
        "seeded fault schedule drifted"
    );
}

/// The tentpole guarantee, pinned: under a permanent mid-run outage a
/// re-pack heal delivers strictly more goodput and strictly fewer lost
/// bits than parking, because parked flows never transmit again while
/// re-packed flows resume on surviving lanes.
#[test]
fn repack_outperforms_park_under_permanent_outage() {
    let events: Vec<_> = (0..10).map(|i| event(i * 40, 0, 1, 32.0)).collect();
    // Flow 0→1 is striped onto a single lane; find it by running clean.
    let clean = static_sim(8, InjectionMode::Open)
        .run(events.clone().into_iter())
        .unwrap();
    let lane = clean.lane_busy.iter().position(|&b| b > 0).unwrap();
    let run = |policy: HealPolicy| {
        static_sim(8, InjectionMode::Open)
            .with_faults(FaultPlan::new(9).with_scheduled(LaneFault {
                lane,
                at: 50,
                duration: u64::MAX,
            }))
            .with_healing(HealingConfig {
                policy,
                ber_threshold: None,
            })
            .run(events.clone().into_iter())
            .unwrap()
    };
    let park = run(HealPolicy::Park);
    let repack = run(HealPolicy::RePackRelaxed);
    assert!(
        repack.delivered_bits > park.delivered_bits,
        "re-pack goodput {} must beat park {}",
        repack.delivered_bits,
        park.delivered_bits
    );
    assert!(
        repack.lost_bits < park.lost_bits,
        "re-pack lost {} must undercut park {}",
        repack.lost_bits,
        park.lost_bits
    );
    // Both runs still conserve the offered traffic.
    for r in [&park, &repack] {
        assert_eq!(r.message_count + r.lost_messages, events.len());
        assert!((r.delivered_bits + r.lost_bits - 320.0).abs() < 1e-9);
    }
}

/// The reliability probe folds heal facts into first-class recovery
/// figures: outages opened, heals applied, flows moved, and per-outage
/// recovery latency with percentile SLOs.
#[test]
fn reliability_probe_tracks_heals_and_recovery() {
    let events: Vec<_> = (0..10).map(|i| event(i * 40, 0, 1, 32.0)).collect();
    let clean = static_sim(8, InjectionMode::Open)
        .run(events.clone().into_iter())
        .unwrap();
    let lane = clean.lane_busy.iter().position(|&b| b > 0).unwrap();
    let mut probe = ReliabilityProbe::new(8);
    static_sim(8, InjectionMode::Open)
        .with_faults(FaultPlan::new(9).with_scheduled(LaneFault {
            lane,
            at: 50,
            duration: u64::MAX,
        }))
        .with_healing(HealingConfig {
            policy: HealPolicy::RePackRelaxed,
            ber_threshold: None,
        })
        .run_with_scratch_probed(
            events.into_iter(),
            &mut SimScratch::new(),
            ReportMode::Full,
            &mut probe,
        )
        .unwrap();
    let rel = probe.report();
    assert_eq!(rel.outages, 1, "one permanent outage opened");
    assert_eq!(rel.heals, 1, "the outage healed exactly once");
    assert!(rel.flows_moved >= 1, "the dark lane's flows moved");
    assert_eq!(rel.outage_recovery.count as u64, rel.outages);
    // The heal lands at the outage cycle itself: recovery is immediate,
    // and the percentile ladder is ordered.
    assert!(rel.outage_recovery.p50 <= rel.outage_recovery.p95);
    assert!(rel.outage_recovery.p95 <= rel.outage_recovery.p99);
    assert!(rel.outage_recovery.max as f64 >= rel.outage_recovery.p99);
}

/// A Gilbert–Elliott channel above the quarantine threshold degrades a
/// lane, the engine takes it administratively down, and a re-pack heal
/// moves traffic off it — end to end from BER draw to heal fact.
#[test]
fn gilbert_elliott_quarantine_triggers_a_heal() {
    let events: Vec<_> = (0..40).map(|i| event(i * 24, 0, 1, 48.0)).collect();
    let mut probe = ReliabilityProbe::new(4);
    let report = static_sim(4, InjectionMode::Open)
        .with_faults(FaultPlan::new(21).with_gilbert_elliott(0.02, 0.01, 0.0, 0.2))
        .with_transport(TransportMode::go_back_n())
        .with_healing(HealingConfig {
            policy: HealPolicy::RePackRelaxed,
            ber_threshold: Some(0.1),
        })
        .run_with_scratch_probed(
            events.into_iter(),
            &mut SimScratch::new(),
            ReportMode::Full,
            &mut probe,
        )
        .unwrap();
    let rel = probe.report();
    assert!(
        report.failed_attempts >= 1,
        "the bad state must corrupt at least one attempt"
    );
    assert!(rel.outages >= 1, "corruption must quarantine the lane");
    assert!(rel.heals >= 1, "quarantine must trigger a heal");
    assert_eq!(rel.outage_recovery.count as u64, rel.outages);
    // The run replays bit-identically from its seed.
    let again = static_sim(4, InjectionMode::Open)
        .with_faults(FaultPlan::new(21).with_gilbert_elliott(0.02, 0.01, 0.0, 0.2))
        .with_transport(TransportMode::go_back_n())
        .with_healing(HealingConfig {
            policy: HealPolicy::RePackRelaxed,
            ber_threshold: Some(0.1),
        })
        .run(
            (0..40)
                .map(|i| event(i * 24, 0, 1, 48.0))
                .collect::<Vec<_>>()
                .into_iter(),
        )
        .unwrap();
    assert_eq!(report, again, "a seeded quarantine run must replay exactly");
}
