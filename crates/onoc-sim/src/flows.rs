//! Static-allocation synthesis from measured traffic: turn a flow matrix
//! into a [`StaticFlowMap`] by reusing the `onoc-wa` allocator.
//!
//! The paper allocates wavelengths at design time from an application's
//! *known* communications. Open-loop traffic has no task graph, but it has
//! the next best thing: a measured `(src, dst)` volume matrix. This module
//! closes the loop the ROADMAP asks for — measure a trace into a
//! [`FlowMatrix`], synthesise per-flow wavelength sets with
//! [`StaticFlowMap::from_allocator`] (the same greedy disjoint-lane packer
//! behind `onoc_wa::heuristics::first_fit` and
//! `ProblemInstance::allocation_from_counts`), and replay the trace in
//! [`WavelengthMode::Static`](crate::WavelengthMode) to compare design-time
//! allocation against dynamic arbitration on identical input.
//!
//! Flows that share a directed waveguide segment receive disjoint sets, so
//! a synthesised map replayed against any trace over the *measured* flows
//! is conflict-free by construction; only unmeasured flows are rejected
//! (see [`OpenLoopError::UnmappedFlow`](crate::OpenLoopError)).

use onoc_photonics::WavelengthId;
use onoc_topology::{NodeId, RingPath, RingTopology};
use onoc_units::Bits;
use onoc_wa::heuristics::{assign_disjoint_lanes, assign_shared_lanes};

use crate::openloop::{StaticFlowMap, TrafficEvent};

/// Accumulated traffic volume per ordered `(src, dst)` flow.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowMatrix {
    nodes: usize,
    /// Indexed by `src * nodes + dst`; the diagonal stays zero.
    bits: Vec<f64>,
}

impl FlowMatrix {
    /// An all-zero matrix over an `nodes`-node ring.
    ///
    /// # Panics
    ///
    /// Panics if `nodes < 2`.
    #[must_use]
    pub fn new(nodes: usize) -> Self {
        assert!(nodes >= 2, "a ring needs at least 2 nodes, got {nodes}");
        Self {
            nodes,
            bits: vec![0.0; nodes * nodes],
        }
    }

    /// Measures a trace: one matrix cell accumulates each event's volume.
    ///
    /// # Panics
    ///
    /// Panics if an event references a node outside the ring or is a
    /// self-loop.
    #[must_use]
    pub fn from_events<'a>(
        nodes: usize,
        events: impl IntoIterator<Item = &'a TrafficEvent>,
    ) -> Self {
        let mut matrix = Self::new(nodes);
        for event in events {
            matrix.record(event.src, event.dst, event.volume);
        }
        matrix
    }

    /// Adds `volume` bits to the `src → dst` cell.
    ///
    /// # Panics
    ///
    /// Panics if a node is outside the ring or `src == dst`.
    pub fn record(&mut self, src: NodeId, dst: NodeId, volume: Bits) {
        assert!(
            src.0 < self.nodes && dst.0 < self.nodes,
            "{src}→{dst} is not on a {}-node ring",
            self.nodes
        );
        assert_ne!(src, dst, "self-addressed traffic never enters the ring");
        self.bits[src.0 * self.nodes + dst.0] += volume.value();
    }

    /// Ring size the matrix was measured on.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Measured bits on the `src → dst` flow (0 for unmeasured flows).
    ///
    /// # Panics
    ///
    /// Panics if a node is outside the ring.
    #[must_use]
    pub fn bits(&self, src: NodeId, dst: NodeId) -> f64 {
        assert!(
            src.0 < self.nodes && dst.0 < self.nodes,
            "{src}→{dst} is not on a {}-node ring",
            self.nodes
        );
        self.bits[src.0 * self.nodes + dst.0]
    }

    /// Every flow with nonzero volume, in `(src, dst)` order.
    #[must_use]
    pub fn flows(&self) -> Vec<(NodeId, NodeId, f64)> {
        let mut out = Vec::new();
        for src in 0..self.nodes {
            for dst in 0..self.nodes {
                let bits = self.bits[src * self.nodes + dst];
                if bits > 0.0 {
                    out.push((NodeId(src), NodeId(dst), bits));
                }
            }
        }
        out
    }

    /// Number of flows with nonzero volume.
    #[must_use]
    pub fn flow_count(&self) -> usize {
        self.bits.iter().filter(|&&b| b > 0.0).count()
    }

    /// Total measured volume.
    #[must_use]
    pub fn total_bits(&self) -> f64 {
        self.bits.iter().sum()
    }
}

/// How [`StaticFlowMap::from_allocator`] sizes each flow's wavelength set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowAllocPolicy {
    /// One wavelength per measured flow — the classical single-lightpath
    /// First-Fit assignment, on the measured conflict graph.
    FirstFit,
    /// Start from one lane each, then repeatedly grant an extra lane to
    /// the flow with the most measured bits per lane (ties to the heavier
    /// flow, then flow order), re-packing after every grant; a flow whose
    /// grant no longer packs is saturated. The open-loop analogue of the
    /// paper's bandwidth-hungry allocations.
    Proportional {
        /// Upper bound on lanes per flow (use the comb size for "no cap").
        max_lanes_per_flow: usize,
    },
    /// One wavelength per measured flow like [`FlowAllocPolicy::FirstFit`],
    /// but dense flow sets that exceed the strict §III-D disjointness
    /// budget (more than `NW` mutually overlapping flows) *share* lanes
    /// between low-volume flows instead of failing: flows pack
    /// heaviest-first, so sharing lands on the light tail, and the
    /// predicted conflict budget is reported in the
    /// [`SynthesisSummary`].
    Relaxed,
}

/// One lane-sharing record of a relaxed packing: `((src, dst)` of the
/// flow that had to share, `(src, dst)` of the earlier-packed owner, and
/// the contested lane.
pub type SharedLanePair = ((NodeId, NodeId), (NodeId, NodeId), WavelengthId);

/// What [`StaticFlowMap::from_allocator_with_summary`] learned while
/// packing: the predicted conflict budget of a relaxed assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisSummary {
    /// Every pair of flows that shares a lane, with the contested lane.
    /// Empty for strict policies and for relaxed runs that stayed
    /// disjoint.
    pub shared_pairs: Vec<SharedLanePair>,
    /// Measured bits on flows involved in at least one sharing pair —
    /// the traffic volume exposed to potential runtime conflicts.
    pub shared_bits: f64,
}

impl SynthesisSummary {
    /// A summary with no sharing (strict packings).
    #[must_use]
    pub fn disjoint() -> Self {
        Self {
            shared_pairs: Vec::new(),
            shared_bits: 0.0,
        }
    }

    /// `true` when the packing satisfies strict §III-D disjointness.
    #[must_use]
    pub fn is_disjoint(&self) -> bool {
        self.shared_pairs.is_empty()
    }
}

/// Why a flow map could not be synthesised from a matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FlowSynthesisError {
    /// The matrix has no nonzero flow.
    NoFlows,
    /// Even one wavelength per flow cannot be packed: the flow's conflict
    /// neighbourhood exhausted the comb.
    Infeasible {
        /// Source of the flow that could not be served.
        src: NodeId,
        /// Destination of the flow that could not be served.
        dst: NodeId,
        /// Comb size that was available.
        wavelengths: usize,
    },
}

impl core::fmt::Display for FlowSynthesisError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FlowSynthesisError::NoFlows => {
                write!(f, "flow matrix has no nonzero flow to allocate for")
            }
            FlowSynthesisError::Infeasible {
                src,
                dst,
                wavelengths,
            } => write!(
                f,
                "no wavelength left for flow {src}→{dst} in a {wavelengths}-λ comb"
            ),
        }
    }
}

impl std::error::Error for FlowSynthesisError {}

impl StaticFlowMap {
    /// Synthesises per-flow wavelength sets from a measured [`FlowMatrix`]
    /// by reusing the `onoc-wa` greedy disjoint-lane allocator
    /// ([`assign_disjoint_lanes`]).
    ///
    /// Flows are routed along the shortest ring direction (clockwise on
    /// ties, matching the open-loop engine) and packed heaviest-first; any
    /// two flows sharing a directed segment receive disjoint sets — the
    /// §III-D constraint transplanted from communications to flows. Flows
    /// absent from the matrix get no lanes; replaying traffic on them
    /// fails with [`OpenLoopError::UnmappedFlow`](crate::OpenLoopError).
    ///
    /// # Errors
    ///
    /// Returns [`FlowSynthesisError`] when the matrix is empty or even one
    /// lane per flow does not fit the comb.
    ///
    /// # Panics
    ///
    /// Panics if `wavelengths` is outside `1..=128`, the ring is smaller
    /// than the matrix, or a `Proportional` policy has a zero lane cap.
    pub fn from_allocator(
        ring: &RingTopology,
        wavelengths: usize,
        flows: &FlowMatrix,
        policy: FlowAllocPolicy,
    ) -> Result<Self, FlowSynthesisError> {
        Self::from_allocator_with_summary(ring, wavelengths, flows, policy).map(|(map, _)| map)
    }

    /// Like [`StaticFlowMap::from_allocator`], additionally returning the
    /// [`SynthesisSummary`] — the predicted conflict budget when the
    /// [`FlowAllocPolicy::Relaxed`] policy had to share lanes.
    ///
    /// # Errors
    ///
    /// Returns [`FlowSynthesisError`] under the strict policies when the
    /// matrix is empty or one lane per flow does not fit the comb; the
    /// relaxed policy only fails on an empty matrix.
    ///
    /// # Panics
    ///
    /// Panics on the conditions of [`StaticFlowMap::from_allocator`].
    pub fn from_allocator_with_summary(
        ring: &RingTopology,
        wavelengths: usize,
        flows: &FlowMatrix,
        policy: FlowAllocPolicy,
    ) -> Result<(Self, SynthesisSummary), FlowSynthesisError> {
        Self::from_allocator_with_spares(ring, wavelengths, flows, policy, 0)
    }

    /// Like [`StaticFlowMap::from_allocator_with_summary`], but holds the
    /// top `spares` lanes of the comb out of the synthesis: flows pack
    /// into the low `wavelengths - spares` channels, and λ`(NW-spares)`..
    /// λ`(NW-1)` stay unclaimed. A strict mid-run re-pack
    /// ([`onoc_wa::reassign_flows_on_lane_loss`]) or an online defrag then
    /// always has a disjoint re-home for up to `spares` lost lanes.
    ///
    /// # Errors
    ///
    /// Returns [`FlowSynthesisError`] on the conditions of
    /// [`StaticFlowMap::from_allocator_with_summary`], judged against the
    /// reduced packing comb (the `wavelengths` field of an `Infeasible`
    /// error reports the lanes that were actually packable).
    ///
    /// # Panics
    ///
    /// Panics on the conditions of [`StaticFlowMap::from_allocator`], or
    /// when `spares` does not leave at least one packable lane
    /// (`spares >= wavelengths`).
    pub fn from_allocator_with_spares(
        ring: &RingTopology,
        wavelengths: usize,
        flows: &FlowMatrix,
        policy: FlowAllocPolicy,
        spares: usize,
    ) -> Result<(Self, SynthesisSummary), FlowSynthesisError> {
        assert!(
            (1..=128).contains(&wavelengths),
            "flow maps support 1..=128 wavelengths, got {wavelengths}"
        );
        assert!(
            spares < wavelengths,
            "{spares} spare lanes leave nothing of a {wavelengths}-λ comb to pack into"
        );
        assert_eq!(
            ring.node_count(),
            flows.nodes(),
            "flow matrix was measured on a different ring"
        );
        // Flows pack into the low lanes only; the held-out top lanes are
        // still part of the map's comb, so the engine may re-home onto
        // them mid-run.
        let pack_comb = wavelengths - spares;
        let max_lanes = match policy {
            FlowAllocPolicy::FirstFit | FlowAllocPolicy::Relaxed => 1,
            FlowAllocPolicy::Proportional { max_lanes_per_flow } => {
                assert!(max_lanes_per_flow >= 1, "lane cap must be at least 1");
                max_lanes_per_flow.min(pack_comb)
            }
        };

        // Heaviest flows pack first (ties broken by (src, dst) so the
        // order — and therefore the map — is deterministic).
        let mut measured = flows.flows();
        if measured.is_empty() {
            return Err(FlowSynthesisError::NoFlows);
        }
        measured.sort_by(|a, b| {
            b.2.partial_cmp(&a.2)
                .expect("volumes are finite")
                .then_with(|| (a.0, a.1).cmp(&(b.0, b.1)))
        });

        // Conflict graph: flows whose shortest-direction paths share a
        // directed segment.
        let paths: Vec<RingPath> = measured
            .iter()
            .map(|&(src, dst, _)| RingPath::new(ring, src, dst, ring.shortest_direction(src, dst)))
            .collect();
        let mut conflicts = Vec::new();
        for i in 0..paths.len() {
            for j in i + 1..paths.len() {
                if paths[i].overlaps(&paths[j]) {
                    conflicts.push((i, j));
                }
            }
        }

        let pack = |demands: &[usize]| assign_disjoint_lanes(demands, &conflicts, pack_comb);

        // The relaxed policy never fails: it shares lanes on the light
        // tail and reports the sharing pairs as the conflict budget.
        if matches!(policy, FlowAllocPolicy::Relaxed) {
            let relaxed = assign_shared_lanes(&vec![1; measured.len()], &conflicts, pack_comb);
            let shared_pairs: Vec<_> = relaxed
                .shared
                .iter()
                .map(|&(k, owner, lane)| {
                    (
                        (measured[k].0, measured[k].1),
                        (measured[owner].0, measured[owner].1),
                        lane,
                    )
                })
                .collect();
            let mut involved: Vec<usize> = relaxed
                .shared
                .iter()
                .flat_map(|&(k, owner, _)| [k, owner])
                .collect();
            involved.sort_unstable();
            involved.dedup();
            let shared_bits = involved.iter().map(|&k| measured[k].2).sum();
            let summary = SynthesisSummary {
                shared_pairs,
                shared_bits,
            };
            let nodes = flows.nodes();
            let mut table = vec![Vec::new(); nodes * nodes];
            for (k, &(src, dst, _)) in measured.iter().enumerate() {
                table[src.0 * nodes + dst.0] = relaxed.lanes[k].clone();
            }
            return Ok((Self::from_parts(nodes, wavelengths, table), summary));
        }

        // One lane per flow is the feasibility floor.
        let mut demands = vec![1usize; measured.len()];
        let mut lanes = pack(&demands).map_err(|e| FlowSynthesisError::Infeasible {
            src: measured[e.index].0,
            dst: measured[e.index].1,
            wavelengths: pack_comb,
        })?;

        // Proportional water-filling: grant the hungriest flow one more
        // lane while the packing still fits.
        if max_lanes > 1 {
            let mut saturated = vec![false; measured.len()];
            loop {
                let candidate = (0..measured.len())
                    .filter(|&i| !saturated[i] && demands[i] < max_lanes)
                    .max_by(|&a, &b| {
                        let per_lane = |i: usize| measured[i].2 / demands[i] as f64;
                        per_lane(a)
                            .partial_cmp(&per_lane(b))
                            .expect("volumes are finite")
                            .then_with(|| b.cmp(&a)) // ties: earlier (heavier) flow
                    });
                let Some(i) = candidate else { break };
                demands[i] += 1;
                match pack(&demands) {
                    Ok(packed) => lanes = packed,
                    Err(_) => {
                        demands[i] -= 1;
                        saturated[i] = true;
                    }
                }
            }
        }

        let nodes = flows.nodes();
        let mut table = vec![Vec::new(); nodes * nodes];
        for (k, &(src, dst, _)) in measured.iter().enumerate() {
            table[src.0 * nodes + dst.0] = lanes[k].clone();
        }
        Ok((
            Self::from_parts(nodes, wavelengths, table),
            SynthesisSummary::disjoint(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DynamicPolicy, OpenLoopError, OpenLoopSimulator, WavelengthMode};
    use onoc_units::BitsPerCycle;

    fn event(time: u64, src: usize, dst: usize, bits: f64) -> TrafficEvent {
        TrafficEvent {
            time,
            src: NodeId(src),
            dst: NodeId(dst),
            volume: Bits::new(bits),
        }
    }

    #[test]
    fn matrix_accumulates_per_flow() {
        let events = [
            event(0, 0, 3, 100.0),
            event(5, 0, 3, 50.0),
            event(7, 2, 1, 25.0),
        ];
        let m = FlowMatrix::from_events(8, events.iter());
        assert_eq!(m.bits(NodeId(0), NodeId(3)), 150.0);
        assert_eq!(m.bits(NodeId(2), NodeId(1)), 25.0);
        assert_eq!(m.bits(NodeId(3), NodeId(0)), 0.0);
        assert_eq!(m.flow_count(), 2);
        assert_eq!(m.total_bits(), 175.0);
        assert_eq!(m.flows().len(), 2);
    }

    #[test]
    #[should_panic(expected = "self-addressed")]
    fn matrix_rejects_self_loops() {
        let mut m = FlowMatrix::new(4);
        m.record(NodeId(1), NodeId(1), Bits::new(1.0));
    }

    #[test]
    fn first_fit_gives_disjoint_lanes_to_overlapping_flows() {
        // On a 4-ring, 0→2 (CW via 0-1, 1-2) and 1→3 (CW via 1-2, 2-3)
        // share segment 1-2; 3→0 is independent of 0→2.
        let mut m = FlowMatrix::new(4);
        m.record(NodeId(0), NodeId(2), Bits::new(100.0));
        m.record(NodeId(1), NodeId(3), Bits::new(50.0));
        let ring = RingTopology::new(4);
        let map = StaticFlowMap::from_allocator(&ring, 2, &m, FlowAllocPolicy::FirstFit).unwrap();
        let a = map.lanes(NodeId(0), NodeId(2));
        let b = map.lanes(NodeId(1), NodeId(3));
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        assert_ne!(a[0], b[0], "overlapping flows must get disjoint lanes");
        assert!(map.lanes(NodeId(3), NodeId(0)).is_empty(), "unmeasured");
    }

    #[test]
    fn infeasible_comb_is_reported() {
        let mut m = FlowMatrix::new(4);
        m.record(NodeId(0), NodeId(2), Bits::new(100.0));
        m.record(NodeId(1), NodeId(3), Bits::new(50.0));
        let ring = RingTopology::new(4);
        let err =
            StaticFlowMap::from_allocator(&ring, 1, &m, FlowAllocPolicy::FirstFit).unwrap_err();
        assert_eq!(
            err,
            FlowSynthesisError::Infeasible {
                src: NodeId(1),
                dst: NodeId(3),
                wavelengths: 1
            }
        );
    }

    #[test]
    fn empty_matrix_is_rejected() {
        let ring = RingTopology::new(4);
        assert_eq!(
            StaticFlowMap::from_allocator(&ring, 4, &FlowMatrix::new(4), FlowAllocPolicy::FirstFit)
                .unwrap_err(),
            FlowSynthesisError::NoFlows
        );
    }

    #[test]
    fn proportional_grants_heavy_flows_more_lanes() {
        let mut m = FlowMatrix::new(8);
        m.record(NodeId(0), NodeId(2), Bits::new(10_000.0));
        m.record(NodeId(4), NodeId(6), Bits::new(100.0));
        let ring = RingTopology::new(8);
        let map = StaticFlowMap::from_allocator(
            &ring,
            4,
            &m,
            FlowAllocPolicy::Proportional {
                max_lanes_per_flow: 4,
            },
        )
        .unwrap();
        // Disjoint paths: both can take the whole comb under water-filling.
        assert_eq!(map.lanes(NodeId(0), NodeId(2)).len(), 4);
        assert_eq!(map.lanes(NodeId(4), NodeId(6)).len(), 4);
    }

    #[test]
    fn proportional_respects_conflicts_and_weights() {
        // Overlapping flows split the comb; the heavy one gets more.
        let mut m = FlowMatrix::new(4);
        m.record(NodeId(0), NodeId(2), Bits::new(3_000.0));
        m.record(NodeId(1), NodeId(3), Bits::new(1_000.0));
        let ring = RingTopology::new(4);
        let map = StaticFlowMap::from_allocator(
            &ring,
            4,
            &m,
            FlowAllocPolicy::Proportional {
                max_lanes_per_flow: 4,
            },
        )
        .unwrap();
        let heavy = map.lanes(NodeId(0), NodeId(2)).len();
        let light = map.lanes(NodeId(1), NodeId(3)).len();
        assert_eq!(heavy + light, 4, "shared segment bounds the total");
        assert!(heavy > light, "heavy {heavy} vs light {light}");
    }

    #[test]
    fn synthesised_map_replays_its_trace_conflict_free() {
        // Measure a trace, synthesise, replay statically: disjointness on
        // shared segments means zero recorded conflicts.
        let events: Vec<TrafficEvent> = (0..40)
            .map(|i| event(i * 3, (i % 7) as usize, ((i % 7) + 4) as usize % 16, 256.0))
            .collect();
        let m = FlowMatrix::from_events(16, events.iter());
        let ring = RingTopology::new(16);
        let map = StaticFlowMap::from_allocator(
            &ring,
            8,
            &m,
            FlowAllocPolicy::Proportional {
                max_lanes_per_flow: 2,
            },
        )
        .unwrap();
        let sim =
            OpenLoopSimulator::new(ring, 8, BitsPerCycle::new(1.0), WavelengthMode::Static(map));
        let report = sim.run(events.into_iter()).unwrap();
        assert_eq!(report.conflict_count, 0);
        assert_eq!(report.records.len(), 40);
    }

    #[test]
    fn relaxed_policy_matches_first_fit_when_feasible() {
        let mut m = FlowMatrix::new(4);
        m.record(NodeId(0), NodeId(2), Bits::new(100.0));
        m.record(NodeId(1), NodeId(3), Bits::new(50.0));
        let ring = RingTopology::new(4);
        let strict =
            StaticFlowMap::from_allocator(&ring, 2, &m, FlowAllocPolicy::FirstFit).unwrap();
        let (relaxed, summary) =
            StaticFlowMap::from_allocator_with_summary(&ring, 2, &m, FlowAllocPolicy::Relaxed)
                .unwrap();
        assert_eq!(strict, relaxed);
        assert!(summary.is_disjoint());
        assert_eq!(summary.shared_bits, 0.0);
    }

    #[test]
    fn relaxed_policy_shares_lanes_on_the_light_tail() {
        // Both flows fight over segment 1-2 on a 1-λ comb: strict
        // synthesis is infeasible, relaxed shares the lane and charges
        // the conflict budget to the light flow.
        let mut m = FlowMatrix::new(4);
        m.record(NodeId(0), NodeId(2), Bits::new(1_000.0));
        m.record(NodeId(1), NodeId(3), Bits::new(10.0));
        let ring = RingTopology::new(4);
        assert!(StaticFlowMap::from_allocator(&ring, 1, &m, FlowAllocPolicy::FirstFit).is_err());
        let (map, summary) =
            StaticFlowMap::from_allocator_with_summary(&ring, 1, &m, FlowAllocPolicy::Relaxed)
                .unwrap();
        assert_eq!(map.lanes(NodeId(0), NodeId(2)), &[WavelengthId(0)]);
        assert_eq!(map.lanes(NodeId(1), NodeId(3)), &[WavelengthId(0)]);
        assert_eq!(summary.shared_pairs.len(), 1);
        let (light, heavy, lane) = summary.shared_pairs[0];
        assert_eq!(light, (NodeId(1), NodeId(3)), "the light flow shares");
        assert_eq!(heavy, (NodeId(0), NodeId(2)));
        assert_eq!(lane, WavelengthId(0));
        assert_eq!(summary.shared_bits, 1_010.0);
        // The shared map still replays; conflicts are *predicted*, and the
        // checker confirms them only if transmissions actually overlap.
        let sim =
            OpenLoopSimulator::new(ring, 1, BitsPerCycle::new(1.0), WavelengthMode::Static(map));
        let quiet = sim
            .run(vec![event(0, 0, 2, 100.0), event(500, 1, 3, 10.0)].into_iter())
            .unwrap();
        assert_eq!(quiet.conflict_count, 0, "non-overlapping in time");
        let clash = sim
            .run(vec![event(0, 0, 2, 100.0), event(0, 1, 3, 10.0)].into_iter())
            .unwrap();
        assert_eq!(clash.conflict_count, 1, "overlap confirms the prediction");
    }

    #[test]
    fn relaxed_policy_still_rejects_empty_matrices() {
        let ring = RingTopology::new(4);
        assert_eq!(
            StaticFlowMap::from_allocator(&ring, 4, &FlowMatrix::new(4), FlowAllocPolicy::Relaxed)
                .unwrap_err(),
            FlowSynthesisError::NoFlows
        );
    }

    #[test]
    fn spares_hold_the_top_lanes_out_of_the_packing() {
        let mut m = FlowMatrix::new(8);
        m.record(NodeId(0), NodeId(2), Bits::new(10_000.0));
        m.record(NodeId(4), NodeId(6), Bits::new(100.0));
        let ring = RingTopology::new(8);
        let (map, summary) = StaticFlowMap::from_allocator_with_spares(
            &ring,
            4,
            &m,
            FlowAllocPolicy::Proportional {
                max_lanes_per_flow: 4,
            },
            2,
        )
        .unwrap();
        assert!(summary.is_disjoint());
        // Water-filling would flood all 4 lanes (disjoint paths); the two
        // spare lanes cap every flow at the reduced comb.
        for (src, dst) in [(NodeId(0), NodeId(2)), (NodeId(4), NodeId(6))] {
            let lanes = map.lanes(src, dst);
            assert_eq!(lanes.len(), 2);
            assert!(
                lanes.iter().all(|w| w.index() < 2),
                "{src}→{dst} claimed a spare lane: {lanes:?}"
            );
        }
    }

    #[test]
    fn spares_tighten_the_feasibility_floor() {
        // Two overlapping flows fit a 2-λ comb, but not once one lane is
        // held out as a spare.
        let mut m = FlowMatrix::new(4);
        m.record(NodeId(0), NodeId(2), Bits::new(100.0));
        m.record(NodeId(1), NodeId(3), Bits::new(50.0));
        let ring = RingTopology::new(4);
        assert!(
            StaticFlowMap::from_allocator_with_spares(&ring, 2, &m, FlowAllocPolicy::FirstFit, 0)
                .is_ok()
        );
        let err =
            StaticFlowMap::from_allocator_with_spares(&ring, 2, &m, FlowAllocPolicy::FirstFit, 1)
                .unwrap_err();
        assert_eq!(
            err,
            FlowSynthesisError::Infeasible {
                src: NodeId(1),
                dst: NodeId(3),
                wavelengths: 1
            }
        );
    }

    #[test]
    #[should_panic(expected = "spare lanes leave nothing")]
    fn spares_must_leave_a_packable_lane() {
        let mut m = FlowMatrix::new(4);
        m.record(NodeId(0), NodeId(2), Bits::new(100.0));
        let ring = RingTopology::new(4);
        let _ =
            StaticFlowMap::from_allocator_with_spares(&ring, 2, &m, FlowAllocPolicy::FirstFit, 2);
    }

    #[test]
    fn unmapped_flow_is_a_clean_error() {
        let mut m = FlowMatrix::new(16);
        m.record(NodeId(0), NodeId(3), Bits::new(100.0));
        let ring = RingTopology::new(16);
        let map = StaticFlowMap::from_allocator(&ring, 4, &m, FlowAllocPolicy::FirstFit).unwrap();
        let sim =
            OpenLoopSimulator::new(ring, 4, BitsPerCycle::new(1.0), WavelengthMode::Static(map));
        let err = sim.run(vec![event(0, 5, 9, 64.0)].into_iter()).unwrap_err();
        assert_eq!(
            err,
            OpenLoopError::UnmappedFlow {
                src: NodeId(5),
                dst: NodeId(9)
            }
        );
    }

    #[test]
    fn static_beats_or_matches_dynamic_on_the_measured_trace() {
        // The ROADMAP comparison: same trace, dynamic arbitration vs the
        // synthesised static map. Both deliver everything; the static map
        // dedicates lanes so its mean latency is not pathologically worse.
        let events: Vec<TrafficEvent> = (0..60)
            .map(|i| event(i * 10, (i % 4) as usize, 8 + (i % 4) as usize, 512.0))
            .collect();
        let m = FlowMatrix::from_events(16, events.iter());
        let ring = RingTopology::new(16);
        let map = StaticFlowMap::from_allocator(
            &ring,
            8,
            &m,
            FlowAllocPolicy::Proportional {
                max_lanes_per_flow: 8,
            },
        )
        .unwrap();
        let static_report =
            OpenLoopSimulator::new(ring, 8, BitsPerCycle::new(1.0), WavelengthMode::Static(map))
                .run(events.clone().into_iter())
                .unwrap();
        let dynamic_report = OpenLoopSimulator::new(
            ring,
            8,
            BitsPerCycle::new(1.0),
            WavelengthMode::Dynamic(DynamicPolicy::Single),
        )
        .run(events.into_iter())
        .unwrap();
        assert_eq!(static_report.records.len(), dynamic_report.records.len());
        assert_eq!(static_report.conflict_count, 0);
        assert!(static_report.latency().mean <= dynamic_report.latency().mean * 2.0);
    }
}
