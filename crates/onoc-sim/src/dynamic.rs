//! Runtime (dynamic-time) wavelength allocation.
//!
//! The related work of the paper (§II, after Zang et al.) distinguishes
//! *static-time* wavelength assignment — decided offline, the paper's and
//! this workspace's main subject — from *dynamic-time* assignment, where a
//! lightpath grabs wavelengths on demand when its data is ready and releases
//! them afterwards.
//!
//! [`DynamicSimulator`] implements the dynamic class on the same ring
//! architecture: when a communication becomes ready it claims free
//! wavelengths on **every** directed segment of its path (lowest indices
//! first, per [`DynamicPolicy`]); if none are free it waits for a release.
//! This lets the repository answer a question the paper leaves open: how
//! much performance does design-time allocation leave on the table compared
//! with an idealised runtime allocator that pays no arbitration cost?
//!
//! # Example
//!
//! ```
//! use onoc_sim::{DynamicPolicy, DynamicSimulator};
//! use onoc_units::BitsPerCycle;
//! use onoc_wa::ProblemInstance;
//!
//! let instance = ProblemInstance::paper_with_wavelengths(8);
//! let sim = DynamicSimulator::new(
//!     instance.app(),
//!     8,
//!     BitsPerCycle::new(1.0),
//!     DynamicPolicy::Greedy { cap: 8 },
//! );
//! let report = sim.run();
//! // An unconstrained runtime allocator can use the full comb per burst and
//! // beats the best static allocation (23.7 kcc at 8 λ) — even though the
//! // full-comb bursts serialise simultaneous communications.
//! assert!(report.makespan <= 23_700);
//! assert!(report.conflicts.is_empty());
//! ```

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use onoc_app::{CommId, MappedApplication, TaskId};
use onoc_photonics::WavelengthId;
use onoc_units::BitsPerCycle;

use crate::ChannelConflict;
use crate::engine::detect_conflicts_with;
use crate::injection::LaneArbiter;

/// How many wavelengths a ready communication claims.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DynamicPolicy {
    /// Claim exactly one free wavelength (classical dynamic lightpath
    /// assignment; First-Fit over the free set).
    Single,
    /// Claim every free wavelength up to `cap` (burst mode — an idealised
    /// upper bound on runtime allocation).
    Greedy {
        /// Maximum wavelengths per burst.
        cap: usize,
    },
}

impl DynamicPolicy {
    /// Wavelengths a ready transmission asks the arbiter for.
    #[must_use]
    pub fn lane_demand(self) -> usize {
        match self {
            DynamicPolicy::Single => 1,
            DynamicPolicy::Greedy { cap } => cap,
        }
    }
}

impl core::fmt::Display for DynamicPolicy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DynamicPolicy::Single => write!(f, "single"),
            DynamicPolicy::Greedy { cap } => write!(f, "greedy(cap {cap})"),
        }
    }
}

/// Outcome of a dynamic run.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicReport {
    /// Cycle of the last task completion.
    pub makespan: u64,
    /// Per task: `[start, end)`.
    pub task_spans: Vec<(u64, u64)>,
    /// Per communication: `[start, end)` of the transmission (excluding any
    /// time spent waiting for wavelengths).
    pub comm_spans: Vec<(u64, u64)>,
    /// The wavelengths each communication was granted at runtime.
    pub granted: Vec<Vec<WavelengthId>>,
    /// Number of times a ready communication found no free wavelength and
    /// had to wait for a release.
    pub blocked_attempts: usize,
    /// Dynamic runs must be conflict-free by construction; kept for
    /// symmetric reporting with the static simulator (always empty unless
    /// there is a bug).
    pub conflicts: Vec<ChannelConflict>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    TaskCompleted(usize),
    CommCompleted(usize),
}

/// Event-driven simulator with runtime wavelength arbitration.
#[derive(Debug)]
pub struct DynamicSimulator<'a> {
    app: &'a MappedApplication,
    wavelengths: usize,
    rate: BitsPerCycle,
    policy: DynamicPolicy,
}

impl<'a> DynamicSimulator<'a> {
    /// Creates a dynamic simulator over a `wavelengths`-channel comb.
    ///
    /// # Panics
    ///
    /// Panics if `wavelengths` is zero or exceeds 128, `rate` is not
    /// strictly positive, the task graph is cyclic, or the policy is
    /// degenerate (`cap == 0`).
    #[must_use]
    pub fn new(
        app: &'a MappedApplication,
        wavelengths: usize,
        rate: BitsPerCycle,
        policy: DynamicPolicy,
    ) -> Self {
        assert!(
            wavelengths > 0 && wavelengths <= 128,
            "dynamic simulator supports 1..=128 wavelengths, got {wavelengths}"
        );
        assert!(
            rate.value() > 0.0,
            "per-wavelength data rate must be strictly positive, got {rate}"
        );
        if let DynamicPolicy::Greedy { cap } = policy {
            assert!(cap > 0, "greedy burst cap must be at least 1");
        }
        assert!(
            app.graph().topological_order().is_ok(),
            "dynamic simulation requires an acyclic task graph"
        );
        Self {
            app,
            wavelengths,
            rate,
            policy,
        }
    }

    /// Runs to completion.
    ///
    /// The run always terminates: a waiting communication is retried on
    /// every release, and once the ring drains the full comb is free.
    #[must_use]
    pub fn run(&self) -> DynamicReport {
        let graph = self.app.graph();
        let (nt, nl) = (graph.task_count(), graph.comm_count());

        let mut arbiter = LaneArbiter::new(self.app.ring().node_count(), self.wavelengths);
        let mut pending_inputs: Vec<usize> =
            (0..nt).map(|t| graph.incoming(TaskId(t)).len()).collect();
        let mut task_spans = vec![(0u64, 0u64); nt];
        let mut comm_spans = vec![(0u64, 0u64); nl];
        let mut granted: Vec<Vec<WavelengthId>> = vec![Vec::new(); nl];
        let mut waiting: std::collections::VecDeque<CommId> = std::collections::VecDeque::new();
        let mut blocked_attempts = 0usize;
        // Like `Simulator`, event counts here are tiny: keep the heap.
        let mut queue: BinaryHeap<Reverse<(u64, Event)>> = BinaryHeap::new();

        for t in 0..nt {
            if pending_inputs[t] == 0 {
                let end = graph.task(TaskId(t)).execution_time().value().ceil() as u64;
                task_spans[t] = (0, end);
                queue.push(Reverse((end, Event::TaskCompleted(t))));
            }
        }

        let mut makespan = 0u64;
        while let Some(Reverse((now, event))) = queue.pop() {
            makespan = makespan.max(now);
            match event {
                Event::TaskCompleted(t) => {
                    for &c in graph.outgoing(TaskId(t)) {
                        if !self.try_start(
                            c,
                            now,
                            &mut arbiter,
                            &mut comm_spans,
                            &mut granted,
                            &mut queue,
                        ) {
                            blocked_attempts += 1;
                            waiting.push_back(c);
                        }
                    }
                }
                Event::CommCompleted(c) => {
                    // Release the burst.
                    arbiter.release(self.app.route(CommId(c)), &granted[c]);
                    // Deliver to the consumer.
                    let dst = graph.comm(CommId(c)).dst();
                    pending_inputs[dst.0] -= 1;
                    if pending_inputs[dst.0] == 0 {
                        let end = now + graph.task(dst).execution_time().value().ceil() as u64;
                        task_spans[dst.0] = (now, end);
                        queue.push(Reverse((end, Event::TaskCompleted(dst.0))));
                    }
                    // Retry the waiting queue in FIFO order.
                    let mut still_waiting = std::collections::VecDeque::new();
                    while let Some(w) = waiting.pop_front() {
                        if !self.try_start(
                            w,
                            now,
                            &mut arbiter,
                            &mut comm_spans,
                            &mut granted,
                            &mut queue,
                        ) {
                            still_waiting.push_back(w);
                        }
                    }
                    waiting = still_waiting;
                }
            }
        }

        debug_assert!(waiting.is_empty(), "releases always drain the wait queue");
        let conflicts = detect_conflicts_with(self.app, &comm_spans, &granted);
        debug_assert!(
            conflicts.is_empty(),
            "dynamic arbitration produced a conflict: {conflicts:?}"
        );
        DynamicReport {
            makespan,
            task_spans,
            comm_spans,
            granted,
            blocked_attempts,
            conflicts,
        }
    }

    /// Attempts to start `comm` at `now`; returns `false` when no
    /// wavelength is free along its path.
    fn try_start(
        &self,
        comm: CommId,
        now: u64,
        arbiter: &mut LaneArbiter,
        comm_spans: &mut [(u64, u64)],
        granted: &mut [Vec<WavelengthId>],
        queue: &mut BinaryHeap<Reverse<(u64, Event)>>,
    ) -> bool {
        let Some(lanes) = arbiter.claim(self.app.route(comm), self.policy.lane_demand()) else {
            return false;
        };
        let volume = self.app.graph().comm(comm).volume();
        let duration = (volume.value() / (lanes.len() as f64 * self.rate.value())).ceil() as u64;
        comm_spans[comm.0] = (now, now + duration);
        granted[comm.0] = lanes;
        queue.push(Reverse((now + duration, Event::CommCompleted(comm.0))));
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onoc_wa::ProblemInstance;
    use proptest::prelude::*;

    fn rate() -> BitsPerCycle {
        BitsPerCycle::new(1.0)
    }

    #[test]
    fn greedy_dynamic_beats_static_optimum() {
        // With the whole 8-λ comb per burst, transmissions serialise where
        // they collide (c1 waits for c0's burst once) but each runs at full
        // comb speed — netting out faster than the best static split.
        let inst = ProblemInstance::paper_with_wavelengths(8);
        let sim = DynamicSimulator::new(inst.app(), 8, rate(), DynamicPolicy::Greedy { cap: 8 });
        let report = sim.run();
        assert_eq!(report.makespan, 23_000, "dynamic got {}", report.makespan);
        assert_eq!(report.blocked_attempts, 1); // c1 waits for c0's burst
        assert!(report.conflicts.is_empty());
    }

    #[test]
    fn single_policy_matches_one_wavelength_static() {
        // One wavelength per burst with no contention = the static
        // [1,1,1,1,1,1] schedule (38 kcc).
        let inst = ProblemInstance::paper_with_wavelengths(8);
        let sim = DynamicSimulator::new(inst.app(), 8, rate(), DynamicPolicy::Single);
        let report = sim.run();
        assert_eq!(report.makespan, 38_000);
        assert!(report.granted.iter().all(|l| l.len() == 1));
    }

    #[test]
    fn tight_comb_causes_blocking() {
        // One single wavelength for everything: c0 and c1 want the same
        // lane at the same instant, so one of them must wait.
        let inst = ProblemInstance::paper_with_wavelengths(1);
        let sim = DynamicSimulator::new(inst.app(), 1, rate(), DynamicPolicy::Single);
        let report = sim.run();
        assert!(report.blocked_attempts > 0);
        assert!(report.conflicts.is_empty());
        // Serialisation makes it slower than the contention-free bound.
        assert!(report.makespan > 38_000);
    }

    #[test]
    fn grants_respect_the_burst_cap() {
        let inst = ProblemInstance::paper_with_wavelengths(8);
        let sim = DynamicSimulator::new(inst.app(), 8, rate(), DynamicPolicy::Greedy { cap: 3 });
        let report = sim.run();
        assert!(report.granted.iter().all(|l| !l.is_empty() && l.len() <= 3));
    }

    #[test]
    fn larger_caps_never_slow_the_run() {
        let inst = ProblemInstance::paper_with_wavelengths(8);
        let mut last = u64::MAX;
        for cap in [1usize, 2, 4, 8] {
            let sim = DynamicSimulator::new(inst.app(), 8, rate(), DynamicPolicy::Greedy { cap });
            let makespan = sim.run().makespan;
            assert!(
                makespan <= last,
                "cap {cap} slowed the run: {makespan} after {last}"
            );
            last = makespan;
        }
    }

    #[test]
    #[should_panic(expected = "burst cap")]
    fn zero_cap_rejected() {
        let inst = ProblemInstance::paper_with_wavelengths(8);
        let _ = DynamicSimulator::new(inst.app(), 8, rate(), DynamicPolicy::Greedy { cap: 0 });
    }

    proptest! {
        /// Dynamic arbitration is conflict-free for any comb size and cap,
        /// and never beats the zero-communication bound.
        #[test]
        fn dynamic_runs_are_conflict_free(nw in 1usize..16, cap in 1usize..16) {
            let inst = ProblemInstance::paper_with_wavelengths(nw.max(1));
            let sim = DynamicSimulator::new(
                inst.app(),
                nw.max(1),
                rate(),
                DynamicPolicy::Greedy { cap },
            );
            let report = sim.run();
            prop_assert!(report.conflicts.is_empty());
            prop_assert!(report.makespan >= 20_000);
            prop_assert!(report.granted.iter().all(|l| !l.is_empty()));
        }
    }
}
