//! The composable observer API of the open/closed-loop engine.
//!
//! The engine emits a small, stable stream of *simulation facts* —
//! admissions through the injection gates, transmission starts,
//! per-lane busy intervals, retirements with bits × lanes × hop count —
//! to anything implementing [`SimProbe`]. Reporting is built on the same
//! stream: the full and streaming reports are one built-in probe
//! ([`ReportProbe`], parameterised by
//! [`ReportMode`](crate::ReportMode)), and user probes such as the
//! [`EnergyProbe`](crate::EnergyProbe) attach *beside* it without
//! touching the engine.
//!
//! Design constraints, enforced by tests:
//!
//! * **Zero cost when unused** — every hook has an empty default body and
//!   the engine is generic over the probe, so a [`NullProbe`] run
//!   monomorphises to exactly the pre-probe code. The counting-allocator
//!   regression test runs with a probe attached.
//! * **Bit-identical reports** — [`ReportProbe`] folds retirements in
//!   the same order the old hard-wired accumulation did, so
//!   [`OpenLoopReport`](crate::OpenLoopReport)s are unchanged.
//! * **Composability** — probes compose structurally: `(&mut a, &mut b)`
//!   is a probe that forwards every fact to both.

use onoc_topology::NodeId;

use crate::fault::{DropFact, HealFact};
use crate::report::{LatencyHistogram, MsgRecord};

/// A transmission fact: one message began (or finished) driving its
/// wavelengths along its path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TxFact {
    /// Cycle the transmission started.
    pub start: u64,
    /// Cycle the last bit arrives (start + duration).
    pub end: u64,
    /// Bitmask of the wavelengths driven (bit *i* = λ*i*).
    pub lanes: u128,
    /// Directed waveguide segments the path crosses.
    pub hops: usize,
    /// Source node of the message driving the lanes.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Whether the start tripped the ECN congestion marker (always
    /// `false` outside [`InjectionMode::Ecn`](crate::InjectionMode)).
    pub marked: bool,
}

impl TxFact {
    /// Number of wavelengths driven.
    #[must_use]
    pub fn lane_count(&self) -> usize {
        self.lanes.count_ones() as usize
    }

    /// Transmission duration in cycles.
    #[must_use]
    pub fn span(&self) -> u64 {
        self.end - self.start
    }
}

/// A pull-free observer of engine facts. Every hook defaults to a no-op,
/// so probes implement only what they fold.
///
/// Hooks fire in simulation order: for one message,
/// `admitted` ≤ `started` < `completed` ≤ `retired` (retirement is
/// deferred until every earlier message has completed, preserving
/// injection order). `finished` fires exactly once, after the last
/// retirement.
pub trait SimProbe {
    /// Source `src` offered a message at `time` (before any injection or
    /// transport gate). Offered facts arrive in nondecreasing time
    /// order, which is what lets streaming probes close windows early.
    #[inline]
    fn offered(&mut self, time: u64, src: NodeId) {
        let _ = (time, src);
    }

    /// A message passed its injection gate into the network interface at
    /// `now`, after `stall` cycles held at source `src` (0 in open loop).
    #[inline]
    fn admitted(&mut self, now: u64, stall: u64, src: NodeId) {
        let _ = (now, stall, src);
    }

    /// A transmission began driving `fact.lanes` over `fact.hops`
    /// segments. In static mode this fires at the scheduled start cycle.
    #[inline]
    fn started(&mut self, fact: TxFact) {
        let _ = fact;
    }

    /// A transmission delivered its last bit; `fact` carries the whole
    /// busy interval, so per-lane laser-on accounting needs no other
    /// state.
    #[inline]
    fn completed(&mut self, fact: TxFact) {
        let _ = fact;
    }

    /// A message retired (all earlier messages have completed):
    /// the full per-message record plus its volume in bits and the hop
    /// count of its path.
    #[inline]
    fn retired(&mut self, record: &MsgRecord, volume_bits: f64, hops: usize) {
        let _ = (record, volume_bits, hops);
    }

    /// A transmission attempt failed (fault layer): the busy interval it
    /// drove, the bits wasted, and the failure cause. Fires at the
    /// attempt's would-be completion, before any retransmission.
    #[inline]
    fn dropped(&mut self, fact: DropFact) {
        let _ = fact;
    }

    /// A message was permanently lost: retries exhausted, no transport
    /// recovery, or the run ended with it undeliverable. Fires at the
    /// loss decision (`record.completed` holds that cycle); lost
    /// messages never reach `retired`.
    #[inline]
    fn lost(&mut self, record: &MsgRecord, volume_bits: f64, attempts: u32) {
        let _ = (record, volume_bits, attempts);
    }

    /// A message that had at least one failed attempt retired
    /// successfully; `recovery_cycles` spans its first failure to the
    /// final delivery. Fires immediately before the matching `retired`.
    #[inline]
    fn recovered(&mut self, record: &MsgRecord, attempts: u32, recovery_cycles: u64) {
        let _ = (record, attempts, recovery_cycles);
    }

    /// Lane `lane` went down (`down == true`) or recovered at `now`.
    #[inline]
    fn lane_event(&mut self, now: u64, lane: usize, down: bool) {
        let _ = (now, lane, down);
    }

    /// The self-healing allocator ran: a lane loss (or BER-threshold
    /// degradation) triggered an incremental re-pack. Fires after the
    /// triggering `lane_event`, whether or not the heal was feasible.
    #[inline]
    fn heal(&mut self, fact: HealFact) {
        let _ = fact;
    }

    /// The run drained; `horizon` is the cycle of the last completion and
    /// `last_injection` the last offered cycle.
    #[inline]
    fn finished(&mut self, horizon: u64, last_injection: u64) {
        let _ = (horizon, last_injection);
    }
}

/// The do-nothing probe: a run with it attached compiles to the
/// pre-observer engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullProbe;

impl SimProbe for NullProbe {}

/// Structural composition: a pair of probes receives every fact, left
/// first.
impl<A: SimProbe, B: SimProbe> SimProbe for (A, B) {
    #[inline]
    fn offered(&mut self, time: u64, src: NodeId) {
        self.0.offered(time, src);
        self.1.offered(time, src);
    }

    #[inline]
    fn admitted(&mut self, now: u64, stall: u64, src: NodeId) {
        self.0.admitted(now, stall, src);
        self.1.admitted(now, stall, src);
    }

    #[inline]
    fn started(&mut self, fact: TxFact) {
        self.0.started(fact);
        self.1.started(fact);
    }

    #[inline]
    fn completed(&mut self, fact: TxFact) {
        self.0.completed(fact);
        self.1.completed(fact);
    }

    #[inline]
    fn retired(&mut self, record: &MsgRecord, volume_bits: f64, hops: usize) {
        self.0.retired(record, volume_bits, hops);
        self.1.retired(record, volume_bits, hops);
    }

    #[inline]
    fn dropped(&mut self, fact: DropFact) {
        self.0.dropped(fact);
        self.1.dropped(fact);
    }

    #[inline]
    fn lost(&mut self, record: &MsgRecord, volume_bits: f64, attempts: u32) {
        self.0.lost(record, volume_bits, attempts);
        self.1.lost(record, volume_bits, attempts);
    }

    #[inline]
    fn recovered(&mut self, record: &MsgRecord, attempts: u32, recovery_cycles: u64) {
        self.0.recovered(record, attempts, recovery_cycles);
        self.1.recovered(record, attempts, recovery_cycles);
    }

    #[inline]
    fn lane_event(&mut self, now: u64, lane: usize, down: bool) {
        self.0.lane_event(now, lane, down);
        self.1.lane_event(now, lane, down);
    }

    #[inline]
    fn heal(&mut self, fact: HealFact) {
        self.0.heal(fact);
        self.1.heal(fact);
    }

    #[inline]
    fn finished(&mut self, horizon: u64, last_injection: u64) {
        self.0.finished(horizon, last_injection);
        self.1.finished(horizon, last_injection);
    }
}

/// Forwarding through a mutable reference, so callers can keep ownership
/// of their probe across runs.
impl<P: SimProbe + ?Sized> SimProbe for &mut P {
    #[inline]
    fn offered(&mut self, time: u64, src: NodeId) {
        (**self).offered(time, src);
    }

    #[inline]
    fn admitted(&mut self, now: u64, stall: u64, src: NodeId) {
        (**self).admitted(now, stall, src);
    }

    #[inline]
    fn started(&mut self, fact: TxFact) {
        (**self).started(fact);
    }

    #[inline]
    fn completed(&mut self, fact: TxFact) {
        (**self).completed(fact);
    }

    #[inline]
    fn retired(&mut self, record: &MsgRecord, volume_bits: f64, hops: usize) {
        (**self).retired(record, volume_bits, hops);
    }

    #[inline]
    fn dropped(&mut self, fact: DropFact) {
        (**self).dropped(fact);
    }

    #[inline]
    fn lost(&mut self, record: &MsgRecord, volume_bits: f64, attempts: u32) {
        (**self).lost(record, volume_bits, attempts);
    }

    #[inline]
    fn recovered(&mut self, record: &MsgRecord, attempts: u32, recovery_cycles: u64) {
        (**self).recovered(record, attempts, recovery_cycles);
    }

    #[inline]
    fn lane_event(&mut self, now: u64, lane: usize, down: bool) {
        (**self).lane_event(now, lane, down);
    }

    #[inline]
    fn heal(&mut self, fact: HealFact) {
        (**self).heal(fact);
    }

    #[inline]
    fn finished(&mut self, horizon: u64, last_injection: u64) {
        (**self).finished(horizon, last_injection);
    }
}

/// The built-in reporting probe: folds retirements into the latency and
/// stall histograms, the delivered-bits integral and — in
/// [`ReportMode::Full`](crate::ReportMode) — the retained
/// [`MsgRecord`] list. The engine assembles the public
/// [`OpenLoopReport`](crate::OpenLoopReport) from this state, so full
/// and streaming reports are two parameterisations of one probe.
#[derive(Debug)]
pub(crate) struct ReportProbe {
    /// Whether retirements retain their [`MsgRecord`].
    retain_records: bool,
    /// Full-mode output, pushed in id order as messages retire.
    pub(crate) records: Vec<MsgRecord>,
    pub(crate) latency_hist: LatencyHistogram,
    pub(crate) stall_hist: LatencyHistogram,
    pub(crate) delivered_bits: f64,
}

impl ReportProbe {
    pub(crate) fn new(retain_records: bool) -> Self {
        Self {
            retain_records,
            records: Vec::new(),
            latency_hist: LatencyHistogram::new(),
            stall_hist: LatencyHistogram::new(),
            delivered_bits: 0.0,
        }
    }
}

impl SimProbe for ReportProbe {
    #[inline]
    fn retired(&mut self, record: &MsgRecord, volume_bits: f64, _hops: usize) {
        self.latency_hist.record(record.latency());
        self.stall_hist.record(record.stall());
        self.delivered_bits += volume_bits;
        if self.retain_records {
            self.records.push(*record);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onoc_topology::NodeId;

    fn record(injected: u64, completed: u64) -> MsgRecord {
        MsgRecord {
            src: NodeId(0),
            dst: NodeId(3),
            injected,
            admitted: injected,
            started: injected,
            completed,
            lanes: 1,
            attempts: 1,
        }
    }

    /// A probe counting every hook invocation.
    #[derive(Default, Debug, PartialEq)]
    struct Counter {
        offered: usize,
        admitted: usize,
        started: usize,
        completed: usize,
        retired: usize,
        dropped: usize,
        lost: usize,
        recovered: usize,
        lane_events: usize,
        heals: usize,
        finished: usize,
        bits: f64,
    }

    impl SimProbe for Counter {
        fn offered(&mut self, _: u64, _: NodeId) {
            self.offered += 1;
        }
        fn admitted(&mut self, _: u64, _: u64, _: NodeId) {
            self.admitted += 1;
        }
        fn started(&mut self, _: TxFact) {
            self.started += 1;
        }
        fn completed(&mut self, _: TxFact) {
            self.completed += 1;
        }
        fn retired(&mut self, _: &MsgRecord, volume: f64, _: usize) {
            self.retired += 1;
            self.bits += volume;
        }
        fn dropped(&mut self, _: DropFact) {
            self.dropped += 1;
        }
        fn lost(&mut self, _: &MsgRecord, _: f64, _: u32) {
            self.lost += 1;
        }
        fn recovered(&mut self, _: &MsgRecord, _: u32, _: u64) {
            self.recovered += 1;
        }
        fn lane_event(&mut self, _: u64, _: usize, _: bool) {
            self.lane_events += 1;
        }
        fn heal(&mut self, _: HealFact) {
            self.heals += 1;
        }
        fn finished(&mut self, _: u64, _: u64) {
            self.finished += 1;
        }
    }

    #[test]
    fn tx_fact_accessors() {
        let fact = TxFact {
            start: 10,
            end: 110,
            lanes: 0b1011,
            hops: 3,
            src: NodeId(0),
            dst: NodeId(3),
            marked: false,
        };
        assert_eq!(fact.lane_count(), 3);
        assert_eq!(fact.span(), 100);
    }

    #[test]
    fn pair_composition_forwards_every_fact_to_both() {
        let mut pair = (Counter::default(), Counter::default());
        pair.offered(5, NodeId(0));
        pair.admitted(5, 0, NodeId(0));
        let fact = TxFact {
            start: 5,
            end: 15,
            lanes: 1,
            hops: 2,
            src: NodeId(0),
            dst: NodeId(3),
            marked: false,
        };
        pair.started(fact);
        pair.completed(fact);
        pair.retired(&record(5, 15), 64.0, 2);
        pair.dropped(crate::fault::DropFact {
            start: 5,
            end: 15,
            lanes: 1,
            hops: 2,
            src: NodeId(0),
            dst: NodeId(3),
            bits: 64.0,
            cause: crate::fault::FaultCause::Corrupt,
            attempt: 1,
        });
        pair.lost(&record(5, 15), 64.0, 2);
        pair.recovered(&record(5, 15), 2, 10);
        pair.lane_event(7, 0, true);
        pair.heal(HealFact {
            at: 7,
            lane: 0,
            policy: onoc_wa::HealPolicy::RePackStrict,
            affected: 1,
            moved: 1,
            shared: 0,
            restarted: 0,
            stall_cycles: 0,
            feasible: true,
        });
        pair.finished(15, 5);
        assert_eq!(pair.0, pair.1);
        assert_eq!(pair.0.offered, 1);
        assert_eq!(pair.0.admitted, 1);
        assert_eq!(pair.0.retired, 1);
        assert_eq!(pair.0.dropped, 1);
        assert_eq!(pair.0.lost, 1);
        assert_eq!(pair.0.recovered, 1);
        assert_eq!(pair.0.lane_events, 1);
        assert_eq!(pair.0.heals, 1);
        assert_eq!(pair.0.bits, 64.0);
        assert_eq!(pair.0.finished, 1);
    }

    #[test]
    fn mut_ref_forwarding_reaches_the_owner() {
        // Drive the `&mut P` impl explicitly (a plain method call would
        // auto-deref to `Counter`'s own impl and bypass the forwarding).
        fn run<P: SimProbe>(mut probe: P) {
            probe.admitted(0, 0, NodeId(0));
            probe.finished(0, 0);
        }
        let mut counter = Counter::default();
        run(&mut counter);
        assert_eq!(counter.admitted, 1);
        assert_eq!(counter.finished, 1);
    }

    #[test]
    fn report_probe_folds_and_optionally_retains() {
        for (retain, expect_records) in [(true, 2usize), (false, 0)] {
            let mut probe = ReportProbe::new(retain);
            probe.retired(&record(0, 100), 64.0, 2);
            probe.retired(&record(10, 120), 32.0, 2);
            assert_eq!(probe.records.len(), expect_records);
            assert_eq!(probe.latency_hist.count(), 2);
            assert_eq!(probe.latency_hist.max(), 110);
            assert_eq!(probe.delivered_bits, 96.0);
        }
    }
}
