//! The injection-policy layer of the event core: how sources react (or
//! don't) to network backpressure, and the wavelength arbiter both
//! runtime simulators share.
//!
//! The open-loop engine historically hard-wired open-loop semantics:
//! every [`TrafficEvent`](crate::TrafficEvent) entered the network
//! interface at its offered time and queues grew without bound past
//! saturation. This module factors the injection decision out into an
//! [`InjectionMode`] — a policy over one shared event core — so the same
//! engine measures both regimes:
//!
//! * [`InjectionMode::Open`] — the classical open loop: offered time is
//!   admission time.
//! * [`InjectionMode::Credit`] — credit-based throttling: each source
//!   owns a window of `window` credits, admission consumes one, delivery
//!   of one of the source's messages returns one. A source with an empty
//!   credit pool *stalls* further messages at the source (recorded as
//!   stall time, separate from network-interface queueing), so in-flight
//!   traffic per source is bounded and sustained operating points near
//!   saturation are measurable.
//! * [`InjectionMode::Ecn`] — ECN-style AIMD: each source carries an
//!   offered-rate factor in `[ECN_MIN_FACTOR, 1]`. Messages whose
//!   transmission starts while ring occupancy exceeds `threshold` are
//!   *marked*; on delivery of a marked message the source halves its
//!   factor (multiplicative decrease), on an unmarked delivery it adds
//!   [`InjectionMode::ECN_ADDITIVE_STEP`] back (additive increase). A
//!   factor below 1 stretches the source's offered inter-injection gaps
//!   by `1/factor`, pacing admissions without a hard window.
//!
//! Both closed-loop modes gate *admission into the network interface*;
//! wavelength arbitration below the gate (dynamic claim/release or the
//! static flow-map checker) is unchanged and shared with the open loop.

use std::collections::VecDeque;

use onoc_photonics::WavelengthId;
use onoc_topology::RingPath;

/// How sources inject: open loop, or one of two closed-loop policies.
///
/// See the module docs for the exact semantics of each variant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InjectionMode {
    /// Pure open loop: admission time equals offered time.
    Open,
    /// Credit-based closed loop with a per-source window.
    Credit {
        /// Maximum in-flight (admitted but undelivered) messages per
        /// source. Must be at least 1.
        window: usize,
    },
    /// ECN-style AIMD closed loop.
    Ecn {
        /// Ring-occupancy fraction in `(0, 1]` above which a starting
        /// transmission is congestion-marked.
        threshold: f64,
    },
}

impl InjectionMode {
    /// Floor of the ECN rate factor (a source never throttles below
    /// 1/64 of its offered rate, so recovery always restarts).
    pub const ECN_MIN_FACTOR: f64 = 1.0 / 64.0;

    /// Additive-increase step applied to the rate factor on every
    /// unmarked delivery.
    pub const ECN_ADDITIVE_STEP: f64 = 0.05;

    /// The machine-friendly name (`open` / `credit` / `ecn`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            InjectionMode::Open => "open",
            InjectionMode::Credit { .. } => "credit",
            InjectionMode::Ecn { .. } => "ecn",
        }
    }

    /// `true` for the backpressure-aware modes.
    #[must_use]
    pub fn is_closed_loop(self) -> bool {
        !matches!(self, InjectionMode::Open)
    }

    /// Panics on degenerate parameters (zero credit window, ECN
    /// threshold outside `(0, 1]`).
    pub(crate) fn validate(self) {
        match self {
            InjectionMode::Open => {}
            InjectionMode::Credit { window } => {
                assert!(window >= 1, "credit window must be at least 1");
            }
            InjectionMode::Ecn { threshold } => {
                assert!(
                    threshold.is_finite() && threshold > 0.0 && threshold <= 1.0,
                    "ECN occupancy threshold must be in (0, 1], got {threshold}"
                );
            }
        }
    }
}

impl core::fmt::Display for InjectionMode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            InjectionMode::Open => write!(f, "open"),
            InjectionMode::Credit { window } => write!(f, "credit(window {window})"),
            InjectionMode::Ecn { threshold } => write!(f, "ecn(threshold {threshold})"),
        }
    }
}

/// The runtime wavelength arbiter shared by
/// [`DynamicSimulator`](crate::DynamicSimulator) and the open/closed-loop
/// engine: per-directed-segment busy masks with greedy lowest-index
/// claims.
///
/// Segments index into the busy table through
/// [`DirectedSegment::segment_index`], and the allocation-free mask API
/// ([`LaneArbiter::claim_mask`] / [`LaneArbiter::release_mask`]) is the
/// hot path; the `Vec<WavelengthId>` wrappers exist for callers that
/// expose granted lane lists.
#[derive(Debug, Clone)]
pub(crate) struct LaneArbiter {
    wavelengths: usize,
    /// Busy mask per directed segment, dense-indexed.
    busy: Vec<u128>,
}

impl LaneArbiter {
    /// A fully idle arbiter over `2 * nodes` directed segments.
    pub(crate) fn new(nodes: usize, wavelengths: usize) -> Self {
        debug_assert!((1..=128).contains(&wavelengths));
        Self {
            wavelengths,
            busy: vec![0u128; onoc_topology::segment_count(nodes)],
        }
    }

    /// Resets to fully idle, optionally for a different geometry, keeping
    /// the table allocation when it already fits.
    pub(crate) fn reset(&mut self, nodes: usize, wavelengths: usize) {
        debug_assert!((1..=128).contains(&wavelengths));
        self.wavelengths = wavelengths;
        self.busy.clear();
        self.busy.resize(onoc_topology::segment_count(nodes), 0);
    }

    fn all_mask(&self) -> u128 {
        if self.wavelengths == 128 {
            u128::MAX
        } else {
            (1u128 << self.wavelengths) - 1
        }
    }

    /// Claims up to `want` lanes free on *every* dense-indexed segment of
    /// `segs` (lowest indices first) as a bit mask, or `None` if not even
    /// one lane is free. Allocation-free — this is the hot path; callers
    /// pass precomputed flat route slices.
    pub(crate) fn claim_mask(&mut self, segs: &[u16], want: usize) -> Option<u128> {
        let mut free = self.all_mask();
        for &seg in segs {
            free &= !self.busy[seg as usize];
            if free == 0 {
                return None;
            }
        }
        let mut mask = 0u128;
        for _ in 0..want {
            if free == 0 {
                break;
            }
            let lowest = free & free.wrapping_neg();
            mask |= lowest;
            free ^= lowest;
        }
        for &seg in segs {
            self.busy[seg as usize] |= mask;
        }
        Some(mask)
    }

    /// Releases a claim made by [`LaneArbiter::claim_mask`].
    pub(crate) fn release_mask(&mut self, segs: &[u16], mask: u128) {
        for &seg in segs {
            self.busy[seg as usize] &= !mask;
        }
    }

    /// Claims up to `want` lanes free on *every* segment of `path`
    /// (lowest indices first), or `None` if not even one lane is free.
    pub(crate) fn claim(&mut self, path: &RingPath, want: usize) -> Option<Vec<WavelengthId>> {
        let mut free = self.all_mask();
        for seg in path.segments() {
            free &= !self.busy[seg.segment_index()];
            if free == 0 {
                return None;
            }
        }
        let mut lanes = Vec::with_capacity(want);
        let mut mask = 0u128;
        for _ in 0..want {
            if free == 0 {
                break;
            }
            let lowest = free & free.wrapping_neg();
            lanes.push(WavelengthId(lowest.trailing_zeros() as usize));
            mask |= lowest;
            free ^= lowest;
        }
        for seg in path.segments() {
            self.busy[seg.segment_index()] |= mask;
        }
        Some(lanes)
    }

    /// Releases a claim made by [`LaneArbiter::claim`].
    pub(crate) fn release(&mut self, path: &RingPath, lanes: &[WavelengthId]) {
        let mask = lanes.iter().fold(0u128, |m, ch| m | (1 << ch.index()));
        for seg in path.segments() {
            self.busy[seg.segment_index()] &= !mask;
        }
    }
}

/// Per-source injection state machine: the offered FIFO in front of the
/// network interface, the credit pool, and the AIMD rate factor.
///
/// One gate per ONI; the engine calls [`SourceGate::note_admit`] /
/// [`SourceGate::note_delivery`] at the corresponding events and reads
/// the admission verdict through the engine's `drain_gate` loop.
#[derive(Debug, Clone)]
pub(crate) struct SourceGate {
    /// Messages offered by the source but not yet admitted, in offered
    /// order.
    pub(crate) offered: VecDeque<usize>,
    /// Admitted but undelivered messages (the consumed credits).
    pub(crate) in_flight: usize,
    /// ECN rate factor in `[ECN_MIN_FACTOR, 1]`.
    pub(crate) factor: f64,
    /// Cycle of the most recent admission (meaningful once
    /// `has_admitted`).
    pub(crate) last_admit: u64,
    /// Whether any message was admitted yet (disambiguates
    /// `last_admit == 0`).
    pub(crate) has_admitted: bool,
    /// Offered time of the most recent offer, for gap bookkeeping.
    pub(crate) last_offered: Option<u64>,
    /// Earliest pending gate wake-up, to avoid duplicate events.
    pub(crate) wake_at: Option<u64>,
    /// Time of the last `in_flight` change (credit-occupancy integral).
    credit_changed_at: u64,
    /// Accumulated `in_flight × cycles` (credit-occupancy integral).
    credit_cycles: f64,
}

impl SourceGate {
    pub(crate) fn new() -> Self {
        Self {
            offered: VecDeque::new(),
            in_flight: 0,
            factor: 1.0,
            last_admit: 0,
            has_admitted: false,
            last_offered: None,
            wake_at: None,
            credit_changed_at: 0,
            credit_cycles: 0.0,
        }
    }

    /// Resets to the pristine state, keeping the offered queue's
    /// allocation for scratch reuse.
    pub(crate) fn reset(&mut self) {
        self.offered.clear();
        self.in_flight = 0;
        self.factor = 1.0;
        self.last_admit = 0;
        self.has_admitted = false;
        self.last_offered = None;
        self.wake_at = None;
        self.credit_changed_at = 0;
        self.credit_cycles = 0.0;
    }

    /// Offered-time gap to the previous offer from this source (0 for
    /// the first message), updating the bookkeeping.
    pub(crate) fn offered_gap(&mut self, time: u64) -> u64 {
        let gap = match self.last_offered {
            None => 0,
            Some(prev) => time.saturating_sub(prev),
        };
        self.last_offered = Some(time);
        gap
    }

    /// Earliest admission cycle for a message with offered time `time`
    /// and offered gap `gap` under the ECN pacing rule.
    ///
    /// A throttled source (`factor < 1`) paces even same-cycle bursts:
    /// the offered gap counts as at least one cycle, so a burst admits
    /// at `1/factor`-cycle spacing instead of bypassing congestion
    /// control with `gap == 0`. An unthrottled source keeps the offered
    /// timing exactly.
    pub(crate) fn ecn_allowed(&self, time: u64, gap: u64) -> u64 {
        if !self.has_admitted {
            return time;
        }
        #[allow(
            clippy::cast_precision_loss,
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss
        )]
        let scaled = if self.factor >= 1.0 {
            gap
        } else {
            (gap.max(1) as f64 / self.factor).ceil() as u64
        };
        time.max(self.last_admit.saturating_add(scaled))
    }

    fn integrate(&mut self, now: u64) {
        #[allow(clippy::cast_precision_loss)]
        {
            self.credit_cycles += self.in_flight as f64 * (now - self.credit_changed_at) as f64;
        }
        self.credit_changed_at = now;
    }

    /// Records an admission at `now`: one credit consumed.
    pub(crate) fn note_admit(&mut self, now: u64) {
        self.integrate(now);
        self.in_flight += 1;
        self.last_admit = now;
        self.has_admitted = true;
    }

    /// Records a delivery at `now`: the credit returns and, under ECN,
    /// the AIMD factor reacts to the congestion mark.
    pub(crate) fn note_delivery(&mut self, now: u64, mode: InjectionMode, marked: bool) {
        self.integrate(now);
        debug_assert!(self.in_flight > 0, "delivery without admission");
        self.in_flight -= 1;
        if matches!(mode, InjectionMode::Ecn { .. }) {
            if marked {
                self.factor = (self.factor * 0.5).max(InjectionMode::ECN_MIN_FACTOR);
            } else {
                self.factor = (self.factor + InjectionMode::ECN_ADDITIVE_STEP).min(1.0);
            }
        }
    }

    /// The credit-occupancy integral (`in_flight × cycles`) over the run.
    pub(crate) fn credit_cycles(&self) -> f64 {
        debug_assert_eq!(self.in_flight, 0, "finalise after the ring drained");
        self.credit_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onoc_topology::{NodeId, RingTopology};

    #[test]
    fn mode_names_and_closed_loop_flags() {
        assert_eq!(InjectionMode::Open.name(), "open");
        assert_eq!(InjectionMode::Credit { window: 4 }.name(), "credit");
        assert_eq!(InjectionMode::Ecn { threshold: 0.5 }.name(), "ecn");
        assert!(!InjectionMode::Open.is_closed_loop());
        assert!(InjectionMode::Credit { window: 1 }.is_closed_loop());
        assert!(InjectionMode::Ecn { threshold: 0.5 }.is_closed_loop());
    }

    #[test]
    #[should_panic(expected = "credit window")]
    fn zero_credit_window_is_rejected() {
        InjectionMode::Credit { window: 0 }.validate();
    }

    #[test]
    #[should_panic(expected = "occupancy threshold")]
    fn out_of_range_ecn_threshold_is_rejected() {
        InjectionMode::Ecn { threshold: 1.5 }.validate();
    }

    #[test]
    fn arbiter_claims_and_releases_lowest_lanes() {
        let ring = RingTopology::new(8);
        let path = RingPath::new(
            &ring,
            NodeId(0),
            NodeId(2),
            ring.shortest_direction(NodeId(0), NodeId(2)),
        );
        let mut arb = LaneArbiter::new(8, 4);
        let a = arb.claim(&path, 2).unwrap();
        assert_eq!(a, vec![WavelengthId(0), WavelengthId(1)]);
        let b = arb.claim(&path, 4).unwrap();
        assert_eq!(b, vec![WavelengthId(2), WavelengthId(3)]);
        assert!(arb.claim(&path, 1).is_none(), "comb exhausted on the path");
        arb.release(&path, &a);
        let c = arb.claim(&path, 1).unwrap();
        assert_eq!(c, vec![WavelengthId(0)]);
    }

    #[test]
    fn opposite_directions_do_not_share_masks() {
        let ring = RingTopology::new(8);
        let cw = RingPath::new(
            &ring,
            NodeId(0),
            NodeId(1),
            onoc_topology::Direction::Clockwise,
        );
        let ccw = RingPath::new(
            &ring,
            NodeId(1),
            NodeId(0),
            onoc_topology::Direction::CounterClockwise,
        );
        let mut arb = LaneArbiter::new(8, 1);
        assert!(arb.claim(&cw, 1).is_some());
        assert!(arb.claim(&ccw, 1).is_some());
    }

    #[test]
    fn gate_aimd_halves_and_recovers() {
        let mode = InjectionMode::Ecn { threshold: 0.5 };
        let mut gate = SourceGate::new();
        gate.note_admit(0);
        gate.note_delivery(10, mode, true);
        assert!((gate.factor - 0.5).abs() < 1e-12);
        gate.note_admit(10);
        gate.note_delivery(20, mode, false);
        assert!((gate.factor - 0.55).abs() < 1e-12);
        for k in 0..64 {
            gate.note_admit(30 + k);
            gate.note_delivery(31 + k, mode, true);
        }
        assert!(gate.factor >= InjectionMode::ECN_MIN_FACTOR);
    }

    #[test]
    fn gate_pacing_scales_offered_gaps() {
        let mut gate = SourceGate::new();
        assert_eq!(gate.offered_gap(100), 0, "first offer has no gap");
        assert_eq!(gate.ecn_allowed(100, 0), 100, "first message never paces");
        gate.note_admit(100);
        let gap = gate.offered_gap(110);
        assert_eq!(gap, 10);
        assert_eq!(
            gate.ecn_allowed(110, gap),
            110,
            "factor 1 keeps the offered time"
        );
        gate.factor = 0.5;
        assert_eq!(
            gate.ecn_allowed(110, gap),
            120,
            "halved rate doubles the gap"
        );
    }

    #[test]
    fn throttled_gate_paces_same_cycle_bursts() {
        // gap == 0 must not bypass a throttled source's pacing.
        let mut gate = SourceGate::new();
        gate.offered_gap(100);
        gate.note_admit(100);
        let gap = gate.offered_gap(100); // second offer in the same cycle
        assert_eq!(gap, 0);
        assert_eq!(gate.ecn_allowed(100, gap), 100, "unthrottled bursts pass");
        gate.factor = 0.25;
        assert_eq!(
            gate.ecn_allowed(100, gap),
            104,
            "quartered rate spaces by 4"
        );
    }

    #[test]
    fn credit_integral_accumulates_in_flight_cycles() {
        let mut gate = SourceGate::new();
        gate.note_admit(0);
        gate.note_admit(10); // 1 credit busy for 10 cycles
        gate.note_delivery(30, InjectionMode::Credit { window: 2 }, false); // 2 busy for 20
        gate.note_delivery(50, InjectionMode::Credit { window: 2 }, false); // 1 busy for 20
        assert!((gate.credit_cycles() - (10.0 + 40.0 + 20.0)).abs() < 1e-9);
    }
}
