//! The injection-policy layer of the event core: how sources react (or
//! don't) to network backpressure, and the wavelength arbiter both
//! runtime simulators share.
//!
//! The open-loop engine historically hard-wired open-loop semantics:
//! every [`TrafficEvent`](crate::TrafficEvent) entered the network
//! interface at its offered time and queues grew without bound past
//! saturation. This module factors the injection decision out into an
//! [`InjectionMode`] — a policy over one shared event core — so the same
//! engine measures both regimes:
//!
//! * [`InjectionMode::Open`] — the classical open loop: offered time is
//!   admission time.
//! * [`InjectionMode::Credit`] — credit-based throttling: each source
//!   owns a window of `window` credits, admission consumes one, delivery
//!   of one of the source's messages returns one. A source with an empty
//!   credit pool *stalls* further messages at the source (recorded as
//!   stall time, separate from network-interface queueing), so in-flight
//!   traffic per source is bounded and sustained operating points near
//!   saturation are measurable.
//! * [`InjectionMode::Ecn`] — ECN-style AIMD: each source carries an
//!   offered-rate factor in `[ECN_MIN_FACTOR, 1]`. Messages whose
//!   transmission starts while ring occupancy exceeds `threshold` are
//!   *marked*; on delivery of a marked message the source halves its
//!   factor (multiplicative decrease), on an unmarked delivery it adds
//!   [`InjectionMode::ECN_ADDITIVE_STEP`] back (additive increase). A
//!   factor below 1 stretches the source's offered inter-injection gaps
//!   by `1/factor`, pacing admissions without a hard window.
//!
//! Both closed-loop modes gate *admission into the network interface*;
//! wavelength arbitration below the gate (dynamic claim/release or the
//! static flow-map checker) is unchanged and shared with the open loop.

use std::collections::VecDeque;

use onoc_photonics::WavelengthId;
use onoc_topology::RingPath;

/// How sources inject: open loop, or one of two closed-loop policies.
///
/// See the module docs for the exact semantics of each variant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InjectionMode {
    /// Pure open loop: admission time equals offered time.
    Open,
    /// Credit-based closed loop with a per-source window.
    Credit {
        /// Maximum in-flight (admitted but undelivered) messages per
        /// source. Must be at least 1.
        window: usize,
    },
    /// Credit-based closed loop with per-destination credit pools: each
    /// source owns `window` credits *per destination*, so one congested
    /// destination throttles only the flows targeting it rather than
    /// the source's whole output. The source FIFO is still drained in
    /// offered order, so a blocked head holds later messages to other
    /// destinations back (head-of-line blocking is part of the model).
    CreditPerDst {
        /// Maximum in-flight messages per `(source, destination)` pair.
        /// Must be at least 1.
        window: usize,
    },
    /// ECN-style AIMD closed loop.
    Ecn {
        /// Ring-occupancy fraction in `(0, 1]` above which a starting
        /// transmission is congestion-marked.
        threshold: f64,
    },
}

impl InjectionMode {
    /// Floor of the ECN rate factor (a source never throttles below
    /// 1/64 of its offered rate, so recovery always restarts).
    pub const ECN_MIN_FACTOR: f64 = 1.0 / 64.0;

    /// Additive-increase step applied to the rate factor on every
    /// unmarked delivery.
    pub const ECN_ADDITIVE_STEP: f64 = 0.05;

    /// The machine-friendly name (`open` / `credit` / `credit-dst` /
    /// `ecn`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            InjectionMode::Open => "open",
            InjectionMode::Credit { .. } => "credit",
            InjectionMode::CreditPerDst { .. } => "credit-dst",
            InjectionMode::Ecn { .. } => "ecn",
        }
    }

    /// `true` for the backpressure-aware modes.
    #[must_use]
    pub fn is_closed_loop(self) -> bool {
        !matches!(self, InjectionMode::Open)
    }

    /// Panics on degenerate parameters (zero credit window, ECN
    /// threshold outside `(0, 1]`).
    pub(crate) fn validate(self) {
        match self {
            InjectionMode::Open => {}
            InjectionMode::Credit { window } | InjectionMode::CreditPerDst { window } => {
                assert!(window >= 1, "credit window must be at least 1");
            }
            InjectionMode::Ecn { threshold } => {
                assert!(
                    threshold.is_finite() && threshold > 0.0 && threshold <= 1.0,
                    "ECN occupancy threshold must be in (0, 1], got {threshold}"
                );
            }
        }
    }
}

impl core::fmt::Display for InjectionMode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            InjectionMode::Open => write!(f, "open"),
            InjectionMode::Credit { window } => write!(f, "credit(window {window})"),
            InjectionMode::CreditPerDst { window } => write!(f, "credit-dst(window {window})"),
            InjectionMode::Ecn { threshold } => write!(f, "ecn(threshold {threshold})"),
        }
    }
}

/// The AIMD constants of the ECN closed loop, configurable per run
/// (defaults reproduce the historical hard-wired behaviour).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AimdParams {
    /// Additive-increase step applied to the rate factor on every
    /// unmarked delivery. Must be in `(0, 1]`.
    pub additive_step: f64,
    /// Multiplicative-decrease factor applied on every marked delivery.
    /// Must be in `(0, 1)`.
    pub md_factor: f64,
    /// Floor of the rate factor, so recovery always restarts. Must be
    /// in `(0, 1]`.
    pub min_factor: f64,
}

impl Default for AimdParams {
    fn default() -> Self {
        Self {
            additive_step: InjectionMode::ECN_ADDITIVE_STEP,
            md_factor: 0.5,
            min_factor: InjectionMode::ECN_MIN_FACTOR,
        }
    }
}

impl AimdParams {
    /// Panics on parameters outside their documented ranges.
    ///
    /// # Panics
    ///
    /// Panics when `additive_step` is outside `(0, 1]`, `md_factor`
    /// outside `(0, 1)`, or `min_factor` outside `(0, 1]`.
    pub fn validate(self) {
        assert!(
            self.additive_step.is_finite() && self.additive_step > 0.0 && self.additive_step <= 1.0,
            "AIMD additive step must be in (0, 1], got {}",
            self.additive_step
        );
        assert!(
            self.md_factor.is_finite() && self.md_factor > 0.0 && self.md_factor < 1.0,
            "AIMD multiplicative-decrease factor must be in (0, 1), got {}",
            self.md_factor
        );
        assert!(
            self.min_factor.is_finite() && self.min_factor > 0.0 && self.min_factor <= 1.0,
            "AIMD minimum factor must be in (0, 1], got {}",
            self.min_factor
        );
    }
}

/// The runtime wavelength arbiter shared by
/// [`DynamicSimulator`](crate::DynamicSimulator) and the open/closed-loop
/// engine: per-directed-segment busy masks with greedy lowest-index
/// claims.
///
/// Segments index into the busy table through
/// [`DirectedSegment::segment_index`], and the allocation-free mask API
/// ([`LaneArbiter::claim_mask`] / [`LaneArbiter::release_mask`]) is the
/// hot path; the `Vec<WavelengthId>` wrappers exist for callers that
/// expose granted lane lists.
#[derive(Debug, Clone)]
pub(crate) struct LaneArbiter {
    wavelengths: usize,
    /// Busy mask per directed segment, dense-indexed.
    busy: Vec<u128>,
    /// Lanes currently knocked out by the fault layer (ring-wide): the
    /// claim paths never grant them, while releases stay mask-based so
    /// in-flight claims drain normally when a lane dies under them.
    down: u128,
}

impl LaneArbiter {
    /// A fully idle arbiter over `2 * nodes` directed segments.
    pub(crate) fn new(nodes: usize, wavelengths: usize) -> Self {
        debug_assert!((1..=128).contains(&wavelengths));
        Self {
            wavelengths,
            busy: vec![0u128; onoc_topology::segment_count(nodes)],
            down: 0,
        }
    }

    /// Resets to fully idle, optionally for a different geometry, keeping
    /// the table allocation when it already fits.
    pub(crate) fn reset(&mut self, nodes: usize, wavelengths: usize) {
        debug_assert!((1..=128).contains(&wavelengths));
        self.wavelengths = wavelengths;
        self.busy.clear();
        self.busy.resize(onoc_topology::segment_count(nodes), 0);
        self.down = 0;
    }

    /// Marks one lane down (no new grants) or back up.
    pub(crate) fn set_down(&mut self, lane: usize, down: bool) {
        debug_assert!(lane < self.wavelengths);
        if down {
            self.down |= 1u128 << lane;
        } else {
            self.down &= !(1u128 << lane);
        }
    }

    fn all_mask(&self) -> u128 {
        if self.wavelengths == 128 {
            u128::MAX
        } else {
            (1u128 << self.wavelengths) - 1
        }
    }

    /// Claims up to `want` lanes free on *every* dense-indexed segment of
    /// `segs` (lowest indices first) as a bit mask, or `None` if not even
    /// one lane is free. Allocation-free — this is the hot path; callers
    /// pass precomputed flat route slices.
    pub(crate) fn claim_mask(&mut self, segs: &[u16], want: usize) -> Option<u128> {
        let mut free = self.all_mask() & !self.down;
        if free == 0 {
            return None;
        }
        for &seg in segs {
            free &= !self.busy[seg as usize];
            if free == 0 {
                return None;
            }
        }
        let mut mask = 0u128;
        for _ in 0..want {
            if free == 0 {
                break;
            }
            let lowest = free & free.wrapping_neg();
            mask |= lowest;
            free ^= lowest;
        }
        for &seg in segs {
            self.busy[seg as usize] |= mask;
        }
        Some(mask)
    }

    /// Releases a claim made by [`LaneArbiter::claim_mask`].
    pub(crate) fn release_mask(&mut self, segs: &[u16], mask: u128) {
        for &seg in segs {
            self.busy[seg as usize] &= !mask;
        }
    }

    /// Claims up to `want` lanes free on *every* segment of `path`
    /// (lowest indices first), or `None` if not even one lane is free.
    pub(crate) fn claim(&mut self, path: &RingPath, want: usize) -> Option<Vec<WavelengthId>> {
        let mut free = self.all_mask() & !self.down;
        if free == 0 {
            return None;
        }
        for seg in path.segments() {
            free &= !self.busy[seg.segment_index()];
            if free == 0 {
                return None;
            }
        }
        let mut lanes = Vec::with_capacity(want);
        let mut mask = 0u128;
        for _ in 0..want {
            if free == 0 {
                break;
            }
            let lowest = free & free.wrapping_neg();
            lanes.push(WavelengthId(lowest.trailing_zeros() as usize));
            mask |= lowest;
            free ^= lowest;
        }
        for seg in path.segments() {
            self.busy[seg.segment_index()] |= mask;
        }
        Some(lanes)
    }

    /// Releases a claim made by [`LaneArbiter::claim`].
    pub(crate) fn release(&mut self, path: &RingPath, lanes: &[WavelengthId]) {
        let mask = lanes.iter().fold(0u128, |m, ch| m | (1 << ch.index()));
        for seg in path.segments() {
            self.busy[seg.segment_index()] &= !mask;
        }
    }
}

/// Per-source injection state machine: the offered FIFO in front of the
/// network interface, the credit pool, and the AIMD rate factor.
///
/// One gate per ONI; the engine calls [`SourceGate::note_admit`] /
/// [`SourceGate::note_delivery`] at the corresponding events and reads
/// the admission verdict through the engine's `drain_gate` loop.
#[derive(Debug, Clone)]
pub(crate) struct SourceGate {
    /// Messages offered by the source but not yet admitted, in offered
    /// order.
    pub(crate) offered: VecDeque<usize>,
    /// Admitted but undelivered messages (the consumed credits).
    pub(crate) in_flight: usize,
    /// ECN rate factor in `[ECN_MIN_FACTOR, 1]`.
    pub(crate) factor: f64,
    /// Cycle of the most recent admission (meaningful once
    /// `has_admitted`).
    pub(crate) last_admit: u64,
    /// Whether any message was admitted yet (disambiguates
    /// `last_admit == 0`).
    pub(crate) has_admitted: bool,
    /// Offered time of the most recent offer, for gap bookkeeping.
    pub(crate) last_offered: Option<u64>,
    /// Earliest pending gate wake-up, to avoid duplicate events.
    pub(crate) wake_at: Option<u64>,
    /// Per-destination in-flight counts, sized lazily by the engine and
    /// used only under [`InjectionMode::CreditPerDst`].
    pub(crate) in_flight_by_dst: Vec<u32>,
    /// Time of the last `in_flight` change (credit-occupancy integral).
    credit_changed_at: u64,
    /// Accumulated `in_flight × cycles` (credit-occupancy integral).
    credit_cycles: f64,
}

impl SourceGate {
    pub(crate) fn new() -> Self {
        Self {
            offered: VecDeque::new(),
            in_flight: 0,
            factor: 1.0,
            last_admit: 0,
            has_admitted: false,
            last_offered: None,
            wake_at: None,
            in_flight_by_dst: Vec::new(),
            credit_changed_at: 0,
            credit_cycles: 0.0,
        }
    }

    /// Resets to the pristine state, keeping the offered queue's
    /// allocation for scratch reuse.
    pub(crate) fn reset(&mut self) {
        self.offered.clear();
        self.in_flight = 0;
        self.factor = 1.0;
        self.last_admit = 0;
        self.has_admitted = false;
        self.last_offered = None;
        self.wake_at = None;
        self.in_flight_by_dst.clear();
        self.credit_changed_at = 0;
        self.credit_cycles = 0.0;
    }

    /// Sizes the per-destination pools (all zero), for
    /// [`InjectionMode::CreditPerDst`] runs.
    pub(crate) fn ensure_dst_pools(&mut self, nodes: usize) {
        self.in_flight_by_dst.clear();
        self.in_flight_by_dst.resize(nodes, 0);
    }

    /// Offered-time gap to the previous offer from this source (0 for
    /// the first message), updating the bookkeeping.
    pub(crate) fn offered_gap(&mut self, time: u64) -> u64 {
        let gap = match self.last_offered {
            None => 0,
            Some(prev) => time.saturating_sub(prev),
        };
        self.last_offered = Some(time);
        gap
    }

    /// Earliest admission cycle for a message with offered time `time`
    /// and offered gap `gap` under the ECN pacing rule.
    ///
    /// A throttled source (`factor < 1`) paces even same-cycle bursts:
    /// the offered gap counts as at least one cycle, so a burst admits
    /// at `1/factor`-cycle spacing instead of bypassing congestion
    /// control with `gap == 0`. An unthrottled source keeps the offered
    /// timing exactly.
    pub(crate) fn ecn_allowed(&self, time: u64, gap: u64) -> u64 {
        if !self.has_admitted {
            return time;
        }
        #[allow(
            clippy::cast_precision_loss,
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss
        )]
        let scaled = if self.factor >= 1.0 {
            gap
        } else {
            (gap.max(1) as f64 / self.factor).ceil() as u64
        };
        time.max(self.last_admit.saturating_add(scaled))
    }

    fn integrate(&mut self, now: u64) {
        #[allow(clippy::cast_precision_loss)]
        {
            self.credit_cycles += self.in_flight as f64 * (now - self.credit_changed_at) as f64;
        }
        self.credit_changed_at = now;
    }

    /// Records an admission at `now`: one credit consumed.
    pub(crate) fn note_admit(&mut self, now: u64) {
        self.integrate(now);
        self.in_flight += 1;
        self.last_admit = now;
        self.has_admitted = true;
    }

    /// Records a delivery at `now`: the credit returns and, under ECN,
    /// the AIMD factor reacts to the congestion mark.
    pub(crate) fn note_delivery(
        &mut self,
        now: u64,
        mode: InjectionMode,
        marked: bool,
        aimd: &AimdParams,
    ) {
        self.integrate(now);
        debug_assert!(self.in_flight > 0, "delivery without admission");
        self.in_flight -= 1;
        if matches!(mode, InjectionMode::Ecn { .. }) {
            if marked {
                self.factor = (self.factor * aimd.md_factor).max(aimd.min_factor);
            } else {
                self.factor = (self.factor + aimd.additive_step).min(1.0);
            }
        }
    }

    /// The credit-occupancy integral (`in_flight × cycles`) over the run.
    pub(crate) fn credit_cycles(&self) -> f64 {
        debug_assert_eq!(self.in_flight, 0, "finalise after the ring drained");
        self.credit_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onoc_topology::{NodeId, RingTopology};

    #[test]
    fn mode_names_and_closed_loop_flags() {
        assert_eq!(InjectionMode::Open.name(), "open");
        assert_eq!(InjectionMode::Credit { window: 4 }.name(), "credit");
        assert_eq!(
            InjectionMode::CreditPerDst { window: 4 }.name(),
            "credit-dst"
        );
        assert_eq!(InjectionMode::Ecn { threshold: 0.5 }.name(), "ecn");
        assert!(!InjectionMode::Open.is_closed_loop());
        assert!(InjectionMode::Credit { window: 1 }.is_closed_loop());
        assert!(InjectionMode::CreditPerDst { window: 1 }.is_closed_loop());
        assert!(InjectionMode::Ecn { threshold: 0.5 }.is_closed_loop());
        assert_eq!(
            InjectionMode::CreditPerDst { window: 3 }.to_string(),
            "credit-dst(window 3)"
        );
    }

    #[test]
    #[should_panic(expected = "credit window")]
    fn zero_per_dst_credit_window_is_rejected() {
        InjectionMode::CreditPerDst { window: 0 }.validate();
    }

    #[test]
    fn aimd_params_default_and_validation() {
        let aimd = AimdParams::default();
        aimd.validate();
        assert!((aimd.additive_step - InjectionMode::ECN_ADDITIVE_STEP).abs() < 1e-12);
        assert!((aimd.md_factor - 0.5).abs() < 1e-12);
        assert!((aimd.min_factor - InjectionMode::ECN_MIN_FACTOR).abs() < 1e-12);
        for bad in [
            AimdParams {
                additive_step: 0.0,
                ..AimdParams::default()
            },
            AimdParams {
                md_factor: 1.0,
                ..AimdParams::default()
            },
            AimdParams {
                min_factor: 0.0,
                ..AimdParams::default()
            },
        ] {
            assert!(std::panic::catch_unwind(move || bad.validate()).is_err());
        }
    }

    #[test]
    #[should_panic(expected = "credit window")]
    fn zero_credit_window_is_rejected() {
        InjectionMode::Credit { window: 0 }.validate();
    }

    #[test]
    #[should_panic(expected = "occupancy threshold")]
    fn out_of_range_ecn_threshold_is_rejected() {
        InjectionMode::Ecn { threshold: 1.5 }.validate();
    }

    #[test]
    fn arbiter_claims_and_releases_lowest_lanes() {
        let ring = RingTopology::new(8);
        let path = RingPath::new(
            &ring,
            NodeId(0),
            NodeId(2),
            ring.shortest_direction(NodeId(0), NodeId(2)),
        );
        let mut arb = LaneArbiter::new(8, 4);
        let a = arb.claim(&path, 2).unwrap();
        assert_eq!(a, vec![WavelengthId(0), WavelengthId(1)]);
        let b = arb.claim(&path, 4).unwrap();
        assert_eq!(b, vec![WavelengthId(2), WavelengthId(3)]);
        assert!(arb.claim(&path, 1).is_none(), "comb exhausted on the path");
        arb.release(&path, &a);
        let c = arb.claim(&path, 1).unwrap();
        assert_eq!(c, vec![WavelengthId(0)]);
    }

    #[test]
    fn opposite_directions_do_not_share_masks() {
        let ring = RingTopology::new(8);
        let cw = RingPath::new(
            &ring,
            NodeId(0),
            NodeId(1),
            onoc_topology::Direction::Clockwise,
        );
        let ccw = RingPath::new(
            &ring,
            NodeId(1),
            NodeId(0),
            onoc_topology::Direction::CounterClockwise,
        );
        let mut arb = LaneArbiter::new(8, 1);
        assert!(arb.claim(&cw, 1).is_some());
        assert!(arb.claim(&ccw, 1).is_some());
    }

    #[test]
    fn gate_aimd_halves_and_recovers() {
        let mode = InjectionMode::Ecn { threshold: 0.5 };
        let aimd = AimdParams::default();
        let mut gate = SourceGate::new();
        gate.note_admit(0);
        gate.note_delivery(10, mode, true, &aimd);
        assert!((gate.factor - 0.5).abs() < 1e-12);
        gate.note_admit(10);
        gate.note_delivery(20, mode, false, &aimd);
        assert!((gate.factor - 0.55).abs() < 1e-12);
        for k in 0..64 {
            gate.note_admit(30 + k);
            gate.note_delivery(31 + k, mode, true, &aimd);
        }
        assert!(gate.factor >= InjectionMode::ECN_MIN_FACTOR);
    }

    #[test]
    fn gate_aimd_respects_custom_constants() {
        let mode = InjectionMode::Ecn { threshold: 0.5 };
        let aimd = AimdParams {
            additive_step: 0.25,
            md_factor: 0.75,
            min_factor: 0.7,
        };
        let mut gate = SourceGate::new();
        gate.note_admit(0);
        gate.note_delivery(10, mode, true, &aimd);
        assert!((gate.factor - 0.75).abs() < 1e-12, "MD factor applies");
        gate.note_admit(10);
        gate.note_delivery(20, mode, true, &aimd);
        assert!((gate.factor - 0.7).abs() < 1e-12, "clamped at the floor");
        gate.note_admit(20);
        gate.note_delivery(30, mode, false, &aimd);
        assert!((gate.factor - 0.95).abs() < 1e-12, "AI step applies");
    }

    #[test]
    fn down_lanes_are_never_granted() {
        let ring = RingTopology::new(8);
        let path = RingPath::new(
            &ring,
            NodeId(0),
            NodeId(2),
            ring.shortest_direction(NodeId(0), NodeId(2)),
        );
        let mut arb = LaneArbiter::new(8, 2);
        arb.set_down(0, true);
        let a = arb.claim(&path, 2).unwrap();
        assert_eq!(a, vec![WavelengthId(1)], "only the healthy lane grants");
        arb.release(&path, &a);
        arb.set_down(1, true);
        assert!(arb.claim(&path, 1).is_none(), "whole comb down");
        arb.set_down(0, false);
        assert_eq!(arb.claim(&path, 1).unwrap(), vec![WavelengthId(0)]);
    }

    #[test]
    fn gate_pacing_scales_offered_gaps() {
        let mut gate = SourceGate::new();
        assert_eq!(gate.offered_gap(100), 0, "first offer has no gap");
        assert_eq!(gate.ecn_allowed(100, 0), 100, "first message never paces");
        gate.note_admit(100);
        let gap = gate.offered_gap(110);
        assert_eq!(gap, 10);
        assert_eq!(
            gate.ecn_allowed(110, gap),
            110,
            "factor 1 keeps the offered time"
        );
        gate.factor = 0.5;
        assert_eq!(
            gate.ecn_allowed(110, gap),
            120,
            "halved rate doubles the gap"
        );
    }

    #[test]
    fn throttled_gate_paces_same_cycle_bursts() {
        // gap == 0 must not bypass a throttled source's pacing.
        let mut gate = SourceGate::new();
        gate.offered_gap(100);
        gate.note_admit(100);
        let gap = gate.offered_gap(100); // second offer in the same cycle
        assert_eq!(gap, 0);
        assert_eq!(gate.ecn_allowed(100, gap), 100, "unthrottled bursts pass");
        gate.factor = 0.25;
        assert_eq!(
            gate.ecn_allowed(100, gap),
            104,
            "quartered rate spaces by 4"
        );
    }

    #[test]
    fn credit_integral_accumulates_in_flight_cycles() {
        let aimd = AimdParams::default();
        let mut gate = SourceGate::new();
        gate.note_admit(0);
        gate.note_admit(10); // 1 credit busy for 10 cycles
        gate.note_delivery(30, InjectionMode::Credit { window: 2 }, false, &aimd); // 2 busy for 20
        gate.note_delivery(50, InjectionMode::Credit { window: 2 }, false, &aimd); // 1 busy for 20
        assert!((gate.credit_cycles() - (10.0 + 40.0 + 20.0)).abs() < 1e-9);
    }

    #[test]
    fn per_dst_pools_size_and_reset() {
        let mut gate = SourceGate::new();
        gate.ensure_dst_pools(4);
        assert_eq!(gate.in_flight_by_dst, vec![0; 4]);
        gate.in_flight_by_dst[2] = 3;
        gate.reset();
        assert!(gate.in_flight_by_dst.is_empty());
    }
}
