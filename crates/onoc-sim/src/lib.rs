//! Cycle-level discrete-event simulator for ring-based WDM optical NoCs.
//!
//! The paper's evaluation (§IV) relies on the *analytic* time model of
//! Eqs. 10–12. This crate provides an independent executable model: an
//! event-driven simulation in integer clock cycles where
//!
//! * a task starts once every incoming communication has fully arrived and
//!   occupies its core for its execution time,
//! * a communication starts when its producer finishes and transmits
//!   `⌈V / (NW·B)⌉` cycles over its allocated wavelengths,
//! * every in-flight communication *occupies* its wavelengths on every
//!   waveguide segment of its path, and the simulator records any two
//!   communications that ever hold the same wavelength on the same directed
//!   segment at the same time.
//!
//! The last point makes the simulator a dynamic checker of the paper's
//! static §III-D constraint: statically valid allocations must produce a
//! conflict-free run (asserted by property tests), while statically
//! *invalid* allocations can be replayed to see whether the conflict is
//! real or merely conservative (the two communications may never overlap in
//! time — see [`SimReport::conflicts`]).
//!
//! The open/closed-loop engine ([`OpenLoopSimulator`]) additionally
//! emits a stream of simulation facts to composable observers
//! ([`SimProbe`]): the full and streaming reports are built on that
//! stream, and [`EnergyProbe`] folds it — with an [`EnergyModel`]
//! derived from the `onoc-photonics` devices — into an end-to-end
//! [`EnergyReport`] (pJ/bit, static/dynamic split, per-lane laser-on
//! time, per-flow attribution). The telemetry probes fold the same
//! stream into a windowed [`TimeSeries`] (throughput, occupancy,
//! stalls, ECN marks, Jain fairness) and a Perfetto-loadable Chrome
//! trace ([`ChromeTraceProbe`]).
//!
//! # Example
//!
//! ```
//! use onoc_app::workloads::paper_mapped_application;
//! use onoc_sim::Simulator;
//! use onoc_units::BitsPerCycle;
//! use onoc_wa::ProblemInstance;
//!
//! let instance = ProblemInstance::paper_with_wavelengths(4);
//! let alloc = instance.allocation_from_counts(&[1; 6]).unwrap();
//! let sim = Simulator::new(instance.app(), &alloc, BitsPerCycle::new(1.0)).unwrap();
//! let report = sim.run().unwrap();
//! assert_eq!(report.makespan, 38_000);           // matches Eqs. 10–12
//! assert!(report.conflicts.is_empty());          // §III-D holds at runtime
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod calendar;
mod dynamic;
mod energy;
mod engine;
mod fault;
mod flows;
mod injection;
mod openloop;
mod pdes;
mod probe;
mod report;
mod telemetry;
mod transport;

pub use dynamic::{DynamicPolicy, DynamicReport, DynamicSimulator};
pub use energy::{EnergyModel, EnergyProbe, EnergyReport, FlowEnergy, MRS_PER_NODE_PER_WAVELENGTH};
pub use engine::{SimError, Simulator};
pub use fault::{
    CorruptionModel, DropFact, FaultCause, FaultPlan, HealFact, LaneFault, ReliabilityProbe,
    ReliabilityReport, StochasticFaults, hash64, message_error_probability, unit_interval,
};
pub use flows::{FlowAllocPolicy, FlowMatrix, FlowSynthesisError, SynthesisSummary};
pub use injection::{AimdParams, InjectionMode};
/// Re-exported so downstream crates can name heal policies without
/// depending on `onoc-wa` directly.
pub use onoc_wa::HealPolicy;
pub use openloop::{
    HealingConfig, OpenLoopError, OpenLoopSimulator, ReportMode, SimScratch, StaticFlowMap,
    TrafficEvent, TrafficSource, WavelengthMode,
};
pub use probe::{NullProbe, SimProbe, TxFact};
pub use report::{
    ChannelConflict, LatencyHistogram, LatencyStats, MsgId, MsgRecord, OpenLoopConflict,
    OpenLoopReport, SimReport,
};
pub use telemetry::{
    ChromeTraceProbe, StreamingTimeSeriesProbe, TimeSeries, TimeSeriesProbe, WindowStats,
};
pub use transport::TransportMode;
