//! The discrete-event engine.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use onoc_app::{CommId, MappedApplication, TaskId};
use onoc_topology::{DirectedSegment, segment_count};
use onoc_units::BitsPerCycle;
use onoc_wa::Allocation;

use crate::{ChannelConflict, SimReport};

/// Errors raised by the simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The allocation shape does not match the application.
    ShapeMismatch {
        /// Communications in the application.
        comms: usize,
        /// Communications encoded in the allocation.
        encoded: usize,
    },
    /// A communication has no wavelengths: its consumer would wait forever.
    Deadlock {
        /// The starved communication.
        comm: CommId,
    },
    /// The task graph is cyclic; some tasks can never start.
    Cyclic,
}

impl core::fmt::Display for SimError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SimError::ShapeMismatch { comms, encoded } => {
                write!(
                    f,
                    "allocation encodes {encoded} communications, application has {comms}"
                )
            }
            SimError::Deadlock { comm } => {
                write!(f, "{comm} has no wavelengths; its consumer never starts")
            }
            SimError::Cyclic => write!(f, "task graph contains a cycle"),
        }
    }
}

impl std::error::Error for SimError {}

/// Event kinds, ordered so ties at one timestamp resolve deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    TaskCompleted(usize),
    CommArrived(usize),
}

/// An event-driven, integer-cycle simulator of one application run under a
/// fixed wavelength allocation.
///
/// See the crate docs for the execution semantics. Propagation latency along
/// the ring is not modelled: light crosses the whole 27 mm ring in well
/// under one clock cycle at 1 GHz, and the paper's analytic model ignores it
/// too.
#[derive(Debug)]
pub struct Simulator<'a> {
    app: &'a MappedApplication,
    allocation: &'a Allocation,
    rate: BitsPerCycle,
}

impl<'a> Simulator<'a> {
    /// Binds a simulator to an application and an allocation.
    ///
    /// Unlike the analytic evaluator, the allocation does **not** need to
    /// satisfy the static §III-D constraints — runtime collisions are
    /// reported in [`SimReport::conflicts`] instead.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if shapes disagree, a communication has no
    /// wavelengths, or the task graph is cyclic.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    pub fn new(
        app: &'a MappedApplication,
        allocation: &'a Allocation,
        rate: BitsPerCycle,
    ) -> Result<Self, SimError> {
        assert!(
            rate.value() > 0.0,
            "per-wavelength data rate must be strictly positive, got {rate}"
        );
        if allocation.comm_count() != app.graph().comm_count() {
            return Err(SimError::ShapeMismatch {
                comms: app.graph().comm_count(),
                encoded: allocation.comm_count(),
            });
        }
        for (id, _) in app.graph().comms() {
            if allocation.channels(id).is_empty() {
                return Err(SimError::Deadlock { comm: id });
            }
        }
        if app.graph().topological_order().is_err() {
            return Err(SimError::Cyclic);
        }
        Ok(Self {
            app,
            allocation,
            rate,
        })
    }

    /// Transmission duration of one communication in whole cycles.
    fn comm_duration(&self, comm: CommId) -> u64 {
        let volume = self.app.graph().comm(comm).volume();
        let lanes = self.allocation.channels(comm).len() as f64;
        (volume.value() / (lanes * self.rate.value())).ceil() as u64
    }

    /// Execution duration of one task in whole cycles.
    fn task_duration(&self, task: TaskId) -> u64 {
        self.app.graph().task(task).execution_time().value().ceil() as u64
    }

    /// Runs the simulation to completion.
    ///
    /// # Errors
    ///
    /// This implementation cannot deadlock for validated inputs, but keeps a
    /// `Result` so richer contention models can refuse to converge.
    pub fn run(&self) -> Result<SimReport, SimError> {
        let graph = self.app.graph();
        let nt = graph.task_count();
        let nl = graph.comm_count();

        let mut pending_inputs: Vec<usize> =
            (0..nt).map(|t| graph.incoming(TaskId(t)).len()).collect();
        let mut task_spans = vec![(0u64, 0u64); nt];
        let mut comm_spans = vec![(0u64, 0u64); nl];
        // Task graphs hold tens of events, so a binary heap stays the
        // right queue here; the calendar queue pays off in the
        // high-rate open-loop engine, not at this scale.
        let mut queue: BinaryHeap<Reverse<(u64, Event)>> = BinaryHeap::new();

        // All dependency-free tasks start at cycle 0.
        for t in 0..nt {
            if pending_inputs[t] == 0 {
                let end = self.task_duration(TaskId(t));
                task_spans[t] = (0, end);
                queue.push(Reverse((end, Event::TaskCompleted(t))));
            }
        }

        let mut makespan = 0u64;
        while let Some(Reverse((now, event))) = queue.pop() {
            makespan = makespan.max(now);
            match event {
                Event::TaskCompleted(t) => {
                    for &c in graph.outgoing(TaskId(t)) {
                        let end = now + self.comm_duration(c);
                        comm_spans[c.0] = (now, end);
                        queue.push(Reverse((end, Event::CommArrived(c.0))));
                    }
                }
                Event::CommArrived(c) => {
                    let dst = graph.comm(CommId(c)).dst();
                    pending_inputs[dst.0] -= 1;
                    if pending_inputs[dst.0] == 0 {
                        let end = now + self.task_duration(dst);
                        task_spans[dst.0] = (now, end);
                        queue.push(Reverse((end, Event::TaskCompleted(dst.0))));
                    }
                }
            }
        }

        debug_assert!(
            pending_inputs.iter().all(|&p| p == 0),
            "validated DAGs always drain"
        );

        let conflicts = self.detect_conflicts(&comm_spans);
        let segment_busy = self.accumulate_utilization(&comm_spans);
        Ok(SimReport {
            makespan,
            task_spans,
            comm_spans,
            conflicts,
            segment_busy,
        })
    }

    /// Cross-checks every pair of communications for simultaneous use of
    /// one wavelength on one directed segment.
    fn detect_conflicts(&self, comm_spans: &[(u64, u64)]) -> Vec<ChannelConflict> {
        let lanes: Vec<Vec<onoc_photonics::WavelengthId>> = (0..self.app.graph().comm_count())
            .map(|k| self.allocation.channels(CommId(k)))
            .collect();
        detect_conflicts_with(self.app, comm_spans, &lanes)
    }

    /// Busy wavelength-cycles per directed segment, accumulated in a flat
    /// dense-indexed table (the dense order *is* the canonical report
    /// order, so no sort is needed). Segments a route crosses are listed
    /// even when their accumulated busy time is zero, matching the old
    /// hash-map behaviour.
    pub(crate) fn accumulate_utilization(
        &self,
        comm_spans: &[(u64, u64)],
    ) -> Vec<(DirectedSegment, u64)> {
        let ring_nodes = self.app.ring().node_count();
        let mut busy = vec![0u64; segment_count(ring_nodes)];
        let mut touched = vec![false; segment_count(ring_nodes)];
        for (k, &(start, end)) in comm_spans.iter().enumerate() {
            let lanes = self.allocation.channels(CommId(k)).len() as u64;
            for segment in self.app.route(CommId(k)).segments() {
                let dense = segment.segment_index();
                busy[dense] += (end - start) * lanes;
                touched[dense] = true;
            }
        }
        busy.iter()
            .enumerate()
            .filter(|&(dense, _)| touched[dense])
            .map(|(dense, &b)| (DirectedSegment::from_segment_index(dense), b))
            .collect()
    }
}

/// Pairwise conflict detection over arbitrary per-communication lane sets
/// (shared by the static and dynamic simulators).
pub(crate) fn detect_conflicts_with(
    app: &MappedApplication,
    comm_spans: &[(u64, u64)],
    lanes: &[Vec<onoc_photonics::WavelengthId>],
) -> Vec<ChannelConflict> {
    let graph = app.graph();
    let mut conflicts = Vec::new();
    for i in 0..graph.comm_count() {
        for j in (i + 1)..graph.comm_count() {
            let (s1, e1) = comm_spans[i];
            let (s2, e2) = comm_spans[j];
            let overlap = (s1.max(s2), e1.min(e2));
            if overlap.0 >= overlap.1 {
                continue; // disjoint in time
            }
            let (pi, pj) = (app.route(CommId(i)), app.route(CommId(j)));
            if !pi.overlaps(pj) {
                continue; // disjoint in space
            }
            let Some(channel) = lanes[i].iter().copied().find(|ch| lanes[j].contains(ch)) else {
                continue; // disjoint in wavelength
            };
            let segment = pj
                .segments()
                .find(|s| pi.contains_segment(*s))
                .expect("overlapping paths share a segment");
            conflicts.push(ChannelConflict {
                segment,
                channel,
                first: if s1 <= s2 { CommId(i) } else { CommId(j) },
                second: if s1 <= s2 { CommId(j) } else { CommId(i) },
                overlap,
            });
        }
    }
    conflicts
}

#[cfg(test)]
mod tests {
    use super::*;
    use onoc_app::Schedule;
    use onoc_wa::ProblemInstance;
    use proptest::prelude::*;

    fn rate() -> BitsPerCycle {
        BitsPerCycle::new(1.0)
    }

    #[test]
    fn paper_anchor_runs_match_analytic_model() {
        let inst4 = ProblemInstance::paper_with_wavelengths(4);
        for counts in [[1usize, 1, 1, 1, 1, 1], [2, 2, 4, 2, 2, 4]] {
            let alloc = inst4.allocation_from_counts(&counts).unwrap();
            let sim = Simulator::new(inst4.app(), &alloc, rate()).unwrap();
            let report = sim.run().unwrap();
            let schedule = Schedule::new(inst4.app().graph(), rate()).unwrap();
            let analytic = schedule.evaluate(&counts).unwrap().makespan;
            assert_eq!(
                report.makespan as f64,
                analytic.value(),
                "counts {counts:?}"
            );
            assert!(report.conflicts.is_empty());
        }
    }

    #[test]
    fn ceiling_effects_round_up() {
        // 8-λ optimum [3,4,8,5,3,8] has fractional comm times (6/5 = 1.2
        // cycles per kb → 1200 cycles exactly… choose counts with true
        // fractions): 6 kb over 7 λ = 857.14… cycles → 858 in the DES.
        let inst = ProblemInstance::paper_with_wavelengths(8);
        let counts = [1usize, 7, 1, 1, 1, 1];
        let alloc = inst.allocation_from_counts(&counts).unwrap();
        let report = Simulator::new(inst.app(), &alloc, rate())
            .unwrap()
            .run()
            .unwrap();
        let analytic = Schedule::new(inst.app().graph(), rate())
            .unwrap()
            .evaluate(&counts)
            .unwrap()
            .makespan;
        assert!(report.makespan as f64 >= analytic.value());
        assert!((report.makespan as f64) < analytic.value() + 6.0);
    }

    #[test]
    fn task_and_comm_spans_are_causal() {
        let inst = ProblemInstance::paper_with_wavelengths(8);
        let alloc = inst.allocation_from_counts(&[2, 3, 2, 2, 2, 2]).unwrap();
        let report = Simulator::new(inst.app(), &alloc, rate())
            .unwrap()
            .run()
            .unwrap();
        let graph = inst.app().graph();
        for (id, c) in graph.comms() {
            let (cs, ce) = report.comm_spans[id.0];
            let (_, src_end) = report.task_spans[c.src().0];
            let (dst_start, _) = report.task_spans[c.dst().0];
            assert_eq!(cs, src_end, "{id} starts when its producer ends");
            assert!(ce <= dst_start, "{id} arrives before its consumer starts");
        }
    }

    #[test]
    fn statically_invalid_allocation_reports_runtime_conflict() {
        // c0 and c1 share segments; give both λ1. They also overlap in time
        // (both start at cycle 5000), so the conflict is real.
        let inst = ProblemInstance::paper_with_wavelengths(4);
        let alloc = onoc_wa::Allocation::from_counts_dense(&[1, 1, 1, 1, 1, 1], 4).unwrap();
        assert!(!inst.checker().is_valid(&alloc));
        let report = Simulator::new(inst.app(), &alloc, rate())
            .unwrap()
            .run()
            .unwrap();
        assert!(
            report
                .conflicts
                .iter()
                .any(|c| (c.first, c.second) == (CommId(0), CommId(1))),
            "expected a c0/c1 collision, got {:?}",
            report.conflicts
        );
    }

    #[test]
    fn temporally_disjoint_violation_is_conflict_free() {
        // The static §III-D rule is purely spatial; the simulator shows it
        // is conservative. Build a chain T0@0 → T1@2 → T2@1 where c1 wraps
        // clockwise around the ring (2 → … → 15 → 0 → 1) and therefore
        // shares segment 0 with c0 (0 → 1 → 2). Statically that forbids a
        // common wavelength — but c1 only ever starts after c0 delivered
        // and T1 computed, so reusing the wavelength is safe at runtime.
        use onoc_app::{MappedApplication, Mapping, RouteStrategy, TaskGraph};
        use onoc_topology::{Direction, NodeId, RingTopology};
        use onoc_units::{Bits, Cycles};

        let mut graph = TaskGraph::new();
        let t0 = graph.add_task("t0", Cycles::new(100.0));
        let t1 = graph.add_task("t1", Cycles::new(100.0));
        let t2 = graph.add_task("t2", Cycles::new(100.0));
        graph.add_comm(t0, t1, Bits::new(500.0)).unwrap();
        graph.add_comm(t1, t2, Bits::new(500.0)).unwrap();
        let mapping = Mapping::new(&graph, vec![NodeId(0), NodeId(2), NodeId(1)]).unwrap();
        let app = MappedApplication::new(
            graph,
            mapping,
            RingTopology::new(16),
            RouteStrategy::Explicit(vec![Direction::Clockwise, Direction::Clockwise]),
        )
        .unwrap();
        assert_eq!(app.overlapping_pairs(), vec![(CommId(0), CommId(1))]);

        let alloc = onoc_wa::Allocation::from_counts_dense(&[1, 1], 4).unwrap();
        // Both communications hold λ1: statically invalid…
        assert!(!onoc_wa::ValidityChecker::new(&app, 4).is_valid(&alloc));
        // …but the run is conflict-free because they never overlap in time.
        let report = Simulator::new(&app, &alloc, rate()).unwrap().run().unwrap();
        assert!(
            report.conflicts.is_empty(),
            "sequential chain cannot collide: {:?}",
            report.conflicts
        );
    }

    #[test]
    fn empty_channel_comm_is_deadlock() {
        let inst = ProblemInstance::paper_with_wavelengths(4);
        let alloc = onoc_wa::Allocation::new(6, 4); // nothing reserved
        assert_eq!(
            Simulator::new(inst.app(), &alloc, rate()).unwrap_err(),
            SimError::Deadlock { comm: CommId(0) }
        );
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let inst = ProblemInstance::paper_with_wavelengths(4);
        let alloc = onoc_wa::Allocation::from_counts_dense(&[1, 1], 4).unwrap();
        assert!(matches!(
            Simulator::new(inst.app(), &alloc, rate()).unwrap_err(),
            SimError::ShapeMismatch {
                comms: 6,
                encoded: 2
            }
        ));
    }

    #[test]
    fn utilization_is_positive_on_used_segments() {
        let inst = ProblemInstance::paper_with_wavelengths(4);
        let alloc = inst.allocation_from_counts(&[1; 6]).unwrap();
        let report = Simulator::new(inst.app(), &alloc, rate())
            .unwrap()
            .run()
            .unwrap();
        // c5 rides segment 7 clockwise (nodes 7 → 8).
        let seg = onoc_topology::DirectedSegment {
            index: 7,
            direction: onoc_topology::Direction::Clockwise,
        };
        assert!(report.segment_utilization(seg, 4) > 0.0);
    }

    proptest! {
        /// DES and the analytic model agree up to ceiling effects, and the
        /// DES never reports conflicts for statically valid allocations.
        #[test]
        fn des_matches_analytic_on_valid_allocations(
            c0 in 1usize..3, c2 in 1usize..9, c3 in 1usize..4, c5 in 1usize..9,
        ) {
            let inst = ProblemInstance::paper_with_wavelengths(8);
            let counts = [c0, 3, c2, c3, 4, c5];
            prop_assume!(inst.allocation_from_counts(&counts).is_ok());
            let alloc = inst.allocation_from_counts(&counts).unwrap();
            let report = Simulator::new(inst.app(), &alloc, rate()).unwrap().run().unwrap();
            let analytic = Schedule::new(inst.app().graph(), rate())
                .unwrap()
                .evaluate(&counts)
                .unwrap()
                .makespan
                .value();
            prop_assert!(report.makespan as f64 >= analytic - 1e-9);
            prop_assert!((report.makespan as f64) <= analytic + 6.0);
            prop_assert!(report.conflicts.is_empty());
        }

        /// Random layered DAGs with first-fit allocations simulate cleanly
        /// and respect the analytic bound.
        #[test]
        fn random_dags_simulate_cleanly(seed in 0u64..200) {
            use onoc_app::{workloads, MappedApplication, Mapping, RouteStrategy};
            use onoc_topology::{OnocArchitecture, RingTopology};
            use rand::rngs::StdRng;
            use rand::SeedableRng;

            let mut rng = StdRng::seed_from_u64(seed);
            let graph = workloads::random_layered_dag(&mut rng, &workloads::LayeredDagConfig {
                layers: 3, width: 2, edge_probability: 0.4,
                exec_range: (500.0, 2_000.0), volume_range: (100.0, 2_000.0),
            });
            let nodes = workloads::random_mapping(&mut rng, graph.task_count(), 16);
            let mapping = Mapping::new(&graph, nodes).unwrap();
            let app = MappedApplication::new(
                graph, mapping, RingTopology::new(16), RouteStrategy::Shortest,
            ).unwrap();
            let arch = OnocArchitecture::paper_architecture(16);
            let inst = ProblemInstance::new(arch, app, onoc_wa::EvalOptions::default()).unwrap();
            if let Ok(alloc) = onoc_wa::heuristics::first_fit(&inst) {
                let report = Simulator::new(inst.app(), &alloc, rate()).unwrap().run().unwrap();
                prop_assert!(report.conflicts.is_empty());
                let analytic = Schedule::new(inst.app().graph(), rate())
                    .unwrap()
                    .evaluate(&alloc.counts())
                    .unwrap()
                    .makespan
                    .value();
                let slack = inst.app().graph().comm_count() as f64 + 1.0;
                prop_assert!(report.makespan as f64 >= analytic - 1e-9);
                prop_assert!((report.makespan as f64) <= analytic + slack);
            }
        }
    }

    #[test]
    fn paper_application_conflict_free_for_all_fig6_points() {
        for nw in [4usize, 8, 12] {
            let inst = ProblemInstance::paper_with_wavelengths(nw);
            let alloc = onoc_wa::heuristics::first_fit(&inst).unwrap();
            let report = Simulator::new(inst.app(), &alloc, rate())
                .unwrap()
                .run()
                .unwrap();
            assert!(report.conflicts.is_empty(), "NW = {nw}");
        }
    }

    #[test]
    fn paper_app_sim_is_deterministic() {
        let inst = ProblemInstance::paper_with_wavelengths(8);
        let alloc = inst.allocation_from_counts(&[3, 4, 8, 5, 3, 8]).unwrap();
        let a = Simulator::new(inst.app(), &alloc, rate())
            .unwrap()
            .run()
            .unwrap();
        let b = Simulator::new(inst.app(), &alloc, rate())
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(a.makespan, 23_700);
    }
}
