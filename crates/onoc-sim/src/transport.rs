//! Transport-level recovery policies layered on the unified injection
//! engine: what happens when a transmission attempt fails.
//!
//! Fault classification (lane outages, BER corruption — see
//! [`FaultPlan`](crate::FaultPlan)) marks attempts as failed; the
//! [`TransportMode`] decides the sender's reaction:
//!
//! * [`TransportMode::None`] — datagram service: a failed attempt loses
//!   the message outright.
//! * [`TransportMode::GoBackN`] — sliding-window ARQ: each flow carries
//!   sequence numbers, the receiver NACKs corrupt and out-of-order
//!   frames (retransmit after `nack_delay`), silent losses on a dead
//!   lane are recovered by the sender timeout (`timeout` cycles after
//!   the attempt started), and a flow's admissions are gated on at most
//!   `window` unacknowledged messages. Out-of-order NACK retransmits do
//!   not count against `max_retries` — the missing earlier frame is
//!   still in flight, so the sender never gives up on ordering alone.
//! * [`TransportMode::Pfc`] — priority-flow-control-style lossless
//!   backpressure: admission pauses while a destination already has
//!   `dst_window` messages in flight (receiver-buffer credit), and
//!   failed attempts retry immediately (link-level retransmission).
//!
//! Transport gating composes with any
//! [`InjectionMode`](crate::InjectionMode): both gates must pass before
//! a message enters the network interface.

/// Transport-level recovery policy. See the module docs for semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportMode {
    /// No recovery: failed attempts are lost.
    #[default]
    None,
    /// Go-back-N ARQ with NACKs and a sender timeout.
    GoBackN {
        /// Maximum unacknowledged messages per flow. Must be at least 1.
        window: usize,
        /// Cycles from failure detection (receiver side) to the
        /// retransmission: the NACK round trip.
        nack_delay: u64,
        /// Sender timeout for attempts that die silently (lane outage):
        /// the retransmission fires `timeout` cycles after the attempt
        /// started (or at detection, whichever is later). Must be at
        /// least 1.
        timeout: u64,
        /// Retransmissions allowed per message before it is declared
        /// lost (out-of-order NACKs excluded); 0 means any failure
        /// loses the message.
        max_retries: u32,
    },
    /// PFC-style lossless backpressure with link-level retry.
    Pfc {
        /// Maximum in-flight messages per destination across all
        /// sources (the receiver-buffer credit). Must be at least 1.
        dst_window: usize,
        /// Retransmissions allowed per message before it is declared
        /// lost.
        max_retries: u32,
    },
}

impl TransportMode {
    /// A go-back-N preset with a window of 8, a 16-cycle NACK delay, a
    /// 256-cycle timeout and 8 retries.
    #[must_use]
    pub fn go_back_n() -> Self {
        TransportMode::GoBackN {
            window: 8,
            nack_delay: 16,
            timeout: 256,
            max_retries: 8,
        }
    }

    /// A PFC preset with a per-destination window of 4 and 16 retries.
    #[must_use]
    pub fn pfc() -> Self {
        TransportMode::Pfc {
            dst_window: 4,
            max_retries: 16,
        }
    }

    /// The machine-friendly name (`none` / `gbn` / `pfc`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TransportMode::None => "none",
            TransportMode::GoBackN { .. } => "gbn",
            TransportMode::Pfc { .. } => "pfc",
        }
    }

    /// `true` for the recovery-capable modes (which also gate
    /// admission).
    #[must_use]
    pub fn is_active(self) -> bool {
        !matches!(self, TransportMode::None)
    }

    /// Panics on degenerate parameters.
    ///
    /// # Panics
    ///
    /// Panics on a zero go-back-N window or timeout, or a zero PFC
    /// destination window.
    pub fn validate(self) {
        match self {
            TransportMode::None => {}
            TransportMode::GoBackN {
                window, timeout, ..
            } => {
                assert!(window >= 1, "go-back-N window must be at least 1");
                assert!(timeout >= 1, "go-back-N timeout must be at least 1 cycle");
            }
            TransportMode::Pfc { dst_window, .. } => {
                assert!(dst_window >= 1, "PFC destination window must be at least 1");
            }
        }
    }
}

impl core::fmt::Display for TransportMode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TransportMode::None => write!(f, "none"),
            TransportMode::GoBackN {
                window,
                nack_delay,
                timeout,
                max_retries,
            } => write!(
                f,
                "gbn(window {window}, nack {nack_delay}, timeout {timeout}, retries {max_retries})"
            ),
            TransportMode::Pfc {
                dst_window,
                max_retries,
            } => write!(f, "pfc(dst window {dst_window}, retries {max_retries})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_activity_and_display() {
        assert_eq!(TransportMode::None.name(), "none");
        assert_eq!(TransportMode::go_back_n().name(), "gbn");
        assert_eq!(TransportMode::pfc().name(), "pfc");
        assert!(!TransportMode::None.is_active());
        assert!(TransportMode::go_back_n().is_active());
        assert!(TransportMode::pfc().is_active());
        assert_eq!(TransportMode::default(), TransportMode::None);
        assert_eq!(
            TransportMode::go_back_n().to_string(),
            "gbn(window 8, nack 16, timeout 256, retries 8)"
        );
        assert_eq!(
            TransportMode::pfc().to_string(),
            "pfc(dst window 4, retries 16)"
        );
    }

    #[test]
    #[should_panic(expected = "go-back-N window")]
    fn zero_gbn_window_is_rejected() {
        TransportMode::GoBackN {
            window: 0,
            nack_delay: 1,
            timeout: 1,
            max_retries: 0,
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "PFC destination window")]
    fn zero_pfc_window_is_rejected() {
        TransportMode::Pfc {
            dst_window: 0,
            max_retries: 0,
        }
        .validate();
    }
}
