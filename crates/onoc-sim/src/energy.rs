//! End-to-end energy accounting over the open/closed-loop engine.
//!
//! [`EnergyModel`] turns `onoc-photonics` device parameters into run-level
//! coefficients; [`EnergyProbe`] attaches to any engine run through the
//! [`SimProbe`] stream and folds every fact into an [`EnergyReport`]:
//!
//! * **laser** — electrical laser power per *active* wavelength
//!   (wall-plug + OOK duty over the launch power the photodetector
//!   demands through the mean path loss), integrated over each lane's
//!   transmission-on time,
//! * **MR tuning** — thermal power holding every micro-ring resonator on
//!   resonance, burned for the whole run horizon,
//! * **TX/RX dynamic** — per-bit modulator and receiver switching energy,
//!   proportional to traffic put on the waveguide — delivered *plus*
//!   retransmitted bits under fault injection, so wasted attempts burn
//!   energy without contributing goodput.
//!
//! The laser term is the measured-traffic analogue of the analytic
//! `onoc_wa::Evaluator` bit-energy objective (DESIGN.md S6): a
//! cross-validation test pins the simulated laser-only pJ/bit on the
//! paper's 16-core instance against the evaluator within a documented
//! tolerance (see `tests/probe.rs`).

use onoc_photonics::{EnergyParams, WavelengthId};
use onoc_topology::{OnocArchitecture, Transmission, power_budgets};

use crate::fault::DropFact;
use crate::probe::{SimProbe, TxFact};
use crate::report::MsgRecord;

/// Run-level energy coefficients derived from the photonic device models.
///
/// Build one with [`EnergyModel::from_architecture`] (or the
/// [`EnergyModel::paper`] shortcut) and hand it to an [`EnergyProbe`].
///
/// # Examples
///
/// ```
/// use onoc_sim::EnergyModel;
///
/// let model = EnergyModel::paper(16, 8);
/// // The paper's Table I devices put the per-wavelength electrical
/// // laser power in the microwatt range — at 1 bit/cycle and 1 GHz
/// // that is the few-fJ/bit magnitude of Fig. 6(a).
/// assert!(model.laser_mw > 0.0005 && model.laser_mw < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// Electrical laser power drawn per active wavelength while it is
    /// being driven, in mW (wall-plug efficiency and OOK duty included).
    pub laser_mw: f64,
    /// Dynamic transmitter energy per bit, in fJ.
    pub tx_fj_per_bit: f64,
    /// Dynamic receiver energy per bit, in fJ.
    pub rx_fj_per_bit: f64,
    /// Thermal tuning power per micro-ring resonator, in mW.
    pub mr_tuning_mw: f64,
    /// Core clock in GHz (cycles → wall-clock time).
    pub clock_ghz: f64,
}

/// Micro-ring resonators per ONI per wavelength: one modulator ring at
/// the transmitter and one drop ring at the receiver.
pub const MRS_PER_NODE_PER_WAVELENGTH: usize = 2;

impl EnergyModel {
    /// Builds the model from an explicit per-wavelength laser power and
    /// the photonics energy coefficients.
    ///
    /// # Panics
    ///
    /// Panics if `laser_mw` or `clock_ghz` is not strictly positive and
    /// finite, or `params` fail their validation.
    #[must_use]
    pub fn new(laser_mw: f64, params: EnergyParams, clock_ghz: f64) -> Self {
        assert!(
            laser_mw.is_finite() && laser_mw > 0.0,
            "laser power must be positive and finite, got {laser_mw} mW"
        );
        assert!(
            clock_ghz.is_finite() && clock_ghz > 0.0,
            "clock must be positive and finite, got {clock_ghz} GHz"
        );
        if let Err(e) = params.validate() {
            panic!("invalid energy parameters: {e}");
        }
        Self {
            laser_mw,
            tx_fj_per_bit: params.tx_fj_per_bit,
            rx_fj_per_bit: params.rx_fj_per_bit,
            mr_tuning_mw: params.mr_tuning_mw,
            clock_ghz,
        }
    }

    /// Derives the per-wavelength laser power from the architecture's
    /// power budget: for every ordered `(src, dst)` pair, the laser must
    /// deliver the photodetector's target power through the pair's path
    /// loss; the electrical power (wall-plug efficiency, OOK duty) is
    /// averaged over all pairs. This mirrors the analytic evaluator's
    /// per-communication laser sizing with the allocation-dependent
    /// ON-MR crossings replaced by the traffic-free budget.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate architecture (the spectrum engine rejecting
    /// a single-transmission budget would be a bug in the architecture,
    /// not a property of the input).
    #[must_use]
    pub fn from_architecture(
        arch: &OnocArchitecture,
        params: EnergyParams,
        clock_ghz: f64,
    ) -> Self {
        let laser = arch.laser();
        let extinction = (laser.power_off() - laser.power_on()).to_linear();
        let duty = 0.5 * (1.0 + extinction);
        let nodes = arch.ring().node_count();
        let mut total_mw = 0.0;
        let mut pairs = 0usize;
        for src in 0..nodes {
            for dst in 0..nodes {
                if src == dst {
                    continue;
                }
                let path =
                    arch.route_shortest(onoc_topology::NodeId(src), onoc_topology::NodeId(dst));
                let tx = Transmission::new(0, path, vec![WavelengthId(0)]);
                let budgets = power_budgets(arch, std::slice::from_ref(&tx))
                    .expect("a single transmission always has a valid budget");
                let loss = budgets[0].total();
                let launch = arch.detector().required_launch_power(loss);
                total_mw += (laser.electrical_power(launch.to_milliwatts()) * duty).value();
                pairs += 1;
            }
        }
        #[allow(clippy::cast_precision_loss)]
        Self::new(total_mw / pairs as f64, params, clock_ghz)
    }

    /// The paper preset: Table I devices on a near-square serpentine
    /// grid of `nodes` cores with a `wavelengths`-channel comb,
    /// [`EnergyParams::paper`] coefficients, 1 GHz clock.
    ///
    /// # Panics
    ///
    /// Panics if `nodes < 2` or `wavelengths` is outside the comb range
    /// the architecture accepts.
    #[must_use]
    pub fn paper(nodes: usize, wavelengths: usize) -> Self {
        let (rows, cols) = OnocArchitecture::near_square_grid(nodes);
        let arch = OnocArchitecture::builder()
            .grid_dimensions(rows, cols)
            .wavelengths(wavelengths)
            .build()
            .expect("near-square paper grids are valid architectures");
        Self::from_architecture(&arch, EnergyParams::paper(), 1.0)
    }

    /// Femtojoules burned by `mw` milliwatts over `cycles` engine cycles
    /// at this model's clock.
    #[must_use]
    pub fn mw_cycles_to_fj(&self, mw: f64, cycles: f64) -> f64 {
        // mW × s = mJ = 1e12 fJ; one cycle is 1e-9 / clock_ghz seconds.
        mw * cycles * 1e3 / self.clock_ghz
    }
}

/// A [`SimProbe`] folding every engine fact into an [`EnergyReport`].
///
/// Per-lane buffers are sized at construction, so a probed run makes no
/// allocations on the steady-state admit path (the zero-alloc regression
/// test runs with this probe attached).
///
/// # Examples
///
/// ```
/// use onoc_sim::{
///     DynamicPolicy, EnergyModel, EnergyProbe, OpenLoopSimulator, TrafficEvent,
///     WavelengthMode,
/// };
/// use onoc_topology::{NodeId, RingTopology};
/// use onoc_units::{Bits, BitsPerCycle};
///
/// let sim = OpenLoopSimulator::new(
///     RingTopology::new(16),
///     8,
///     BitsPerCycle::new(1.0),
///     WavelengthMode::Dynamic(DynamicPolicy::Single),
/// );
/// let mut probe = EnergyProbe::new(EnergyModel::paper(16, 8), 16, 8);
/// let events = vec![TrafficEvent {
///     time: 0,
///     src: NodeId(0),
///     dst: NodeId(3),
///     volume: Bits::new(512.0),
/// }];
/// sim.run_probed(events.into_iter(), &mut probe).unwrap();
/// let energy = probe.report();
/// assert!(energy.pj_per_bit() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct EnergyProbe {
    model: EnergyModel,
    nodes: usize,
    lane_on_cycles: Vec<u64>,
    flow_lane_on_cycles: Vec<u64>,
    flow_bits: Vec<f64>,
    flow_messages: Vec<u64>,
    bits: f64,
    retransmitted_bits: f64,
    messages: u64,
    horizon: u64,
}

impl EnergyProbe {
    /// A probe for runs on a `nodes`-core ring with a
    /// `wavelengths`-channel comb.
    #[must_use]
    pub fn new(model: EnergyModel, nodes: usize, wavelengths: usize) -> Self {
        Self {
            model,
            nodes,
            lane_on_cycles: vec![0; wavelengths],
            flow_lane_on_cycles: vec![0; nodes * nodes],
            flow_bits: vec![0.0; nodes * nodes],
            flow_messages: vec![0; nodes * nodes],
            bits: 0.0,
            retransmitted_bits: 0.0,
            messages: 0,
            horizon: 0,
        }
    }

    /// Clears the folded state so the probe can observe another run
    /// (buffers keep their capacity).
    pub fn reset(&mut self) {
        self.lane_on_cycles.fill(0);
        self.flow_lane_on_cycles.fill(0);
        self.flow_bits.fill(0.0);
        self.flow_messages.fill(0);
        self.bits = 0.0;
        self.retransmitted_bits = 0.0;
        self.messages = 0;
        self.horizon = 0;
    }

    /// The model this probe folds with.
    #[must_use]
    pub fn model(&self) -> &EnergyModel {
        &self.model
    }

    /// Assembles the energy report of the observed run.
    #[must_use]
    pub fn report(&self) -> EnergyReport {
        let m = &self.model;
        #[allow(clippy::cast_precision_loss)]
        let lane_on_total: f64 = self.lane_on_cycles.iter().map(|&c| c as f64).sum();
        let ring_count = MRS_PER_NODE_PER_WAVELENGTH * self.nodes * self.lane_on_cycles.len();
        #[allow(clippy::cast_precision_loss)]
        let tuning_fj = m.mw_cycles_to_fj(m.mr_tuning_mw * ring_count as f64, self.horizon as f64);
        let wire_bits = self.bits + self.retransmitted_bits;
        EnergyReport {
            bits: self.bits,
            retransmitted_bits: self.retransmitted_bits,
            messages: self.messages,
            horizon: self.horizon,
            laser_fj: m.mw_cycles_to_fj(m.laser_mw, lane_on_total),
            tuning_fj,
            tx_fj: m.tx_fj_per_bit * wire_bits,
            rx_fj: m.rx_fj_per_bit * wire_bits,
            lane_on_cycles: self.lane_on_cycles.clone(),
            ring_count,
            nodes: self.nodes,
            flow_lane_on_cycles: self.flow_lane_on_cycles.clone(),
            flow_bits: self.flow_bits.clone(),
            flow_messages: self.flow_messages.clone(),
        }
    }
}

impl SimProbe for EnergyProbe {
    #[inline]
    fn completed(&mut self, fact: TxFact) {
        let span = fact.span();
        let mut rest = fact.lanes;
        while rest != 0 {
            let lane = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            assert!(
                lane < self.lane_on_cycles.len(),
                "EnergyProbe was built for {} wavelengths but observed lane {lane}; \
                 construct it with the simulator's comb size",
                self.lane_on_cycles.len()
            );
            self.lane_on_cycles[lane] += span;
        }
        let flow = fact.src.0 * self.nodes + fact.dst.0;
        self.flow_lane_on_cycles[flow] += span * fact.lane_count() as u64;
    }

    #[inline]
    fn dropped(&mut self, fact: DropFact) {
        // A failed attempt drove its lanes for the full span before the
        // receiver rejected it: the laser-on time and the modulated bits
        // are burned exactly as on a delivery, only the goodput is not.
        let span = fact.end - fact.start;
        let mut rest = fact.lanes;
        while rest != 0 {
            let lane = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            assert!(
                lane < self.lane_on_cycles.len(),
                "EnergyProbe was built for {} wavelengths but observed lane {lane}; \
                 construct it with the simulator's comb size",
                self.lane_on_cycles.len()
            );
            self.lane_on_cycles[lane] += span;
        }
        let flow = fact.src.0 * self.nodes + fact.dst.0;
        self.flow_lane_on_cycles[flow] += span * fact.lane_count() as u64;
        self.retransmitted_bits += fact.bits;
    }

    #[inline]
    fn retired(&mut self, record: &MsgRecord, volume_bits: f64, _hops: usize) {
        self.bits += volume_bits;
        self.messages += 1;
        let flow = record.src.0 * self.nodes + record.dst.0;
        self.flow_bits[flow] += volume_bits;
        self.flow_messages[flow] += 1;
    }

    #[inline]
    fn finished(&mut self, horizon: u64, _last_injection: u64) {
        self.horizon = horizon;
    }
}

/// The folded energy outcome of one engine run.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyReport {
    /// Bits delivered by the run.
    pub bits: f64,
    /// Bits of failed attempts that had to be retransmitted — charged
    /// to the TX/RX dynamic terms alongside the delivered bits, but not
    /// part of the `pj_per_bit` denominator (waste raises it).
    pub retransmitted_bits: f64,
    /// Messages delivered by the run.
    pub messages: u64,
    /// Cycle of the last completion.
    pub horizon: u64,
    /// Laser electrical energy over every lane's transmission-on time.
    pub laser_fj: f64,
    /// MR thermal-tuning energy over the whole horizon.
    pub tuning_fj: f64,
    /// Dynamic transmitter energy (per-bit × bits).
    pub tx_fj: f64,
    /// Dynamic receiver energy (per-bit × bits).
    pub rx_fj: f64,
    /// Transmission-on cycles per wavelength (laser-on time per lane).
    pub lane_on_cycles: Vec<u64>,
    /// Micro-ring resonators held on resonance for the tuning term.
    pub ring_count: usize,
    /// Ring size, for indexing the flow vectors (flow = src × nodes + dst).
    pub nodes: usize,
    /// Lane-on cycles per flow (span × lanes of every completion).
    pub flow_lane_on_cycles: Vec<u64>,
    /// Bits delivered per flow.
    pub flow_bits: Vec<f64>,
    /// Messages delivered per flow.
    pub flow_messages: Vec<u64>,
}

/// One flow's slice of an [`EnergyReport`], from
/// [`EnergyReport::per_flow`].
#[derive(Debug, Clone, PartialEq)]
pub struct FlowEnergy {
    /// Source node.
    pub src: onoc_topology::NodeId,
    /// Destination node.
    pub dst: onoc_topology::NodeId,
    /// Messages the flow delivered.
    pub messages: u64,
    /// Bits the flow delivered.
    pub bits: f64,
    /// Lane-on cycles the flow drove.
    pub lane_on_cycles: u64,
    /// Laser energy attributed to the flow (∝ its lane-on cycles).
    pub laser_fj: f64,
    /// MR-tuning energy attributed to the flow (∝ its delivered bits).
    pub tuning_fj: f64,
    /// Transmitter energy attributed to the flow (∝ its delivered bits).
    pub tx_fj: f64,
    /// Receiver energy attributed to the flow (∝ its delivered bits).
    pub rx_fj: f64,
}

impl FlowEnergy {
    /// Total energy attributed to the flow, in femtojoules.
    #[must_use]
    pub fn total_fj(&self) -> f64 {
        self.laser_fj + self.tuning_fj + self.tx_fj + self.rx_fj
    }
}

impl EnergyReport {
    /// Static energy: laser-on plus MR tuning — power that burns whether
    /// or not a given bit is useful.
    #[must_use]
    pub fn static_fj(&self) -> f64 {
        self.laser_fj + self.tuning_fj
    }

    /// Dynamic energy: TX + RX switching, proportional to traffic.
    #[must_use]
    pub fn dynamic_fj(&self) -> f64 {
        self.tx_fj + self.rx_fj
    }

    /// Total energy of the run in femtojoules.
    #[must_use]
    pub fn total_fj(&self) -> f64 {
        self.static_fj() + self.dynamic_fj()
    }

    /// Headline figure of merit: picojoules per delivered bit
    /// (0 for an empty run).
    #[must_use]
    pub fn pj_per_bit(&self) -> f64 {
        if self.bits <= 0.0 {
            0.0
        } else {
            self.total_fj() / self.bits / 1e3
        }
    }

    /// Laser-only energy per bit in fJ — the measured analogue of the
    /// analytic evaluator's bit-energy objective.
    #[must_use]
    pub fn laser_fj_per_bit(&self) -> f64 {
        if self.bits <= 0.0 {
            0.0
        } else {
            self.laser_fj / self.bits
        }
    }

    /// Fraction of the total energy that is static (0 for an empty run).
    #[must_use]
    pub fn static_fraction(&self) -> f64 {
        let total = self.total_fj();
        if total <= 0.0 {
            0.0
        } else {
            self.static_fj() / total
        }
    }

    /// Splits the run's energy across its active flows: laser in
    /// proportion to each flow's lane-on cycles, MR tuning and TX/RX
    /// dynamic energy in proportion to its delivered bits (falling back
    /// to message share on a zero-bit run). Summing every
    /// [`FlowEnergy`] term recovers the corresponding run total to
    /// floating-point rounding (proptested); flows with no activity are
    /// omitted.
    #[must_use]
    pub fn per_flow(&self) -> Vec<FlowEnergy> {
        fn share(num: f64, den: f64) -> f64 {
            if den <= 0.0 { 0.0 } else { num / den }
        }
        #[allow(clippy::cast_precision_loss)]
        let lane_total: f64 = self.flow_lane_on_cycles.iter().map(|&c| c as f64).sum();
        let mut flows = Vec::new();
        for flow in 0..self.flow_bits.len() {
            let (cycles, bits, messages) = (
                self.flow_lane_on_cycles[flow],
                self.flow_bits[flow],
                self.flow_messages[flow],
            );
            if cycles == 0 && messages == 0 {
                continue;
            }
            #[allow(clippy::cast_precision_loss)]
            let lane_share = share(cycles as f64, lane_total);
            #[allow(clippy::cast_precision_loss)]
            let bit_share = if self.bits > 0.0 {
                bits / self.bits
            } else {
                share(messages as f64, self.messages as f64)
            };
            flows.push(FlowEnergy {
                src: onoc_topology::NodeId(flow / self.nodes),
                dst: onoc_topology::NodeId(flow % self.nodes),
                messages,
                bits,
                lane_on_cycles: cycles,
                laser_fj: self.laser_fj * lane_share,
                tuning_fj: self.tuning_fj * bit_share,
                tx_fj: self.tx_fj * bit_share,
                rx_fj: self.rx_fj * bit_share,
            });
        }
        flows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_model() -> EnergyModel {
        EnergyModel::new(
            1.0,
            EnergyParams {
                tx_fj_per_bit: 10.0,
                rx_fj_per_bit: 5.0,
                mr_tuning_mw: 0.1,
            },
            1.0,
        )
    }

    #[test]
    fn mw_cycles_conversion_at_1ghz() {
        // 1 mW for 1 cycle at 1 GHz = 1 mW × 1 ns = 1 pJ = 1000 fJ.
        let m = unit_model();
        assert!((m.mw_cycles_to_fj(1.0, 1.0) - 1_000.0).abs() < 1e-9);
        // Doubling the clock halves the cycle time, hence the energy.
        let fast = EnergyModel {
            clock_ghz: 2.0,
            ..unit_model()
        };
        assert!((fast.mw_cycles_to_fj(1.0, 1.0) - 500.0).abs() < 1e-9);
    }

    #[test]
    fn hand_computed_single_transmission() {
        // One 100-bit message on one lane over 2 hops: span 100 cycles.
        let mut probe = EnergyProbe::new(unit_model(), 4, 2);
        probe.completed(TxFact {
            start: 0,
            end: 100,
            lanes: 0b01,
            hops: 2,
            src: onoc_topology::NodeId(0),
            dst: onoc_topology::NodeId(2),
            marked: false,
        });
        probe.retired(
            &MsgRecord {
                src: onoc_topology::NodeId(0),
                dst: onoc_topology::NodeId(2),
                injected: 0,
                admitted: 0,
                started: 0,
                completed: 100,
                lanes: 1,
                attempts: 1,
            },
            100.0,
            2,
        );
        probe.finished(100, 0);
        let r = probe.report();
        // Laser: 1 mW × 100 cycles = 100 pJ = 100 000 fJ.
        assert!((r.laser_fj - 100_000.0).abs() < 1e-6);
        // Tuning: 0.1 mW × (2 × 4 nodes × 2 λ = 16 rings) × 100 cycles
        // = 160 pJ.
        assert_eq!(r.ring_count, 16);
        assert!((r.tuning_fj - 160_000.0).abs() < 1e-6);
        // Dynamic: (10 + 5) fJ/bit × 100 bits.
        assert!((r.tx_fj - 1_000.0).abs() < 1e-9);
        assert!((r.rx_fj - 500.0).abs() < 1e-9);
        assert!((r.total_fj() - 261_500.0).abs() < 1e-6);
        // 261 500 fJ / 100 bits = 2 615 fJ/bit = 2.615 pJ/bit.
        assert!((r.pj_per_bit() - 2.615).abs() < 1e-9);
        assert!((r.laser_fj_per_bit() - 1_000.0).abs() < 1e-9);
        assert!((r.static_fraction() - 260_000.0 / 261_500.0).abs() < 1e-12);
        assert_eq!(r.lane_on_cycles, vec![100, 0]);
    }

    #[test]
    fn multi_lane_transmissions_accumulate_per_lane() {
        let mut probe = EnergyProbe::new(unit_model(), 4, 4);
        probe.completed(TxFact {
            start: 0,
            end: 50,
            lanes: 0b1010,
            hops: 1,
            src: onoc_topology::NodeId(0),
            dst: onoc_topology::NodeId(1),
            marked: false,
        });
        probe.completed(TxFact {
            start: 60,
            end: 80,
            lanes: 0b0010,
            hops: 1,
            src: onoc_topology::NodeId(2),
            dst: onoc_topology::NodeId(3),
            marked: false,
        });
        let r = probe.report();
        assert_eq!(r.lane_on_cycles, vec![0, 70, 0, 50]);
        // Flow attribution splits the same cycles by source pair:
        // 0→1 drove 2 lanes × 50 cycles, 2→3 one lane × 20.
        assert_eq!(r.flow_lane_on_cycles[1], 100);
        assert_eq!(r.flow_lane_on_cycles[2 * 4 + 3], 20);
    }

    #[test]
    fn dropped_attempts_burn_laser_and_dynamic_energy() {
        use crate::fault::FaultCause;
        // A 100-bit delivery plus one failed 100-bit attempt on the
        // same flow: laser-on doubles, TX/RX charge 200 wire bits, but
        // goodput stays 100 bits.
        let mut probe = EnergyProbe::new(unit_model(), 4, 2);
        probe.dropped(DropFact {
            start: 0,
            end: 100,
            lanes: 0b01,
            hops: 2,
            src: onoc_topology::NodeId(0),
            dst: onoc_topology::NodeId(2),
            bits: 100.0,
            cause: FaultCause::Corrupt,
            attempt: 1,
        });
        probe.completed(TxFact {
            start: 100,
            end: 200,
            lanes: 0b01,
            hops: 2,
            src: onoc_topology::NodeId(0),
            dst: onoc_topology::NodeId(2),
            marked: false,
        });
        probe.retired(
            &MsgRecord {
                src: onoc_topology::NodeId(0),
                dst: onoc_topology::NodeId(2),
                injected: 0,
                admitted: 0,
                started: 100,
                completed: 200,
                lanes: 1,
                attempts: 2,
            },
            100.0,
            2,
        );
        probe.finished(200, 0);
        let r = probe.report();
        assert_eq!(r.lane_on_cycles, vec![200, 0]);
        assert!((r.bits - 100.0).abs() < 1e-12);
        assert!((r.retransmitted_bits - 100.0).abs() < 1e-12);
        // Laser: 1 mW × 200 cycles; TX/RX: (10 + 5) fJ × 200 wire bits.
        assert!((r.laser_fj - 200_000.0).abs() < 1e-6);
        assert!((r.tx_fj - 2_000.0).abs() < 1e-9);
        assert!((r.rx_fj - 1_000.0).abs() < 1e-9);
        // The failed attempt's lane cycles stay attributed to the flow.
        assert_eq!(r.flow_lane_on_cycles[2], 200);
    }

    #[test]
    fn empty_run_reports_zeroes() {
        let probe = EnergyProbe::new(unit_model(), 4, 2);
        let r = probe.report();
        assert_eq!(r.pj_per_bit(), 0.0);
        assert_eq!(r.static_fraction(), 0.0);
        assert_eq!(r.total_fj(), 0.0);
    }

    #[test]
    fn reset_clears_folded_state() {
        let mut probe = EnergyProbe::new(unit_model(), 4, 2);
        probe.completed(TxFact {
            start: 0,
            end: 10,
            lanes: 1,
            hops: 1,
            src: onoc_topology::NodeId(0),
            dst: onoc_topology::NodeId(1),
            marked: false,
        });
        probe.finished(10, 0);
        probe.reset();
        assert_eq!(probe.report().total_fj(), 0.0);
        assert_eq!(probe.report().horizon, 0);
        assert!(probe.report().per_flow().is_empty());
    }

    #[test]
    fn per_flow_attribution_is_hand_checkable_and_conserves() {
        // Two flows on a 4-node ring: 0→2 delivers 300 of the 400 bits
        // and 150 of the 200 lane-on cycles, 1→3 the rest.
        let mut probe = EnergyProbe::new(unit_model(), 4, 2);
        for (src, dst, bits, start, end) in
            [(0usize, 2usize, 300.0, 0u64, 150u64), (1, 3, 100.0, 0, 50)]
        {
            probe.completed(TxFact {
                start,
                end,
                lanes: 0b01,
                hops: 2,
                src: onoc_topology::NodeId(src),
                dst: onoc_topology::NodeId(dst),
                marked: false,
            });
            probe.retired(
                &MsgRecord {
                    src: onoc_topology::NodeId(src),
                    dst: onoc_topology::NodeId(dst),
                    injected: start,
                    admitted: start,
                    started: start,
                    completed: end,
                    lanes: 1,
                    attempts: 1,
                },
                bits,
                2,
            );
        }
        probe.finished(150, 0);
        let r = probe.report();
        let flows = r.per_flow();
        assert_eq!(flows.len(), 2);
        let f02 = &flows[0];
        assert_eq!((f02.src.0, f02.dst.0), (0, 2));
        // Laser splits by lane-on share (150/200), bit terms by 300/400.
        assert!((f02.laser_fj - r.laser_fj * 0.75).abs() < 1e-9);
        assert!((f02.tuning_fj - r.tuning_fj * 0.75).abs() < 1e-9);
        assert!((f02.tx_fj - r.tx_fj * 0.75).abs() < 1e-9);
        // The split conserves every term.
        let sum: f64 = flows.iter().map(FlowEnergy::total_fj).sum();
        assert!((sum - r.total_fj()).abs() <= 1e-9 * r.total_fj());
    }

    #[test]
    fn paper_model_is_in_the_calibrated_band() {
        let model = EnergyModel::paper(16, 8);
        // Table I devices sized for the photodetector target through the
        // mean ring path loss draw a few µW of electrical laser power per
        // wavelength; at 1 bit/cycle and 1 GHz that is a few fJ/bit of
        // laser energy — the Fig. 6(a) magnitude (P mW × 1 ns/bit =
        // P × 1000 fJ/bit).
        assert!(
            model.laser_mw > 0.0005 && model.laser_mw < 0.05,
            "laser {} mW outside the calibrated band",
            model.laser_mw
        );
        assert_eq!(model.clock_ghz, 1.0);
        assert_eq!(model.tx_fj_per_bit, 50.0);
        // More wavelengths raise the per-channel crosstalk-free loss only
        // marginally; the model stays in the band.
        let wide = EnergyModel::paper(16, 16);
        assert!(wide.laser_mw > 0.0005 && wide.laser_mw < 0.05);
        // Larger rings mean longer mean paths, hence more launch power.
        let big = EnergyModel::paper(32, 8);
        assert!(big.laser_mw > model.laser_mw);
    }

    #[test]
    #[should_panic(expected = "laser power")]
    fn zero_laser_power_panics() {
        let _ = EnergyModel::new(0.0, EnergyParams::paper(), 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid energy parameters")]
    fn invalid_params_panic() {
        let _ = EnergyModel::new(
            1.0,
            EnergyParams {
                tx_fj_per_bit: -1.0,
                ..EnergyParams::paper()
            },
            1.0,
        );
    }
}
