//! Open-loop injection: simulate *streams of timed messages* instead of a
//! closed task graph.
//!
//! The closed-loop simulators ([`Simulator`](crate::Simulator),
//! [`DynamicSimulator`](crate::DynamicSimulator)) replay one application
//! whose communications are gated by task dependencies. Saturation studies
//! (Dally & Towles ch. 23; Das et al., arXiv:1608.06972) instead drive the
//! network *open loop*: messages arrive on a schedule that does not react
//! to network backpressure, and the figure of merit is the latency
//! distribution as offered load approaches capacity.
//!
//! [`OpenLoopSimulator`] polls a [`TrafficSource`] for timed
//! [`TrafficEvent`]s and services them on the ring WDM fabric under one of
//! two wavelength disciplines ([`WavelengthMode`]):
//!
//! * **Dynamic** — runtime arbitration like
//!   [`DynamicSimulator`](crate::DynamicSimulator): a message claims free
//!   wavelengths along its whole path or waits. Every ONI keeps a FIFO
//!   injection queue — a node's messages transmit in order (head-of-line
//!   at the network interface), different nodes arbitrate independently.
//!   Per-source queues keep retry work O(nodes) per release, so saturated
//!   sweeps stay fast. Latency includes the queueing delay, so the
//!   latency-vs-load curve shows the classic saturation knee.
//! * **Static** — every ordered `(src, dst)` flow owns a fixed wavelength
//!   set ([`StaticFlowMap`]); messages of one flow serialise on their own
//!   lanes, and the simulator *checks* rather than arbitrates: any two
//!   flows that ever drive a common wavelength on a common directed
//!   segment at the same time are recorded as [`OpenLoopConflict`]s. This
//!   is the open-loop analogue of the §III-D static-validity checker.
//!
//! Synthetic traffic patterns that feed this interface live in the
//! `onoc-traffic` crate; the trait is defined here so the engine has no
//! dependency on how events are produced.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use onoc_photonics::WavelengthId;
use onoc_topology::{DirectedSegment, NodeId, RingPath, RingTopology};
use onoc_units::{Bits, BitsPerCycle};

use crate::DynamicPolicy;

/// One injected message: `volume` bits from `src` to `dst`, entering the
/// network interface at cycle `time`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficEvent {
    /// Injection cycle.
    pub time: u64,
    /// Producing ONI.
    pub src: NodeId,
    /// Consuming ONI.
    pub dst: NodeId,
    /// Message size.
    pub volume: Bits,
}

/// A pull-based producer of timed messages.
///
/// The engine polls `next_event` and requires the stream to be ordered by
/// nondecreasing `time` (violations are rejected at run time). Sources are
/// finite; an open-ended source is expressed by generating up to a horizon.
pub trait TrafficSource {
    /// Returns the next message, or `None` when the stream is exhausted.
    fn next_event(&mut self) -> Option<TrafficEvent>;
}

/// Blanket adapter: any iterator of events is a source.
impl<I: Iterator<Item = TrafficEvent>> TrafficSource for I {
    fn next_event(&mut self) -> Option<TrafficEvent> {
        self.next()
    }
}

/// Message index within one open-loop run (injection order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MsgId(pub usize);

impl core::fmt::Display for MsgId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// A fixed design-time wavelength set per ordered `(src, dst)` flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticFlowMap {
    nodes: usize,
    wavelengths: usize,
    /// Indexed by `src * nodes + dst`; empty for the diagonal.
    lanes: Vec<Vec<WavelengthId>>,
}

impl StaticFlowMap {
    /// Stripes `lanes_per_flow` consecutive wavelengths over the flows in
    /// flow-id order (`src * nodes + dst`), wrapping around the comb.
    ///
    /// With enough wavelengths per concurrently-active segment the stripe
    /// is conflict-free; undersized combs intentionally collide so the
    /// checker has something to report.
    ///
    /// # Panics
    ///
    /// Panics if `nodes < 2`, `wavelengths == 0`, `lanes_per_flow == 0` or
    /// `lanes_per_flow > wavelengths`.
    #[must_use]
    pub fn striped(nodes: usize, wavelengths: usize, lanes_per_flow: usize) -> Self {
        assert!(nodes >= 2, "a ring needs at least 2 nodes, got {nodes}");
        assert!(wavelengths > 0, "the comb needs at least one wavelength");
        assert!(
            lanes_per_flow >= 1 && lanes_per_flow <= wavelengths,
            "lanes per flow must be in 1..={wavelengths}, got {lanes_per_flow}"
        );
        let mut lanes = vec![Vec::new(); nodes * nodes];
        let mut next = 0usize;
        for src in 0..nodes {
            for dst in 0..nodes {
                if src == dst {
                    continue;
                }
                let set = (0..lanes_per_flow)
                    .map(|k| WavelengthId((next + k) % wavelengths))
                    .collect();
                lanes[src * nodes + dst] = set;
                next = (next + lanes_per_flow) % wavelengths;
            }
        }
        Self {
            nodes,
            wavelengths,
            lanes,
        }
    }

    /// Builds a map from an explicit per-flow table (indexed
    /// `src * nodes + dst`; diagonal entries must be empty).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch, an empty off-diagonal entry, or a lane
    /// outside the comb.
    #[must_use]
    pub fn from_table(nodes: usize, wavelengths: usize, lanes: Vec<Vec<WavelengthId>>) -> Self {
        assert_eq!(lanes.len(), nodes * nodes, "need one entry per (src, dst)");
        for (i, set) in lanes.iter().enumerate() {
            let (src, dst) = (i / nodes, i % nodes);
            if src == dst {
                assert!(set.is_empty(), "diagonal flow n{src}→n{dst} must be empty");
            } else {
                assert!(!set.is_empty(), "flow n{src}→n{dst} has no wavelengths");
                for lane in set {
                    assert!(
                        lane.index() < wavelengths,
                        "flow n{src}→n{dst} uses {lane} outside a {wavelengths}-λ comb"
                    );
                }
            }
        }
        Self {
            nodes,
            wavelengths,
            lanes,
        }
    }

    /// Internal constructor for synthesised maps (see `flows.rs`); unlike
    /// [`StaticFlowMap::from_table`], off-diagonal entries may stay empty —
    /// the engine rejects traffic on them with
    /// [`OpenLoopError::UnmappedFlow`].
    pub(crate) fn from_parts(
        nodes: usize,
        wavelengths: usize,
        lanes: Vec<Vec<WavelengthId>>,
    ) -> Self {
        debug_assert_eq!(lanes.len(), nodes * nodes);
        Self {
            nodes,
            wavelengths,
            lanes,
        }
    }

    /// The wavelengths owned by the `src → dst` flow.
    #[must_use]
    pub fn lanes(&self, src: NodeId, dst: NodeId) -> &[WavelengthId] {
        &self.lanes[src.0 * self.nodes + dst.0]
    }

    /// Comb size this map was built for.
    #[must_use]
    pub fn wavelengths(&self) -> usize {
        self.wavelengths
    }
}

/// How the open-loop engine assigns wavelengths to messages.
#[derive(Debug, Clone, PartialEq)]
pub enum WavelengthMode {
    /// Runtime arbitration with FIFO queueing (see crate docs).
    Dynamic(DynamicPolicy),
    /// Fixed per-flow lanes with conflict *checking* (see crate docs).
    Static(StaticFlowMap),
}

/// Two messages driving the same wavelength on the same directed segment
/// during overlapping cycles (static mode only; dynamic runs are
/// conflict-free by construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenLoopConflict {
    /// Where the collision happens.
    pub segment: DirectedSegment,
    /// The contested wavelength.
    pub channel: WavelengthId,
    /// The earlier-starting message.
    pub first: MsgId,
    /// The later-starting message.
    pub second: MsgId,
    /// The overlapping cycle interval `[start, end)`.
    pub overlap: (u64, u64),
}

/// Summary statistics over a latency (or any nonnegative) sample set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (linear interpolation between ranks).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Largest sample.
    pub max: u64,
}

impl LatencyStats {
    /// Computes the statistics, consuming and sorting the samples.
    /// Returns an all-zero record for an empty set.
    #[must_use]
    pub fn from_samples(mut samples: Vec<u64>) -> Self {
        if samples.is_empty() {
            return Self {
                count: 0,
                mean: 0.0,
                p50: 0.0,
                p95: 0.0,
                p99: 0.0,
                max: 0,
            };
        }
        samples.sort_unstable();
        let count = samples.len();
        let mean = samples.iter().map(|&s| s as f64).sum::<f64>() / count as f64;
        let pct = |q: f64| -> f64 {
            let rank = q * (count - 1) as f64;
            let lo = rank.floor() as usize;
            let hi = rank.ceil() as usize;
            let frac = rank - lo as f64;
            samples[lo] as f64 * (1.0 - frac) + samples[hi] as f64 * frac
        };
        Self {
            count,
            mean,
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
            max: *samples.last().expect("non-empty"),
        }
    }
}

/// Everything recorded about one delivered message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MsgRecord {
    /// Producing ONI.
    pub src: NodeId,
    /// Consuming ONI.
    pub dst: NodeId,
    /// Injection cycle.
    pub injected: u64,
    /// Cycle the transmission actually started (after any queueing).
    pub started: u64,
    /// Cycle the last bit arrived.
    pub completed: u64,
    /// Wavelength count the message transmitted on.
    pub lanes: usize,
}

impl MsgRecord {
    /// End-to-end latency: injection to last-bit arrival.
    #[must_use]
    pub fn latency(&self) -> u64 {
        self.completed - self.injected
    }

    /// Cycles spent waiting for wavelengths before transmission.
    #[must_use]
    pub fn queueing(&self) -> u64 {
        self.started - self.injected
    }
}

/// Outcome of one open-loop run.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenLoopReport {
    /// Ring size the run used.
    pub nodes: usize,
    /// Comb size the run used.
    pub wavelengths: usize,
    /// Cycle of the last message completion (0 for an empty source).
    pub horizon: u64,
    /// Last injection cycle seen from the source.
    pub last_injection: u64,
    /// Per message, injection order.
    pub records: Vec<MsgRecord>,
    /// Total bits offered by the source.
    pub offered_bits: f64,
    /// Total bits delivered (open loop delivers everything eventually;
    /// kept separate so truncated variants stay honest).
    pub delivered_bits: f64,
    /// Messages that could not start transmitting at their injection
    /// cycle: no free wavelength on the path, or an earlier message from
    /// the same ONI still queued (dynamic mode); flow lanes busy
    /// (static mode).
    pub blocked_attempts: usize,
    /// Total wavelength collisions (static mode; 0 in dynamic mode).
    pub conflict_count: usize,
    /// The first few collisions, for diagnostics.
    pub conflict_examples: Vec<OpenLoopConflict>,
    /// Busy wavelength-cycles per directed segment.
    pub segment_busy: Vec<(DirectedSegment, u64)>,
    /// Busy wavelength-cycles per wavelength, summed over segments.
    pub lane_busy: Vec<u64>,
}

impl OpenLoopReport {
    /// Latency statistics over every delivered message.
    #[must_use]
    pub fn latency(&self) -> LatencyStats {
        LatencyStats::from_samples(self.records.iter().map(MsgRecord::latency).collect())
    }

    /// Latency statistics per ordered `(src, dst)` flow, sorted by flow.
    #[must_use]
    pub fn latency_by_flow(&self) -> Vec<((NodeId, NodeId), LatencyStats)> {
        let mut per_flow: HashMap<(NodeId, NodeId), Vec<u64>> = HashMap::new();
        for r in &self.records {
            per_flow
                .entry((r.src, r.dst))
                .or_default()
                .push(r.latency());
        }
        let mut out: Vec<_> = per_flow
            .into_iter()
            .map(|(flow, samples)| (flow, LatencyStats::from_samples(samples)))
            .collect();
        out.sort_by_key(|&((s, d), _)| (s, d));
        out
    }

    /// Offered load in bits per cycle over the injection window
    /// `[0, last_injection]` (a burst entirely at cycle 0 is a 1-cycle
    /// window, not a division by zero).
    #[must_use]
    pub fn offered_load(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.offered_bits / (self.last_injection + 1) as f64
    }

    /// Accepted throughput in bits per cycle over the whole run (the
    /// saturation-curve y-axis companion).
    #[must_use]
    pub fn accepted_throughput(&self) -> f64 {
        if self.horizon == 0 {
            return 0.0;
        }
        self.delivered_bits / self.horizon as f64
    }

    /// Mean occupancy of the comb: busy wavelength-cycles over
    /// `horizon × 2·nodes segments × wavelengths` capacity.
    #[must_use]
    pub fn mean_wavelength_occupancy(&self) -> f64 {
        if self.horizon == 0 || self.wavelengths == 0 {
            return 0.0;
        }
        let busy: u64 = self.segment_busy.iter().map(|&(_, b)| b).sum();
        let capacity = self.horizon as f64 * (2 * self.nodes) as f64 * self.wavelengths as f64;
        busy as f64 / capacity
    }

    /// Occupancy of one wavelength across the whole ring.
    #[must_use]
    pub fn lane_occupancy(&self, lane: WavelengthId) -> f64 {
        if self.horizon == 0 {
            return 0.0;
        }
        let busy = self.lane_busy.get(lane.index()).copied().unwrap_or(0);
        busy as f64 / (self.horizon as f64 * (2 * self.nodes) as f64)
    }
}

/// Errors raised by the open-loop engine.
#[derive(Debug, Clone, PartialEq)]
pub enum OpenLoopError {
    /// The source produced events with decreasing timestamps.
    UnorderedSource {
        /// Timestamp that went backwards.
        time: u64,
        /// The previously seen timestamp.
        previous: u64,
    },
    /// An event references a node outside the ring.
    ForeignNode {
        /// The offending node.
        node: NodeId,
        /// Ring size.
        nodes: usize,
    },
    /// An event has `src == dst` (the optical layer is not used) or a
    /// nonpositive volume.
    DegenerateEvent {
        /// Index of the offending event in the stream.
        index: usize,
    },
    /// Static mode: the flow map owns no wavelengths for this flow (it was
    /// not in the measured matrix a synthesised map was built from).
    UnmappedFlow {
        /// Producing ONI.
        src: NodeId,
        /// Consuming ONI.
        dst: NodeId,
    },
}

impl core::fmt::Display for OpenLoopError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            OpenLoopError::UnorderedSource { time, previous } => {
                write!(f, "source time went backwards: {time} after {previous}")
            }
            OpenLoopError::ForeignNode { node, nodes } => {
                write!(f, "{node} is not on a {nodes}-node ring")
            }
            OpenLoopError::DegenerateEvent { index } => {
                write!(f, "event {index} is degenerate (self-loop or empty volume)")
            }
            OpenLoopError::UnmappedFlow { src, dst } => {
                write!(f, "static flow map owns no wavelengths for {src}→{dst}")
            }
        }
    }
}

impl std::error::Error for OpenLoopError {}

/// How many conflict examples an [`OpenLoopReport`] retains.
const CONFLICT_EXAMPLE_CAP: usize = 16;

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    /// Completions sort before injections at one timestamp so released
    /// wavelengths are reusable in the same cycle.
    Completed(usize),
    Injected(usize),
}

/// The open-loop engine. See the module docs for semantics.
#[derive(Debug)]
pub struct OpenLoopSimulator {
    ring: RingTopology,
    wavelengths: usize,
    rate: BitsPerCycle,
    mode: WavelengthMode,
}

impl OpenLoopSimulator {
    /// Creates an engine over a `wavelengths`-channel comb.
    ///
    /// # Panics
    ///
    /// Panics if `wavelengths` is outside `1..=128`, `rate` is not
    /// strictly positive, a greedy policy has `cap == 0`, or a static map
    /// disagrees with `wavelengths`.
    #[must_use]
    pub fn new(
        ring: RingTopology,
        wavelengths: usize,
        rate: BitsPerCycle,
        mode: WavelengthMode,
    ) -> Self {
        assert!(
            wavelengths > 0 && wavelengths <= 128,
            "open-loop simulator supports 1..=128 wavelengths, got {wavelengths}"
        );
        assert!(
            rate.value() > 0.0,
            "per-wavelength data rate must be strictly positive, got {rate}"
        );
        match &mode {
            WavelengthMode::Dynamic(DynamicPolicy::Greedy { cap }) => {
                assert!(*cap > 0, "greedy burst cap must be at least 1");
            }
            WavelengthMode::Dynamic(DynamicPolicy::Single) => {}
            WavelengthMode::Static(map) => {
                assert_eq!(
                    map.wavelengths(),
                    wavelengths,
                    "static flow map was built for a different comb"
                );
                assert_eq!(
                    map.nodes,
                    ring.node_count(),
                    "static flow map was built for a different ring"
                );
            }
        }
        Self {
            ring,
            wavelengths,
            rate,
            mode,
        }
    }

    /// Routes a message along the shortest ring direction
    /// (clockwise on ties), matching `RouteStrategy::Shortest`.
    fn route(&self, src: NodeId, dst: NodeId) -> RingPath {
        let direction = self.ring.shortest_direction(src, dst);
        RingPath::new(&self.ring, src, dst, direction)
    }

    fn segment_slot(&self, seg: DirectedSegment) -> usize {
        let n = self.ring.node_count();
        match seg.direction {
            onoc_topology::Direction::Clockwise => seg.index,
            onoc_topology::Direction::CounterClockwise => n + seg.index,
        }
    }

    /// Drains `source` to completion.
    ///
    /// # Errors
    ///
    /// Returns [`OpenLoopError`] on unordered, foreign-node or degenerate
    /// events. The stream is validated as it is consumed.
    pub fn run<S: TrafficSource>(&self, mut source: S) -> Result<OpenLoopReport, OpenLoopError> {
        let n = self.ring.node_count();
        let mut pending: Vec<TrafficEvent> = Vec::new();
        let mut routes: Vec<RingPath> = Vec::new();
        let mut records: Vec<MsgRecord> = Vec::new();
        let mut granted: Vec<Vec<WavelengthId>> = Vec::new();
        let mut offered_bits = 0.0f64;
        let mut last_injection = 0u64;
        let mut last_time = 0u64;
        let mut blocked_attempts = 0usize;

        // Dynamic-mode state: busy masks plus one FIFO per source ONI.
        let mut busy = vec![0u128; 2 * n];
        let mut source_queues: Vec<VecDeque<usize>> = vec![VecDeque::new(); n];
        // Static-mode state: next free cycle per flow.
        let mut flow_free_at: HashMap<(NodeId, NodeId), u64> = HashMap::new();

        let mut queue: BinaryHeap<Reverse<(u64, Event)>> = BinaryHeap::new();
        let mut next_from_source = source.next_event();
        let mut horizon = 0u64;
        let mut segment_busy: HashMap<DirectedSegment, u64> = HashMap::new();
        let mut lane_busy = vec![0u64; self.wavelengths];

        loop {
            // Pull every source event that is due before the next
            // scheduled completion (or all of them if none is scheduled).
            while let Some(event) = next_from_source {
                let due_now = match queue.peek() {
                    Some(&Reverse((t, _))) => event.time <= t,
                    None => true,
                };
                if !due_now {
                    break;
                }
                if event.time < last_time {
                    return Err(OpenLoopError::UnorderedSource {
                        time: event.time,
                        previous: last_time,
                    });
                }
                last_time = event.time;
                for node in [event.src, event.dst] {
                    if !self.ring.contains(node) {
                        return Err(OpenLoopError::ForeignNode { node, nodes: n });
                    }
                }
                if event.src == event.dst || event.volume.value() <= 0.0 {
                    return Err(OpenLoopError::DegenerateEvent {
                        index: pending.len(),
                    });
                }
                let id = pending.len();
                pending.push(event);
                routes.push(self.route(event.src, event.dst));
                records.push(MsgRecord {
                    src: event.src,
                    dst: event.dst,
                    injected: event.time,
                    started: 0,
                    completed: 0,
                    lanes: 0,
                });
                granted.push(Vec::new());
                offered_bits += event.volume.value();
                last_injection = last_injection.max(event.time);
                queue.push(Reverse((event.time, Event::Injected(id))));
                next_from_source = source.next_event();
            }

            let Some(Reverse((now, event))) = queue.pop() else {
                break;
            };
            horizon = horizon.max(now);

            match event {
                Event::Injected(id) => match &self.mode {
                    WavelengthMode::Dynamic(policy) => {
                        let src = pending[id].src.0;
                        // The NI transmits in order: an earlier queued
                        // message blocks this one even if its own path is
                        // free.
                        if !source_queues[src].is_empty()
                            || !self.try_start_dynamic(
                                id,
                                now,
                                *policy,
                                &pending,
                                &routes,
                                &mut busy,
                                &mut records,
                                &mut granted,
                                &mut queue,
                            )
                        {
                            blocked_attempts += 1;
                            source_queues[src].push_back(id);
                        }
                    }
                    WavelengthMode::Static(map) => {
                        let (src, dst) = (pending[id].src, pending[id].dst);
                        let lanes = map.lanes(src, dst);
                        if lanes.is_empty() {
                            return Err(OpenLoopError::UnmappedFlow { src, dst });
                        }
                        let free_at = flow_free_at.get(&(src, dst)).copied().unwrap_or(0);
                        let start = now.max(free_at);
                        if start > now {
                            blocked_attempts += 1;
                        }
                        let duration = self.duration(pending[id].volume, lanes.len());
                        let end = start + duration;
                        flow_free_at.insert((src, dst), end);
                        records[id].started = start;
                        records[id].completed = end;
                        records[id].lanes = lanes.len();
                        granted[id] = lanes.to_vec();
                        queue.push(Reverse((end, Event::Completed(id))));
                    }
                },
                Event::Completed(id) => {
                    // Accumulate occupancy on the way out.
                    let span = records[id].completed - records[id].started;
                    let lanes = granted[id].len() as u64;
                    for seg in routes[id].segments() {
                        *segment_busy.entry(seg).or_insert(0) += span * lanes;
                    }
                    for lane in &granted[id] {
                        lane_busy[lane.index()] += span * routes[id].hops() as u64;
                    }
                    if let WavelengthMode::Dynamic(policy) = &self.mode {
                        let mask = granted[id]
                            .iter()
                            .fold(0u128, |m, ch| m | (1 << ch.index()));
                        for seg in routes[id].segments() {
                            busy[self.segment_slot(seg)] &= !mask;
                        }
                        // Retry each source's head; a started head unblocks
                        // the next message behind it.
                        for source_queue in &mut source_queues {
                            while let Some(&head) = source_queue.front() {
                                if self.try_start_dynamic(
                                    head,
                                    now,
                                    *policy,
                                    &pending,
                                    &routes,
                                    &mut busy,
                                    &mut records,
                                    &mut granted,
                                    &mut queue,
                                ) {
                                    source_queue.pop_front();
                                } else {
                                    break;
                                }
                            }
                        }
                    }
                }
            }
        }

        debug_assert!(
            source_queues.iter().all(VecDeque::is_empty),
            "completions always drain the source queues"
        );
        let delivered_bits = pending.iter().map(|e| e.volume.value()).sum();
        let (conflict_count, conflict_examples) = match &self.mode {
            WavelengthMode::Dynamic(_) => (0, Vec::new()),
            WavelengthMode::Static(_) => sweep_conflicts(&records, &routes, &granted),
        };
        let mut segment_busy: Vec<_> = segment_busy.into_iter().collect();
        segment_busy
            .sort_by_key(|&(s, _)| (s.index, s.direction != onoc_topology::Direction::Clockwise));
        Ok(OpenLoopReport {
            nodes: n,
            wavelengths: self.wavelengths,
            horizon,
            last_injection,
            records,
            offered_bits,
            delivered_bits,
            blocked_attempts,
            conflict_count,
            conflict_examples,
            segment_busy,
            lane_busy,
        })
    }

    /// Whole-cycle transmission duration over `lanes` wavelengths.
    fn duration(&self, volume: Bits, lanes: usize) -> u64 {
        ((volume.value() / (lanes as f64 * self.rate.value())).ceil() as u64).max(1)
    }

    #[allow(clippy::too_many_arguments)]
    fn try_start_dynamic(
        &self,
        id: usize,
        now: u64,
        policy: DynamicPolicy,
        pending: &[TrafficEvent],
        routes: &[RingPath],
        busy: &mut [u128],
        records: &mut [MsgRecord],
        granted: &mut [Vec<WavelengthId>],
        queue: &mut BinaryHeap<Reverse<(u64, Event)>>,
    ) -> bool {
        let all = if self.wavelengths == 128 {
            u128::MAX
        } else {
            (1u128 << self.wavelengths) - 1
        };
        let free = routes[id]
            .segments()
            .fold(all, |mask, seg| mask & !busy[self.segment_slot(seg)]);
        if free == 0 {
            return false;
        }
        let want = match policy {
            DynamicPolicy::Single => 1,
            DynamicPolicy::Greedy { cap } => cap,
        };
        let mut lanes = Vec::with_capacity(want);
        let mut mask = 0u128;
        for w in 0..self.wavelengths {
            if lanes.len() == want {
                break;
            }
            if free & (1 << w) != 0 {
                lanes.push(WavelengthId(w));
                mask |= 1 << w;
            }
        }
        for seg in routes[id].segments() {
            busy[self.segment_slot(seg)] |= mask;
        }
        let duration = self.duration(pending[id].volume, lanes.len());
        records[id].started = now;
        records[id].completed = now + duration;
        records[id].lanes = lanes.len();
        granted[id] = lanes;
        queue.push(Reverse((now + duration, Event::Completed(id))));
        true
    }
}

/// Counts wavelength collisions with a sweep over per-`(segment, lane)`
/// interval lists — O(k log k) per list instead of all-pairs over every
/// message.
fn sweep_conflicts(
    records: &[MsgRecord],
    routes: &[RingPath],
    granted: &[Vec<WavelengthId>],
) -> (usize, Vec<OpenLoopConflict>) {
    /// The `[(start, end, msg)]` spans driving one (segment, lane) pair.
    type SpanList = Vec<(u64, u64, usize)>;
    let mut intervals: HashMap<(DirectedSegment, WavelengthId), SpanList> = HashMap::new();
    for (id, record) in records.iter().enumerate() {
        for seg in routes[id].segments() {
            for &lane in &granted[id] {
                intervals.entry((seg, lane)).or_default().push((
                    record.started,
                    record.completed,
                    id,
                ));
            }
        }
    }
    let mut keys: Vec<_> = intervals.keys().copied().collect();
    keys.sort_by_key(|&(s, l)| {
        (
            s.index,
            s.direction != onoc_topology::Direction::Clockwise,
            l.index(),
        )
    });
    let mut count = 0usize;
    let mut examples = Vec::new();
    for key in keys {
        let spans = intervals.get_mut(&key).expect("key came from the map");
        spans.sort_unstable();
        // Active set of (end, msg) spans; each overlapping pair counts once.
        let mut active: Vec<(u64, usize)> = Vec::new();
        for &(start, end, id) in spans.iter() {
            active.retain(|&(e, _)| e > start);
            for &(active_end, other) in &active {
                count += 1;
                if examples.len() < CONFLICT_EXAMPLE_CAP {
                    examples.push(OpenLoopConflict {
                        segment: key.0,
                        channel: key.1,
                        first: MsgId(other.min(id)),
                        second: MsgId(other.max(id)),
                        overlap: (start, end.min(active_end)),
                    });
                }
            }
            active.push((end, id));
        }
    }
    (count, examples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use onoc_topology::Direction;

    fn rate() -> BitsPerCycle {
        BitsPerCycle::new(1.0)
    }

    fn ring16() -> RingTopology {
        RingTopology::new(16)
    }

    fn event(time: u64, src: usize, dst: usize, bits: f64) -> TrafficEvent {
        TrafficEvent {
            time,
            src: NodeId(src),
            dst: NodeId(dst),
            volume: Bits::new(bits),
        }
    }

    fn dynamic_single() -> WavelengthMode {
        WavelengthMode::Dynamic(DynamicPolicy::Single)
    }

    #[test]
    fn empty_source_is_a_clean_zero_report() {
        let sim = OpenLoopSimulator::new(ring16(), 4, rate(), dynamic_single());
        let report = sim.run(std::iter::empty()).unwrap();
        assert_eq!(report.records.len(), 0);
        assert_eq!(report.horizon, 0);
        assert_eq!(report.accepted_throughput(), 0.0);
        assert_eq!(report.latency().count, 0);
    }

    #[test]
    fn single_message_latency_is_transmission_time() {
        let sim = OpenLoopSimulator::new(ring16(), 4, rate(), dynamic_single());
        let report = sim.run(vec![event(10, 0, 3, 500.0)].into_iter()).unwrap();
        assert_eq!(report.records.len(), 1);
        // 500 bits over 1 λ at 1 bit/cycle.
        assert_eq!(report.records[0].latency(), 500);
        assert_eq!(report.records[0].queueing(), 0);
        assert_eq!(report.horizon, 510);
    }

    #[test]
    fn contention_queues_fifo_and_counts_blocking() {
        // Two messages on the same 1-λ path at the same instant: the
        // second waits for the first.
        let sim = OpenLoopSimulator::new(ring16(), 1, rate(), dynamic_single());
        let src = vec![event(0, 0, 3, 100.0), event(0, 0, 3, 100.0)];
        let report = sim.run(src.into_iter()).unwrap();
        assert_eq!(report.blocked_attempts, 1);
        assert_eq!(report.records[0].latency(), 100);
        assert_eq!(report.records[1].queueing(), 100);
        assert_eq!(report.records[1].latency(), 200);
    }

    #[test]
    fn disjoint_paths_do_not_interact() {
        let sim = OpenLoopSimulator::new(ring16(), 1, rate(), dynamic_single());
        // 0→2 rides segments 0,1 clockwise; 8→10 rides 8,9: no overlap.
        let src = vec![event(0, 0, 2, 100.0), event(0, 8, 10, 100.0)];
        let report = sim.run(src.into_iter()).unwrap();
        assert_eq!(report.blocked_attempts, 0);
        assert!(report.records.iter().all(|r| r.latency() == 100));
    }

    #[test]
    fn opposite_waveguides_are_independent() {
        // 0→1 (CW, segment 0) and 1→0 (CCW, segment 0) share the physical
        // span but not the waveguide.
        let sim = OpenLoopSimulator::new(ring16(), 1, rate(), dynamic_single());
        let src = vec![event(0, 0, 1, 100.0), event(0, 1, 0, 100.0)];
        let report = sim.run(src.into_iter()).unwrap();
        assert_eq!(report.blocked_attempts, 0);
    }

    #[test]
    fn greedy_mode_uses_the_free_comb() {
        let sim = OpenLoopSimulator::new(
            ring16(),
            8,
            rate(),
            WavelengthMode::Dynamic(DynamicPolicy::Greedy { cap: 8 }),
        );
        let report = sim.run(vec![event(0, 0, 3, 800.0)].into_iter()).unwrap();
        assert_eq!(report.records[0].lanes, 8);
        assert_eq!(report.records[0].latency(), 100);
    }

    #[test]
    fn unordered_source_is_rejected() {
        let sim = OpenLoopSimulator::new(ring16(), 4, rate(), dynamic_single());
        let src = vec![event(10, 0, 3, 100.0), event(5, 0, 3, 100.0)];
        assert_eq!(
            sim.run(src.into_iter()).unwrap_err(),
            OpenLoopError::UnorderedSource {
                time: 5,
                previous: 10
            }
        );
    }

    #[test]
    fn degenerate_and_foreign_events_are_rejected() {
        let sim = OpenLoopSimulator::new(ring16(), 4, rate(), dynamic_single());
        assert!(matches!(
            sim.run(vec![event(0, 3, 3, 100.0)].into_iter()),
            Err(OpenLoopError::DegenerateEvent { index: 0 })
        ));
        assert!(matches!(
            sim.run(vec![event(0, 0, 16, 100.0)].into_iter()),
            Err(OpenLoopError::ForeignNode { .. })
        ));
    }

    #[test]
    fn static_mode_serialises_per_flow() {
        let map = StaticFlowMap::striped(16, 8, 1);
        let sim = OpenLoopSimulator::new(ring16(), 8, rate(), WavelengthMode::Static(map));
        let src = vec![event(0, 0, 3, 100.0), event(10, 0, 3, 100.0)];
        let report = sim.run(src.into_iter()).unwrap();
        // Second message waits for the flow's lane: starts at 100, not 10.
        assert_eq!(report.records[1].started, 100);
        assert_eq!(report.blocked_attempts, 1);
        // Same flow reusing its own lane sequentially never conflicts.
        assert_eq!(report.conflict_count, 0);
    }

    #[test]
    fn static_mode_detects_cross_flow_collisions() {
        // Flows 0→2 (CW segments 0,1) and 1→2 (CW segment 1) share
        // segment 1; force both onto λ1 so they collide there.
        let nodes = 4;
        let mut table = vec![Vec::new(); nodes * nodes];
        table[2] = vec![WavelengthId(0)]; // flow 0→2
        table[nodes + 2] = vec![WavelengthId(0)]; // flow 1→2
        for src in 0..nodes {
            for dst in 0..nodes {
                if src != dst && table[src * nodes + dst].is_empty() {
                    table[src * nodes + dst] = vec![WavelengthId(1)];
                }
            }
        }
        let map = StaticFlowMap::from_table(nodes, 2, table);
        let sim = OpenLoopSimulator::new(
            RingTopology::new(nodes),
            2,
            rate(),
            WavelengthMode::Static(map),
        );
        let src = vec![event(0, 0, 2, 100.0), event(0, 1, 2, 100.0)];
        let report = sim.run(src.into_iter()).unwrap();
        assert_eq!(report.conflict_count, 1);
        let c = report.conflict_examples[0];
        assert_eq!(c.channel, WavelengthId(0));
        assert_eq!(
            c.segment,
            DirectedSegment {
                index: 1,
                direction: Direction::Clockwise
            }
        );
        assert_eq!((c.first, c.second), (MsgId(0), MsgId(1)));
    }

    #[test]
    fn occupancy_accounting_adds_up() {
        let sim = OpenLoopSimulator::new(ring16(), 4, rate(), dynamic_single());
        // One message, 2 hops, 100 cycles on one lane.
        let report = sim.run(vec![event(0, 0, 2, 100.0)].into_iter()).unwrap();
        let busy: u64 = report.segment_busy.iter().map(|&(_, b)| b).sum();
        assert_eq!(busy, 200);
        assert_eq!(report.lane_busy.iter().sum::<u64>(), 200);
        assert!(report.mean_wavelength_occupancy() > 0.0);
        assert!((report.lane_occupancy(WavelengthId(0)) - 200.0 / (100.0 * 32.0)).abs() < 1e-12);
        assert_eq!(report.lane_occupancy(WavelengthId(3)), 0.0);
    }

    #[test]
    fn latency_stats_percentiles() {
        let stats = LatencyStats::from_samples((1..=100).collect());
        assert_eq!(stats.count, 100);
        assert!((stats.mean - 50.5).abs() < 1e-12);
        assert!((stats.p50 - 50.5).abs() < 1e-9);
        assert!((stats.p99 - 99.01).abs() < 1e-9);
        assert_eq!(stats.max, 100);
        let empty = LatencyStats::from_samples(Vec::new());
        assert_eq!(empty.count, 0);
        assert_eq!(empty.max, 0);
    }

    #[test]
    fn throughput_matches_offered_when_unsaturated() {
        let sim = OpenLoopSimulator::new(ring16(), 8, rate(), dynamic_single());
        let src: Vec<_> = (0..10)
            .map(|k| event(k * 200, (k % 15) as usize, ((k % 15) + 1) as usize, 100.0))
            .collect();
        let report = sim.run(src.into_iter()).unwrap();
        assert_eq!(report.blocked_attempts, 0);
        assert_eq!(report.offered_bits, 1_000.0);
        assert_eq!(report.delivered_bits, 1_000.0);
        assert!(report.accepted_throughput() > 0.0);
    }

    #[test]
    fn flow_latency_grouping() {
        let sim = OpenLoopSimulator::new(ring16(), 8, rate(), dynamic_single());
        let src = vec![
            event(0, 0, 3, 100.0),
            event(0, 5, 9, 200.0),
            event(500, 0, 3, 100.0),
        ];
        let report = sim.run(src.into_iter()).unwrap();
        let by_flow = report.latency_by_flow();
        assert_eq!(by_flow.len(), 2);
        assert_eq!(by_flow[0].0, (NodeId(0), NodeId(3)));
        assert_eq!(by_flow[0].1.count, 2);
        assert_eq!(by_flow[1].1.count, 1);
    }
}
