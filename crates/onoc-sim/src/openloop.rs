//! The open/closed-loop traffic engine: simulate *streams of timed
//! messages* instead of a closed task graph.
//!
//! The task-graph simulators ([`Simulator`](crate::Simulator),
//! [`DynamicSimulator`](crate::DynamicSimulator)) replay one application
//! whose communications are gated by task dependencies. Saturation studies
//! (Dally & Towles ch. 23; Das et al., arXiv:1608.06972) instead drive the
//! network with timed message streams, and the figure of merit is the
//! latency distribution as offered load approaches capacity.
//!
//! [`OpenLoopSimulator`] polls a [`TrafficSource`] for timed
//! [`TrafficEvent`]s and services them on the ring WDM fabric. Two
//! orthogonal policies parameterise one shared event core:
//!
//! * **Wavelength discipline** ([`WavelengthMode`]):
//!   * **Dynamic** — runtime arbitration like
//!     [`DynamicSimulator`](crate::DynamicSimulator): a message claims free
//!     wavelengths along its whole path or waits. Every ONI keeps a FIFO
//!     injection queue — a node's messages transmit in order (head-of-line
//!     at the network interface), different nodes arbitrate independently.
//!     Per-source queues keep retry work O(nodes) per release, so saturated
//!     sweeps stay fast.
//!   * **Static** — every ordered `(src, dst)` flow owns a fixed wavelength
//!     set ([`StaticFlowMap`]); messages of one flow serialise on their own
//!     lanes, and the simulator *checks* rather than arbitrates: any two
//!     flows that ever drive a common wavelength on a common directed
//!     segment at the same time are recorded as [`OpenLoopConflict`]s. This
//!     is the open-loop analogue of the §III-D static-validity checker.
//!
//! * **Injection policy** ([`InjectionMode`]): pure open loop (offered
//!   time is admission time, queues may grow without bound past
//!   saturation), credit-based closed loop (per-source in-flight window,
//!   credits returned on delivery), or ECN-style closed loop (sources
//!   halve their offered rate on congestion marks and additively
//!   recover). See the [`injection`](crate::InjectionMode) docs. Closed
//!   loops bound queue growth, so *sustained* operating points near the
//!   saturation knee are measurable — accepted throughput plateaus
//!   instead of queueing delay diverging.
//!
//! Synthetic traffic patterns that feed this interface live in the
//! `onoc-traffic` crate; the trait is defined here so the engine has no
//! dependency on how events are produced.

use std::collections::VecDeque;

use onoc_photonics::WavelengthId;
use onoc_topology::{DirectedSegment, NodeId, RingPath, RingTopology, segment_count};
use onoc_units::{Bits, BitsPerCycle};

use onoc_wa::{HealPolicy, reassign_flows_on_lane_loss};

use crate::DynamicPolicy;
use crate::calendar::EventQueue;
use crate::fault::{self, CorruptionModel, DropFact, FaultCause, FaultPlan, GeTimeline, HealFact};
use crate::injection::{AimdParams, InjectionMode, LaneArbiter, SourceGate};
use crate::probe::{NullProbe, ReportProbe, SimProbe, TxFact};
use crate::report::{MsgId, MsgRecord, OpenLoopConflict, OpenLoopReport};
use crate::transport::TransportMode;

/// One injected message: `volume` bits from `src` to `dst`, offered to the
/// network interface at cycle `time`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficEvent {
    /// Offered injection cycle.
    pub time: u64,
    /// Producing ONI.
    pub src: NodeId,
    /// Consuming ONI.
    pub dst: NodeId,
    /// Message size.
    pub volume: Bits,
}

/// A pull-based producer of timed messages.
///
/// The engine polls `next_event` and requires the stream to be ordered by
/// nondecreasing `time` (violations are rejected at run time). Sources are
/// finite; an open-ended source is expressed by generating up to a horizon.
pub trait TrafficSource {
    /// Returns the next message, or `None` when the stream is exhausted.
    fn next_event(&mut self) -> Option<TrafficEvent>;
}

/// Blanket adapter: any iterator of events is a source.
impl<I: Iterator<Item = TrafficEvent>> TrafficSource for I {
    fn next_event(&mut self) -> Option<TrafficEvent> {
        self.next()
    }
}

/// A fixed design-time wavelength set per ordered `(src, dst)` flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticFlowMap {
    nodes: usize,
    wavelengths: usize,
    /// Indexed by `src * nodes + dst`; empty for the diagonal.
    lanes: Vec<Vec<WavelengthId>>,
}

impl StaticFlowMap {
    /// Stripes `lanes_per_flow` consecutive wavelengths over the flows in
    /// flow-id order (`src * nodes + dst`), wrapping around the comb.
    ///
    /// With enough wavelengths per concurrently-active segment the stripe
    /// is conflict-free; undersized combs intentionally collide so the
    /// checker has something to report.
    ///
    /// # Panics
    ///
    /// Panics if `nodes < 2`, `wavelengths == 0`, `lanes_per_flow == 0` or
    /// `lanes_per_flow > wavelengths`.
    #[must_use]
    pub fn striped(nodes: usize, wavelengths: usize, lanes_per_flow: usize) -> Self {
        assert!(nodes >= 2, "a ring needs at least 2 nodes, got {nodes}");
        assert!(wavelengths > 0, "the comb needs at least one wavelength");
        assert!(
            lanes_per_flow >= 1 && lanes_per_flow <= wavelengths,
            "lanes per flow must be in 1..={wavelengths}, got {lanes_per_flow}"
        );
        let mut lanes = vec![Vec::new(); nodes * nodes];
        let mut next = 0usize;
        for src in 0..nodes {
            for dst in 0..nodes {
                if src == dst {
                    continue;
                }
                let set = (0..lanes_per_flow)
                    .map(|k| WavelengthId((next + k) % wavelengths))
                    .collect();
                lanes[src * nodes + dst] = set;
                next = (next + lanes_per_flow) % wavelengths;
            }
        }
        Self {
            nodes,
            wavelengths,
            lanes,
        }
    }

    /// Builds a map from an explicit per-flow table (indexed
    /// `src * nodes + dst`; diagonal entries must be empty).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch, an empty off-diagonal entry, or a lane
    /// outside the comb.
    #[must_use]
    pub fn from_table(nodes: usize, wavelengths: usize, lanes: Vec<Vec<WavelengthId>>) -> Self {
        assert_eq!(lanes.len(), nodes * nodes, "need one entry per (src, dst)");
        for (i, set) in lanes.iter().enumerate() {
            let (src, dst) = (i / nodes, i % nodes);
            if src == dst {
                assert!(set.is_empty(), "diagonal flow n{src}→n{dst} must be empty");
            } else {
                assert!(!set.is_empty(), "flow n{src}→n{dst} has no wavelengths");
                let mut seen = 0u128;
                for lane in set {
                    assert!(
                        lane.index() < wavelengths,
                        "flow n{src}→n{dst} uses {lane} outside a {wavelengths}-λ comb"
                    );
                    assert!(
                        seen & (1 << lane.index()) == 0,
                        "flow n{src}→n{dst} lists {lane} twice"
                    );
                    seen |= 1 << lane.index();
                }
            }
        }
        Self {
            nodes,
            wavelengths,
            lanes,
        }
    }

    /// Internal constructor for synthesised maps (see `flows.rs`); unlike
    /// [`StaticFlowMap::from_table`], off-diagonal entries may stay empty —
    /// the engine rejects traffic on them with
    /// [`OpenLoopError::UnmappedFlow`].
    pub(crate) fn from_parts(
        nodes: usize,
        wavelengths: usize,
        lanes: Vec<Vec<WavelengthId>>,
    ) -> Self {
        debug_assert_eq!(lanes.len(), nodes * nodes);
        Self {
            nodes,
            wavelengths,
            lanes,
        }
    }

    /// The wavelengths owned by the `src → dst` flow.
    #[must_use]
    pub fn lanes(&self, src: NodeId, dst: NodeId) -> &[WavelengthId] {
        &self.lanes[src.0 * self.nodes + dst.0]
    }

    /// Comb size this map was built for.
    #[must_use]
    pub fn wavelengths(&self) -> usize {
        self.wavelengths
    }
}

/// How the engine assigns wavelengths to messages.
#[derive(Debug, Clone, PartialEq)]
pub enum WavelengthMode {
    /// Runtime arbitration with FIFO queueing (see crate docs).
    Dynamic(DynamicPolicy),
    /// Fixed per-flow lanes with conflict *checking* (see crate docs).
    Static(StaticFlowMap),
}

/// Errors raised by the open/closed-loop engine.
#[derive(Debug, Clone, PartialEq)]
pub enum OpenLoopError {
    /// The source produced events with decreasing timestamps.
    UnorderedSource {
        /// Timestamp that went backwards.
        time: u64,
        /// The previously seen timestamp.
        previous: u64,
    },
    /// An event references a node outside the ring.
    ForeignNode {
        /// The offending node.
        node: NodeId,
        /// Ring size.
        nodes: usize,
    },
    /// An event has `src == dst` (the optical layer is not used) or a
    /// nonpositive volume.
    DegenerateEvent {
        /// Index of the offending event in the stream.
        index: usize,
    },
    /// Static mode: the flow map owns no wavelengths for this flow (it was
    /// not in the measured matrix a synthesised map was built from).
    UnmappedFlow {
        /// Producing ONI.
        src: NodeId,
        /// Consuming ONI.
        dst: NodeId,
    },
}

impl core::fmt::Display for OpenLoopError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            OpenLoopError::UnorderedSource { time, previous } => {
                write!(f, "source time went backwards: {time} after {previous}")
            }
            OpenLoopError::ForeignNode { node, nodes } => {
                write!(f, "{node} is not on a {nodes}-node ring")
            }
            OpenLoopError::DegenerateEvent { index } => {
                write!(f, "event {index} is degenerate (self-loop or empty volume)")
            }
            OpenLoopError::UnmappedFlow { src, dst } => {
                write!(f, "static flow map owns no wavelengths for {src}→{dst}")
            }
        }
    }
}

impl std::error::Error for OpenLoopError {}

/// How many conflict examples an [`OpenLoopReport`] retains.
const CONFLICT_EXAMPLE_CAP: usize = 16;

/// Engine events. Variant order is the tiebreak at equal timestamps:
/// completions release lanes and credits first, static transmissions
/// start, gates wake, and only then do fresh offers arrive — so released
/// capacity is reusable in the same cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    /// A transmission delivered its last bit. The payload carries
    /// everything completion processing needs (flow, lanes, start time),
    /// so handling it never has to reach into the in-flight message
    /// window — a random access into a potentially tens-of-megabytes
    /// deque on every completion was the engine's dominant cache miss.
    /// `id` is the first field, so the derived tie-break order (by
    /// message id) is unchanged.
    Completed(CompletedTx),
    /// A static-mode transmission begins driving its lanes
    /// (`(message id, flow, lane mask)`). The mask rides along because a
    /// fault-layer retransmission may drive a *subset* of the flow's
    /// nominal lanes; on the fault-free path it always equals the flow's
    /// full mask. `id` stays the first field, so the derived same-cycle
    /// tie-break (by message id) is unchanged.
    Started((usize, u32, u128)),
    /// A closed-loop gate retries admission for one source.
    GateWake(usize),
    /// A source offers a message to its injection gate.
    Offered(usize),
    /// Fault layer: the wavelength fails at this cycle. Appended after
    /// the fault-free variants, so their same-cycle tie-break order is
    /// untouched.
    LaneDown(u16),
    /// Fault layer: the wavelength recovers.
    LaneUp(u16),
    /// Transport layer: retransmit the message.
    Redo(usize),
    /// Fault layer: the message is declared lost at admission time (all
    /// of its lanes are down with no recovery pending). Deferred through
    /// the calendar so loss bookkeeping never recurses through the gate
    /// drains that admitted it.
    Abandon(usize),
}

/// Payload of [`Event::Completed`]: the transmission's identity and the
/// accounting inputs (`id` first — it is the same-cycle tie-break key).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct CompletedTx {
    id: usize,
    start: u64,
    flow: u32,
    mask: u128,
}

/// Per-message flag bits kept in a compact deque parallel to the message
/// window (1 byte instead of a full `MsgState` cache line on the
/// completion path). Shared with the parallel merger (`pdes.rs`), whose
/// global retirement replay mirrors the serial flag discipline.
pub(crate) mod flag {
    /// Transmission completed; the message may retire.
    pub(crate) const DONE: u8 = 1;
    /// ECN congestion mark, set when the transmission starts.
    pub(crate) const MARKED: u8 = 2;
    /// Permanently lost (fault layer): retires silently, contributing to
    /// loss counters instead of delivery statistics.
    pub(crate) const LOST: u8 = 4;
    /// At least one transmission attempt failed (recovery-latency
    /// tracking).
    pub(crate) const FAILED: u8 = 8;
}

/// Instrumentation hooks for the conservative-PDES worker (`pdes.rs`): a
/// tapped run reports every probe-visible fact *keyed by its global
/// merge position*, so the deterministic merger can replay the exact
/// serial fact order across shard boundaries. Every hook defaults to a
/// no-op and [`NoTap`] runs monomorphise to the untapped engine (the
/// same zero-cost contract as [`SimProbe`]); call sites that do real
/// work to assemble hook arguments are guarded by [`EngineTap::ACTIVE`].
pub(crate) trait EngineTap {
    /// Whether this tap observes anything (guards argument assembly on
    /// the serial hot path).
    const ACTIVE: bool = false;

    /// A queue event at `time` starts processing. `rank` is the serial
    /// same-cycle tie-break (`1 + Event variant order`; rank 0 is
    /// reserved for source-event registration) and `tie` the in-rank
    /// tie-break key (global message id, source index, or lane).
    #[inline]
    fn context(&mut self, time: u64, rank: u8, tie: u64) {
        let _ = (time, rank, tie);
    }

    /// Registration of the next source event (assigns the next local
    /// message id, in trace order).
    #[inline]
    fn offered(&mut self, time: u64, src: NodeId, volume: f64) {
        let _ = (time, src, volume);
    }

    /// Mirror of [`SimProbe::admitted`].
    #[inline]
    fn admitted(&mut self, now: u64, stall: u64, src: NodeId) {
        let _ = (now, stall, src);
    }

    /// Mirror of [`SimProbe::started`], with the flow id for conflict
    /// replay.
    #[inline]
    fn started(&mut self, fact: &TxFact, flow: u32) {
        let _ = (fact, flow);
    }

    /// Mirror of [`SimProbe::completed`].
    #[inline]
    fn completed(&mut self, fact: &TxFact, flow: u32) {
        let _ = (fact, flow);
    }

    /// Mirror of [`SimProbe::dropped`].
    #[inline]
    fn dropped(&mut self, fact: &DropFact, flow: u32) {
        let _ = (fact, flow);
    }

    /// Mirror of [`SimProbe::lost`] (fires at the loss decision).
    #[inline]
    fn lost(&mut self, id: usize, record: &MsgRecord, volume: f64, attempts: u32) {
        let _ = (id, record, volume, attempts);
    }

    /// Message `id` resolved (delivered or lost): the final flag byte and
    /// retirement inputs, fired exactly where the serial engine runs
    /// `retire_front` — the merger's global retirement replay runs here.
    #[inline]
    fn resolved(
        &mut self,
        id: usize,
        record: &MsgRecord,
        volume: f64,
        flags: u8,
        hops: usize,
        recovery: u64,
    ) {
        let _ = (id, record, volume, flags, hops, recovery);
    }

    /// Mirror of [`SimProbe::lane_event`].
    #[inline]
    fn lane_event(&mut self, now: u64, lane: usize, down: bool) {
        let _ = (now, lane, down);
    }

    /// Maps a local message id to its global id (identity when untapped);
    /// keeps per-message corruption draws shard-invariant.
    #[inline]
    fn global_id(&self, id: usize) -> u64 {
        id as u64
    }

    /// The run swept stranded traffic at its *local* horizon — a sharded
    /// run cannot reproduce this globally. Unreachable under the
    /// `pdes.rs` eligibility gate; the worker tap turns it into a loud
    /// failure rather than silent divergence.
    #[inline]
    fn stranded_sweep(&mut self) {}
}

/// The do-nothing tap: serial runs compile to the untapped engine.
pub(crate) struct NoTap;

impl EngineTap for NoTap {}

/// Forwarding through a mutable reference, so the PDES worker keeps
/// ownership of its tap across the run.
impl<T: EngineTap> EngineTap for &mut T {
    const ACTIVE: bool = T::ACTIVE;

    #[inline]
    fn context(&mut self, time: u64, rank: u8, tie: u64) {
        (**self).context(time, rank, tie);
    }
    #[inline]
    fn offered(&mut self, time: u64, src: NodeId, volume: f64) {
        (**self).offered(time, src, volume);
    }
    #[inline]
    fn admitted(&mut self, now: u64, stall: u64, src: NodeId) {
        (**self).admitted(now, stall, src);
    }
    #[inline]
    fn started(&mut self, fact: &TxFact, flow: u32) {
        (**self).started(fact, flow);
    }
    #[inline]
    fn completed(&mut self, fact: &TxFact, flow: u32) {
        (**self).completed(fact, flow);
    }
    #[inline]
    fn dropped(&mut self, fact: &DropFact, flow: u32) {
        (**self).dropped(fact, flow);
    }
    #[inline]
    fn lost(&mut self, id: usize, record: &MsgRecord, volume: f64, attempts: u32) {
        (**self).lost(id, record, volume, attempts);
    }
    #[inline]
    fn resolved(
        &mut self,
        id: usize,
        record: &MsgRecord,
        volume: f64,
        flags: u8,
        hops: usize,
        recovery: u64,
    ) {
        (**self).resolved(id, record, volume, flags, hops, recovery);
    }
    #[inline]
    fn lane_event(&mut self, now: u64, lane: usize, down: bool) {
        (**self).lane_event(now, lane, down);
    }
    #[inline]
    fn global_id(&self, id: usize) -> u64 {
        (**self).global_id(id)
    }
    #[inline]
    fn stranded_sweep(&mut self) {
        (**self).stranded_sweep();
    }
}

/// Hash-stream namespace for per-lane stochastic fault draws, disjoint
/// from the per-message corruption streams (which use the message id).
const LANE_STREAM: u64 = 1 << 63;

/// Configuration of the self-healing allocator: what the engine does
/// when a lane serving static flows goes dark mid-run.
///
/// Attach with [`OpenLoopSimulator::with_healing`]. With the default
/// ([`HealPolicy::Park`], no threshold) the engine behaves exactly as
/// if no healing were configured — affected flows park until repair.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HealingConfig {
    /// Re-allocation policy invoked at each lane-down quiesce point.
    pub policy: HealPolicy,
    /// Gilbert–Elliott degradation trigger: when an attempt is corrupted
    /// while a lane of its mask sits in the bad state and the bad-state
    /// BER is at least this threshold, the lane is administratively
    /// taken out of service for the rest of its bad sojourn (the same
    /// `LaneDown`/`LaneUp` pair a scheduled fault produces, so parked
    /// traffic and the healer see an ordinary outage). `None` disables
    /// the trigger.
    pub ber_threshold: Option<f64>,
}

/// The open/closed-loop engine. See the module docs for semantics.
#[derive(Debug)]
pub struct OpenLoopSimulator {
    pub(crate) ring: RingTopology,
    pub(crate) wavelengths: usize,
    pub(crate) rate: BitsPerCycle,
    pub(crate) mode: WavelengthMode,
    pub(crate) injection: InjectionMode,
    pub(crate) faults: Option<FaultPlan>,
    pub(crate) transport: TransportMode,
    pub(crate) aimd: AimdParams,
    pub(crate) healing: Option<HealingConfig>,
}

impl OpenLoopSimulator {
    /// Creates an open-loop engine over a `wavelengths`-channel comb
    /// (injection policy [`InjectionMode::Open`]).
    ///
    /// # Panics
    ///
    /// Panics if `wavelengths` is outside `1..=128`, `rate` is not
    /// strictly positive, a greedy policy has `cap == 0`, or a static map
    /// disagrees with `wavelengths`.
    #[must_use]
    pub fn new(
        ring: RingTopology,
        wavelengths: usize,
        rate: BitsPerCycle,
        mode: WavelengthMode,
    ) -> Self {
        Self::with_injection(ring, wavelengths, rate, mode, InjectionMode::Open)
    }

    /// Creates an engine with an explicit injection policy.
    ///
    /// # Panics
    ///
    /// Panics on the conditions of [`OpenLoopSimulator::new`], a zero
    /// credit window, or an ECN threshold outside `(0, 1]`.
    #[must_use]
    pub fn with_injection(
        ring: RingTopology,
        wavelengths: usize,
        rate: BitsPerCycle,
        mode: WavelengthMode,
        injection: InjectionMode,
    ) -> Self {
        assert!(
            wavelengths > 0 && wavelengths <= 128,
            "open-loop simulator supports 1..=128 wavelengths, got {wavelengths}"
        );
        assert!(
            rate.value() > 0.0,
            "per-wavelength data rate must be strictly positive, got {rate}"
        );
        match &mode {
            WavelengthMode::Dynamic(DynamicPolicy::Greedy { cap }) => {
                assert!(*cap > 0, "greedy burst cap must be at least 1");
            }
            WavelengthMode::Dynamic(DynamicPolicy::Single) => {}
            WavelengthMode::Static(map) => {
                assert_eq!(
                    map.wavelengths(),
                    wavelengths,
                    "static flow map was built for a different comb"
                );
                assert_eq!(
                    map.nodes,
                    ring.node_count(),
                    "static flow map was built for a different ring"
                );
            }
        }
        injection.validate();
        Self {
            ring,
            wavelengths,
            rate,
            mode,
            injection,
            faults: None,
            transport: TransportMode::None,
            aimd: AimdParams::default(),
            healing: None,
        }
    }

    /// Attaches a fault plan: scheduled/stochastic lane outages and/or
    /// BER-driven message corruption. Without one (and with
    /// [`TransportMode::None`]) the engine takes the fault-free fast
    /// path, bit-identical to a plain run.
    ///
    /// # Panics
    ///
    /// Panics if the plan references a lane outside the comb, schedules
    /// a zero-length outage, or carries degenerate rates (see
    /// [`FaultPlan::validate`]).
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        plan.validate(self.ring.node_count(), self.wavelengths);
        self.faults = Some(plan);
        self
    }

    /// Selects the reliable-transport recovery mode layered over the
    /// injection policy.
    ///
    /// # Panics
    ///
    /// Panics on degenerate windows (see [`TransportMode::validate`]).
    #[must_use]
    pub fn with_transport(mut self, transport: TransportMode) -> Self {
        transport.validate();
        self.transport = transport;
        self
    }

    /// Overrides the ECN AIMD pacing constants.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range constants (see [`AimdParams::validate`]).
    #[must_use]
    pub fn with_aimd(mut self, aimd: AimdParams) -> Self {
        aimd.validate();
        self.aimd = aimd;
        self
    }

    /// Attaches the self-healing allocator: at every lane-down quiesce
    /// point the engine re-packs the affected static flows onto
    /// surviving lanes per `healing.policy`, swaps the new map in, and
    /// emits a [`HealFact`]. With [`HealPolicy::Park`] and no BER
    /// threshold this is a no-op — runs stay bit-identical to an engine
    /// without healing (proptested).
    ///
    /// # Panics
    ///
    /// Panics if a re-pack policy is requested without a static flow
    /// map, or the BER threshold is outside `(0, 1)`.
    #[must_use]
    pub fn with_healing(mut self, healing: HealingConfig) -> Self {
        assert!(
            healing.policy == HealPolicy::Park || matches!(self.mode, WavelengthMode::Static(_)),
            "re-pack heal policies require a static flow map"
        );
        if let Some(th) = healing.ber_threshold {
            assert!(
                th.is_finite() && th > 0.0 && th < 1.0,
                "healing BER threshold must be in (0, 1), got {th}"
            );
        }
        self.healing = Some(healing);
        self
    }

    /// The attached healing configuration, if any.
    #[must_use]
    pub fn healing(&self) -> Option<HealingConfig> {
        self.healing
    }

    /// The injection policy this engine runs under.
    #[must_use]
    pub fn injection(&self) -> InjectionMode {
        self.injection
    }

    /// The attached fault plan, if any.
    #[must_use]
    pub fn faults(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// The transport recovery mode this engine runs under.
    #[must_use]
    pub fn transport(&self) -> TransportMode {
        self.transport
    }

    /// Routes a message along the shortest ring direction
    /// (clockwise on ties), matching `RouteStrategy::Shortest`.
    fn route(&self, src: NodeId, dst: NodeId) -> RingPath {
        let direction = self.ring.shortest_direction(src, dst);
        RingPath::new(&self.ring, src, dst, direction)
    }

    /// Drains `source` to completion, retaining every [`MsgRecord`]
    /// ([`ReportMode::Full`]).
    ///
    /// # Errors
    ///
    /// Returns [`OpenLoopError`] on unordered, foreign-node, degenerate
    /// or (static mode) unmapped events. The stream is validated as it is
    /// consumed.
    pub fn run<S: TrafficSource>(&self, source: S) -> Result<OpenLoopReport, OpenLoopError> {
        self.run_with_scratch(source, &mut SimScratch::new(), ReportMode::Full)
    }

    /// [`OpenLoopSimulator::run`] with an attached [`SimProbe`]: every
    /// simulation fact (admissions, transmission starts/completions,
    /// retirements, the final horizon) streams into `probe` while the
    /// report is produced exactly as without it.
    ///
    /// # Errors
    ///
    /// As for [`OpenLoopSimulator::run`].
    pub fn run_probed<S: TrafficSource, P: SimProbe>(
        &self,
        source: S,
        probe: &mut P,
    ) -> Result<OpenLoopReport, OpenLoopError> {
        self.run_with_scratch_probed(source, &mut SimScratch::new(), ReportMode::Full, probe)
    }

    /// Drains `source` in streaming mode: per-message records are folded
    /// into `O(bins + sources)` aggregates as soon as every earlier
    /// message has retired, so memory tracks the in-flight window instead
    /// of the trace length. See [`ReportMode::Streaming`].
    ///
    /// # Errors
    ///
    /// As for [`OpenLoopSimulator::run`].
    pub fn run_streaming<S: TrafficSource>(
        &self,
        source: S,
    ) -> Result<OpenLoopReport, OpenLoopError> {
        self.run_with_scratch(source, &mut SimScratch::new(), ReportMode::Streaming)
    }

    /// Drains `source` reusing `scratch`'s buffers, so back-to-back runs
    /// (sweep workers, benchmarks) stay allocation-free once warm.
    ///
    /// # Errors
    ///
    /// As for [`OpenLoopSimulator::run`]. The scratch is returned to a
    /// reusable state on both success and failure.
    pub fn run_with_scratch<S: TrafficSource>(
        &self,
        source: S,
        scratch: &mut SimScratch,
        mode: ReportMode,
    ) -> Result<OpenLoopReport, OpenLoopError> {
        self.run_with_scratch_probed(source, scratch, mode, &mut NullProbe)
    }

    /// The fully general entry point: caller-provided buffers, explicit
    /// [`ReportMode`], and an attached [`SimProbe`]. The probe receives
    /// every engine fact; a [`NullProbe`](crate::NullProbe) run
    /// monomorphises to the probe-free engine, and the steady-state admit
    /// path stays allocation-free as long as the probe's does.
    ///
    /// # Errors
    ///
    /// As for [`OpenLoopSimulator::run`]. The scratch is returned to a
    /// reusable state on both success and failure; the probe observes
    /// only the facts emitted before the failure (and no `finished`).
    pub fn run_with_scratch_probed<S: TrafficSource, P: SimProbe>(
        &self,
        source: S,
        scratch: &mut SimScratch,
        mode: ReportMode,
        probe: &mut P,
    ) -> Result<OpenLoopReport, OpenLoopError> {
        self.run_tapped(source, scratch, mode, probe, NoTap)
    }

    /// Crate-internal entry point with an [`EngineTap`] attached — the
    /// PDES worker (`pdes.rs`) runs the whole serial engine over its
    /// shard's sub-trace with a tap that streams globally-keyed facts to
    /// the merger. Serial runs pass [`NoTap`] and compile to the untapped
    /// engine.
    pub(crate) fn run_tapped<S: TrafficSource, P: SimProbe, T: EngineTap>(
        &self,
        mut source: S,
        scratch: &mut SimScratch,
        mode: ReportMode,
        probe: &mut P,
        tap: T,
    ) -> Result<OpenLoopReport, OpenLoopError> {
        let mut run = RunState::new(self, std::mem::take(scratch), mode, probe, tap);
        let outcome = run.drive(&mut source);
        match outcome {
            Ok(()) => {
                let (report, spent) = run.finish();
                *scratch = spent;
                Ok(report)
            }
            Err(e) => {
                *scratch = run.into_scratch();
                Err(e)
            }
        }
    }

    /// Whole-cycle transmission duration over `lanes` wavelengths.
    fn duration(&self, volume: Bits, lanes: usize) -> u64 {
        ((volume.value() / (lanes as f64 * self.rate.value())).ceil() as u64).max(1)
    }
}

/// How an engine run retains per-message results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportMode {
    /// Retain one [`MsgRecord`] per message: exact (interpolated)
    /// quantiles, [`OpenLoopReport::latency_by_flow`], and — in static
    /// mode — retained conflict examples. Memory is `O(messages)`.
    Full,
    /// Fold every retired message into fixed-size aggregates (log-scale
    /// latency/stall histograms, exact count/sum/max, the conservation
    /// integrals). Memory is `O(bins + sources)` plus the in-flight
    /// message window. Quantiles follow the nearest-rank convention and
    /// sit within one histogram bin (≤ 12.5% relative) of exact; static
    /// conflicts are still counted exactly but no examples are kept.
    Streaming,
}

/// One in-flight message's state, kept compact (the public [`MsgRecord`]
/// is materialised only at retirement — its src/dst/injected fields
/// duplicate the event). Retired (folded) as soon as every earlier
/// message has completed, so the window tracks in-flight traffic rather
/// than trace length.
#[derive(Debug, Clone, Copy)]
struct MsgState {
    ev: TrafficEvent,
    admitted: u64,
    started: u64,
    completed: u64,
    /// Offered-time gap to the previous offer of the same source.
    gap: u64,
    /// Wavelength count the message transmitted on.
    lanes: u16,
    /// Transmission attempts so far (0 until the first start).
    attempts: u32,
    /// Go-back-N sequence number within the flow (assigned at
    /// admission).
    seq: u32,
    /// Cycle of the first failed attempt (valid when [`flag::FAILED`]
    /// is set; recovery-latency tracking).
    first_fail: u64,
}

impl MsgState {
    /// The public per-message record (materialised at retirement).
    fn record(&self) -> MsgRecord {
        MsgRecord {
            src: self.ev.src,
            dst: self.ev.dst,
            injected: self.ev.time,
            admitted: self.admitted,
            started: self.started,
            completed: self.completed,
            lanes: self.lanes as usize,
            attempts: self.attempts.max(1),
        }
    }
}

/// One `(segment, lane)` occupancy span retained for the full-mode
/// conflict sweep: `(dense key, start, end, message id)` where the key is
/// `segment_index() * wavelengths + lane`.
pub(crate) type FlatSpan = (u64, u64, u64, usize);

/// Reusable buffers for [`OpenLoopSimulator::run_with_scratch`]: the
/// calendar queue, message window, per-source FIFOs and gates, and the
/// flat dense-indexed occupancy tables. Runs leave the scratch warm, so
/// back-to-back runs on similar geometries make no allocations on the
/// steady-state admit path.
#[derive(Debug)]
pub struct SimScratch {
    msgs: VecDeque<MsgState>,
    /// Per-message [`flag`] bits, parallel to `msgs` — the completion
    /// path touches this 1-byte deque instead of the full message state.
    flags: VecDeque<u8>,
    queue: EventQueue<Event>,
    /// Dynamic-mode NI FIFOs of `(message id, flow)` — the flow rides
    /// along so failed head retries never touch the message window.
    ni_queues: Vec<VecDeque<(usize, u32)>>,
    pub(crate) gates: Vec<SourceGate>,
    arbiter: LaneArbiter,
    /// Static-mode next free cycle per flow, indexed `src * nodes + dst`.
    flow_free_at: Vec<u64>,
    /// Busy wavelength-cycles per dense segment index.
    segment_busy: Vec<u64>,
    /// Busy wavelength-cycles per lane.
    lane_busy: Vec<u64>,
    /// Streaming static mode: live transmissions per
    /// `segment_index * wavelengths + lane` (online conflict counting).
    pub(crate) active_per_lane_seg: Vec<u32>,
    /// Full static mode: retired spans for the offline conflict sweep.
    pub(crate) spans: Vec<FlatSpan>,
    /// Flat route table: `path_offsets[flow]..path_offsets[flow + 1]`
    /// slices `path_segs` into the flow's dense segment indices in
    /// traversal order. Replaces per-claim ring arithmetic.
    pub(crate) path_offsets: Vec<u32>,
    pub(crate) path_segs: Vec<u16>,
    /// Static mode: per-flow lane mask (`0` on the diagonal and for
    /// unmapped flows).
    pub(crate) flow_lane_masks: Vec<u128>,
    /// Dynamic mode: per dense segment, a bitset of sources whose blocked
    /// *head* message's path crosses it (`waiter_words` words per
    /// segment). A failed claim can only succeed after a release on its
    /// own path, so completions retry exactly these sources.
    waiters: Vec<u64>,
    waiter_words: usize,
    /// Per-release candidate accumulator (`waiter_words` long).
    candidates: Vec<u64>,
    /// PDES runs: only build route/mask rows for these flows (sorted
    /// `src * nodes + dst` indices) — other rows stay empty, which is
    /// safe when the engine provably never admits them (a worker only
    /// admits its shard's trace flows; the merger only replays trace
    /// flows). `None` (every public path) builds the full table, whose
    /// cost is quadratic in ring size.
    pub(crate) flow_rows: Option<Vec<u32>>,
}

impl Default for SimScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl SimScratch {
    /// An empty scratch; buffers are sized on first use.
    #[must_use]
    pub fn new() -> Self {
        Self {
            msgs: VecDeque::new(),
            flags: VecDeque::new(),
            queue: EventQueue::new(),
            ni_queues: Vec::new(),
            gates: Vec::new(),
            arbiter: LaneArbiter::new(2, 1),
            flow_free_at: Vec::new(),
            segment_busy: Vec::new(),
            lane_busy: Vec::new(),
            active_per_lane_seg: Vec::new(),
            spans: Vec::new(),
            path_offsets: Vec::new(),
            path_segs: Vec::new(),
            flow_lane_masks: Vec::new(),
            waiters: Vec::new(),
            waiter_words: 0,
            candidates: Vec::new(),
            flow_rows: None,
        }
    }

    /// Restricts route/mask table setup to the given active flows
    /// (sorted, deduplicated `src * nodes + dst` row ids): the build
    /// then costs O(active flows) instead of O(n²) pairs, which
    /// dominates short runs on large rings. The restriction persists
    /// across runs of this scratch until replaced (pass `None` to
    /// restore full tables).
    ///
    /// Rows outside the list stay empty, so the caller must list every
    /// flow its trace injects — the engine trusts the list and a
    /// missing row makes the run meaningless (zero-hop routes, empty
    /// lane masks). Reports are bit-identical to a full-table run for
    /// traces that respect the contract; the intra-run PDES workers use
    /// the same mechanism internally.
    pub fn set_flow_rows(&mut self, rows: Option<Vec<u32>>) {
        debug_assert!(
            rows.as_deref()
                .is_none_or(|r| r.windows(2).all(|w| w[0] < w[1])),
            "flow rows must be sorted and deduplicated"
        );
        self.flow_rows = rows;
    }

    /// Clears and (re)sizes every buffer for a run on the given geometry.
    pub(crate) fn prepare(
        &mut self,
        nodes: usize,
        wavelengths: usize,
        static_mode: bool,
        streaming: bool,
    ) {
        self.msgs.clear();
        self.flags.clear();
        self.queue.clear();
        self.ni_queues.truncate(nodes);
        for q in &mut self.ni_queues {
            q.clear();
        }
        self.ni_queues.resize_with(nodes, VecDeque::new);
        self.gates.truncate(nodes);
        for g in &mut self.gates {
            g.reset();
        }
        self.gates.resize_with(nodes, SourceGate::new);
        self.arbiter.reset(nodes, wavelengths);
        self.flow_free_at.clear();
        if static_mode {
            self.flow_free_at.resize(nodes * nodes, 0);
        }
        self.segment_busy.clear();
        self.segment_busy.resize(segment_count(nodes), 0);
        self.lane_busy.clear();
        self.lane_busy.resize(wavelengths, 0);
        self.active_per_lane_seg.clear();
        if static_mode && streaming {
            self.active_per_lane_seg
                .resize(segment_count(nodes) * wavelengths, 0);
        }
        self.spans.clear();
        self.path_offsets.clear();
        self.path_segs.clear();
        self.flow_lane_masks.clear();
        self.waiter_words = nodes.div_ceil(64);
        self.waiters.clear();
        self.waiters
            .resize(segment_count(nodes) * self.waiter_words, 0);
        self.candidates.clear();
        self.candidates.resize(self.waiter_words, 0);
    }

    /// Builds the flat per-flow route table (and, in static mode, the
    /// per-flow lane masks) for the run's geometry.
    pub(crate) fn build_flow_tables(&mut self, sim: &OpenLoopSimulator) {
        let n = sim.ring.node_count();
        // Sorted-cursor membership test against `flow_rows`; flows are
        // visited in `src * n + dst` order, so one forward walk suffices.
        let rows = self.flow_rows.take();
        let keep = |cursor: &mut usize, flow: u32| match &rows {
            None => true,
            Some(rows) => {
                while *cursor < rows.len() && rows[*cursor] < flow {
                    *cursor += 1;
                }
                rows.get(*cursor) == Some(&flow)
            }
        };
        let mut cursor = 0usize;
        self.path_offsets.reserve(n * n + 1);
        for src in 0..n {
            for dst in 0..n {
                #[allow(clippy::cast_possible_truncation)]
                let flow = (src * n + dst) as u32;
                #[allow(clippy::cast_possible_truncation)]
                self.path_offsets.push(self.path_segs.len() as u32);
                if src != dst && keep(&mut cursor, flow) {
                    let route = sim.route(NodeId(src), NodeId(dst));
                    for seg in route.segments() {
                        #[allow(clippy::cast_possible_truncation)]
                        self.path_segs.push(seg.segment_index() as u16);
                    }
                }
            }
        }
        #[allow(clippy::cast_possible_truncation)]
        self.path_offsets.push(self.path_segs.len() as u32);
        if let WavelengthMode::Static(map) = &sim.mode {
            let mut cursor = 0usize;
            self.flow_lane_masks.reserve(n * n);
            for src in 0..n {
                for dst in 0..n {
                    #[allow(clippy::cast_possible_truncation)]
                    let flow = (src * n + dst) as u32;
                    let mask = if src == dst || !keep(&mut cursor, flow) {
                        0
                    } else {
                        map.lanes(NodeId(src), NodeId(dst))
                            .iter()
                            .fold(0u128, |m, l| m | (1 << l.index()))
                    };
                    self.flow_lane_masks.push(mask);
                }
            }
        }
        self.flow_rows = rows;
    }
}

/// Mutable fault/transport state of one run, boxed off the fault-free
/// path: allocated only when a [`FaultPlan`] or an active
/// [`TransportMode`] is attached, so plain runs stay bit-identical and
/// allocation-free.
struct FaultState {
    /// Currently-down lanes.
    down_mask: u128,
    /// Cycle each currently-down lane went down (valid where
    /// `down_mask` is set).
    down_since: Vec<u64>,
    /// Closed `[down, up)` outage intervals per lane, in time order.
    down_history: Vec<Vec<(u64, u64)>>,
    /// Outstanding scheduled/stochastic recoveries per lane — a parked
    /// message may wait only on lanes that will come back.
    pending_ups: Vec<u32>,
    /// Per-lane count of stochastic draws consumed (the hash counter).
    lane_draws: Vec<u64>,
    /// Go-back-N: per-flow next sequence number to assign.
    next_seq: Vec<u32>,
    /// Go-back-N: per-flow next sequence number the receiver accepts.
    next_expected: Vec<u32>,
    /// Go-back-N: per-flow admitted-but-unresolved count (window gate).
    unacked: Vec<u32>,
    /// PFC: per-destination in-flight count across all sources.
    dst_in_flight: Vec<u32>,
    /// Static-mode messages parked on an all-lanes-down flow, waiting
    /// for a pending recovery (`(message id, flow)`).
    parked: Vec<(usize, u32)>,
    /// Gilbert–Elliott per-lane state timeline (lazily extended; a pure
    /// function of the plan seed).
    ge: Option<GeTimeline>,
    /// End cycle of the administrative (BER-threshold) outage in effect
    /// per lane — guards against quarantining a lane twice for one bad
    /// sojourn.
    admin_until: Vec<u64>,
    failed_attempts: usize,
    retransmitted_bits: f64,
    lost_messages: usize,
    lost_bits: f64,
}

impl FaultState {
    fn new(nodes: usize, wavelengths: usize, gbn: bool, pfc: bool) -> Self {
        let flows = nodes * nodes;
        Self {
            down_mask: 0,
            down_since: vec![0; wavelengths],
            down_history: vec![Vec::new(); wavelengths],
            pending_ups: vec![0; wavelengths],
            lane_draws: vec![0; wavelengths],
            next_seq: vec![0; if gbn { flows } else { 0 }],
            next_expected: vec![0; if gbn { flows } else { 0 }],
            unacked: vec![0; if gbn { flows } else { 0 }],
            dst_in_flight: vec![0; if pfc { nodes } else { 0 }],
            parked: Vec::new(),
            ge: None,
            admin_until: vec![0; wavelengths],
            failed_attempts: 0,
            retransmitted_bits: 0.0,
            lost_messages: 0,
            lost_bits: 0.0,
        }
    }

    /// Whether any lane of `mask` was down at any point of
    /// `[start, end)`.
    fn overlaps_down(&self, mask: u128, start: u64, end: u64) -> bool {
        let mut rest = mask;
        while rest != 0 {
            let lane = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            if self.down_mask & (1u128 << lane) != 0 && self.down_since[lane] < end {
                return true;
            }
            // Intervals are time-ordered; scan back until one ends
            // before the span starts.
            for &(a, b) in self.down_history[lane].iter().rev() {
                if b <= start {
                    break;
                }
                if a < end {
                    return true;
                }
            }
        }
        false
    }
}

/// All mutable state of one engine run: arbitration below the injection
/// gates, the gates themselves, and the fact consumers — the built-in
/// [`ReportProbe`] plus the caller's [`SimProbe`]. Bulky reusable buffers
/// live in the [`SimScratch`].
struct RunState<'a, P: SimProbe, T: EngineTap> {
    sim: &'a OpenLoopSimulator,
    n: usize,
    mode: ReportMode,
    s: SimScratch,
    /// Message id of `s.msgs.front()` (ids are monotone; the window is
    /// the contiguous id range `base..next_id` minus retired prefixes).
    base: usize,
    next_id: usize,
    /// The built-in reporting probe (full/streaming accumulation).
    report: ReportProbe,
    /// The caller's probe, fed the same fact stream.
    probe: &'a mut P,
    /// PDES instrumentation ([`NoTap`] on serial runs).
    tap: T,
    peak_in_flight: usize,
    /// Lane-segments currently driven by in-transit messages (the
    /// instantaneous occupancy numerator for ECN marks).
    active_lane_segments: u64,
    /// `2 × nodes × wavelengths`: the occupancy denominator.
    capacity: f64,
    blocked_attempts: usize,
    /// Messages queued across all NI FIFOs (skip retries when zero).
    waiting: usize,
    /// Streaming static mode: online conflict-pair count.
    online_conflicts: usize,
    offered_bits: f64,
    last_injection: u64,
    last_time: u64,
    horizon: u64,
    /// Fault/transport state; `None` on the fault-free fast path.
    fault: Option<Box<FaultState>>,
}

impl<'a, P: SimProbe, T: EngineTap> RunState<'a, P, T> {
    fn new(
        sim: &'a OpenLoopSimulator,
        mut scratch: SimScratch,
        mode: ReportMode,
        probe: &'a mut P,
        tap: T,
    ) -> Self {
        let n = sim.ring.node_count();
        let static_mode = matches!(sim.mode, WavelengthMode::Static(_));
        scratch.prepare(
            n,
            sim.wavelengths,
            static_mode,
            mode == ReportMode::Streaming,
        );
        scratch.build_flow_tables(sim);
        let mut fault = if sim.faults.is_some() || sim.transport.is_active() {
            Some(Box::new(FaultState::new(
                n,
                sim.wavelengths,
                matches!(sim.transport, TransportMode::GoBackN { .. }),
                matches!(sim.transport, TransportMode::Pfc { .. }),
            )))
        } else {
            None
        };
        if matches!(sim.injection, InjectionMode::CreditPerDst { .. }) {
            for g in &mut scratch.gates {
                g.ensure_dst_pools(n);
            }
        }
        if let Some(plan) = &sim.faults {
            let fs = fault
                .as_deref_mut()
                .expect("fault state exists with a plan");
            if let CorruptionModel::GilbertElliott { p_gb, p_bg, .. } = plan.corruption {
                fs.ge = Some(GeTimeline::new(plan.seed, p_gb, p_bg, sim.wavelengths));
            }
            for f in &plan.scheduled {
                #[allow(clippy::cast_possible_truncation)]
                let lane = f.lane as u16;
                scratch.queue.push(f.at, Event::LaneDown(lane));
                if f.duration != u64::MAX {
                    scratch
                        .queue
                        .push(f.at.saturating_add(f.duration), Event::LaneUp(lane));
                    fs.pending_ups[f.lane] += 1;
                }
            }
            if let Some(st) = plan.stochastic {
                for lane in 0..sim.wavelengths {
                    let at = fault::exp_draw(
                        plan.seed,
                        LANE_STREAM | lane as u64,
                        fs.lane_draws[lane],
                        st.mean_up,
                    );
                    fs.lane_draws[lane] += 1;
                    if at < st.horizon {
                        #[allow(clippy::cast_possible_truncation)]
                        scratch.queue.push(at, Event::LaneDown(lane as u16));
                    }
                }
            }
        }
        #[allow(clippy::cast_precision_loss)]
        let capacity = ((2 * n) * sim.wavelengths) as f64;
        Self {
            sim,
            n,
            mode,
            s: scratch,
            base: 0,
            next_id: 0,
            report: ReportProbe::new(mode == ReportMode::Full),
            probe,
            tap,
            peak_in_flight: 0,
            active_lane_segments: 0,
            capacity,
            blocked_attempts: 0,
            waiting: 0,
            online_conflicts: 0,
            offered_bits: 0.0,
            last_injection: 0,
            last_time: 0,
            horizon: 0,
            fault,
        }
    }

    /// The event loop: pull due source events, then process the earliest
    /// scheduled event, until both run dry.
    fn drive<S: TrafficSource>(&mut self, source: &mut S) -> Result<(), OpenLoopError> {
        let mut next_from_source = source.next_event();
        loop {
            // Pull every source event that is due before the next
            // scheduled event (or all of them if none is scheduled).
            while let Some(event) = next_from_source {
                let due_now = match self.s.queue.peek_time() {
                    Some(t) => event.time <= t,
                    None => true,
                };
                if !due_now {
                    break;
                }
                self.offer(event)?;
                next_from_source = source.next_event();
            }

            let Some((now, event)) = self.s.queue.pop() else {
                if next_from_source.is_none() && self.sweep_stranded() {
                    // Losses release window slots, which can re-admit
                    // (and even deliver) later traffic: resume on
                    // whatever the sweep scheduled.
                    continue;
                }
                break;
            };
            if T::ACTIVE {
                // Global merge key of this event: ranks mirror the
                // `Event` Ord (rank 0 is source registration), ties the
                // in-rank ordering field mapped to its global value.
                let (rank, tie) = match event {
                    Event::Completed(tx) => (1, self.tap.global_id(tx.id)),
                    Event::Started((id, _, _)) => (2, self.tap.global_id(id)),
                    Event::GateWake(s) => (3, s as u64),
                    Event::Offered(id) => (4, self.tap.global_id(id)),
                    Event::LaneDown(lane) => (5, u64::from(lane)),
                    Event::LaneUp(lane) => (6, u64::from(lane)),
                    Event::Redo(id) => (7, self.tap.global_id(id)),
                    Event::Abandon(id) => (8, self.tap.global_id(id)),
                };
                self.tap.context(now, rank, tie);
            }
            if let Event::GateWake(s) = event {
                // A wake superseded by a fresher, earlier one (the gate's
                // `wake_at` moved on) is a no-op: every admission it could
                // have triggered was already handled by the fresh wake or
                // a delivery re-drain. It must not extend the horizon —
                // stale wakes can outlive the last completion.
                if self.s.gates[s].wake_at != Some(now) {
                    continue;
                }
                self.s.gates[s].wake_at = None;
                self.horizon = self.horizon.max(now);
                self.drain_gate(s, now);
                continue;
            }
            if let Event::LaneDown(lane) = event {
                // Fault events don't extend the horizon: an outage after
                // the last delivery is not time the traffic spent.
                self.on_lane_down(lane as usize, now);
                continue;
            }
            if let Event::LaneUp(lane) = event {
                self.on_lane_up(lane as usize, now);
                continue;
            }
            self.horizon = self.horizon.max(now);

            match event {
                Event::Offered(id) => {
                    let src = self.msg(id).ev.src.0;
                    if self.sim.injection.is_closed_loop() || self.sim.transport.is_active() {
                        self.s.gates[src].offered.push_back(id);
                        self.drain_gate(src, now);
                    } else {
                        self.admit(id, now);
                    }
                }
                Event::GateWake(_) | Event::LaneDown(_) | Event::LaneUp(_) => {
                    unreachable!("handled above")
                }
                Event::Redo(id) => self.redo(id, now),
                Event::Abandon(id) => {
                    let (src, dst) = {
                        let m = self.msg(id);
                        (m.ev.src.0, m.ev.dst.0)
                    };
                    #[allow(clippy::cast_possible_truncation)]
                    let flow = (src * self.n + dst) as u32;
                    self.lose_message(id, flow, now);
                }
                Event::Started((id, flow, mask)) => {
                    let (start, end) = {
                        let m = self.msg(id);
                        (m.started, m.completed)
                    };
                    // Occupancy first, so the fact carries the mark the
                    // start itself produced (the bookkeeping emits no
                    // facts of its own).
                    let marked = self.note_transmission_start(flow, mask);
                    if marked {
                        self.s.flags[id - self.base] |= flag::MARKED;
                    }
                    let fact = TxFact {
                        start,
                        end,
                        lanes: mask,
                        hops: self.flow_hops(flow as usize),
                        src: NodeId(flow as usize / self.n),
                        dst: NodeId(flow as usize % self.n),
                        marked,
                    };
                    self.tap.started(&fact, flow);
                    self.probe.started(fact);
                }
                Event::Completed(tx) => self.on_completed(tx, now),
            }
        }
        Ok(())
    }

    fn msg(&mut self, id: usize) -> &mut MsgState {
        &mut self.s.msgs[id - self.base]
    }

    /// Directed-segment count of `flow`'s path.
    fn flow_hops(&self, flow: usize) -> usize {
        (self.s.path_offsets[flow + 1] - self.s.path_offsets[flow]) as usize
    }

    /// Validates and registers one source event, scheduling its offer.
    fn offer(&mut self, event: TrafficEvent) -> Result<(), OpenLoopError> {
        if event.time < self.last_time {
            return Err(OpenLoopError::UnorderedSource {
                time: event.time,
                previous: self.last_time,
            });
        }
        self.last_time = event.time;
        for node in [event.src, event.dst] {
            if !self.sim.ring.contains(node) {
                return Err(OpenLoopError::ForeignNode {
                    node,
                    nodes: self.n,
                });
            }
        }
        if event.src == event.dst || event.volume.value() <= 0.0 {
            return Err(OpenLoopError::DegenerateEvent {
                index: self.next_id,
            });
        }
        if let WavelengthMode::Static(map) = &self.sim.mode {
            if map.lanes(event.src, event.dst).is_empty() {
                return Err(OpenLoopError::UnmappedFlow {
                    src: event.src,
                    dst: event.dst,
                });
            }
        }
        let id = self.next_id;
        self.next_id += 1;
        // The offered gap only feeds ECN pacing; skip the gate
        // bookkeeping entirely on the other policies' hot paths.
        let gap = if matches!(self.sim.injection, InjectionMode::Ecn { .. }) {
            self.s.gates[event.src.0].offered_gap(event.time)
        } else {
            0
        };
        self.tap
            .offered(event.time, event.src, event.volume.value());
        self.probe.offered(event.time, event.src);
        self.s.msgs.push_back(MsgState {
            ev: event,
            admitted: 0,
            started: 0,
            completed: 0,
            gap,
            lanes: 0,
            attempts: 0,
            seq: 0,
            first_fail: 0,
        });
        self.s.flags.push_back(0);
        self.peak_in_flight = self.peak_in_flight.max(self.s.msgs.len());
        self.offered_bits += event.volume.value();
        self.last_injection = self.last_injection.max(event.time);
        self.s.queue.push(event.time, Event::Offered(id));
        Ok(())
    }

    /// Admits as many of source `s`'s offered messages as the injection
    /// policy allows at `now`, scheduling a wake-up when ECN pacing
    /// defers the head.
    fn drain_gate(&mut self, s: usize, now: u64) {
        loop {
            let Some(&head) = self.s.gates[s].offered.front() else {
                return;
            };
            // Transport windows gate the head before the injection
            // policy: a full go-back-N window or PFC destination pool
            // pauses the source (the wake-up is the next delivery or
            // loss that shrinks the window).
            match self.sim.transport {
                TransportMode::GoBackN { window, .. } => {
                    let flow = {
                        let m = &self.s.msgs[head - self.base];
                        m.ev.src.0 * self.n + m.ev.dst.0
                    };
                    let fs = self
                        .fault
                        .as_deref()
                        .expect("transport implies fault state");
                    if fs.unacked[flow] as usize >= window {
                        return;
                    }
                }
                TransportMode::Pfc { dst_window, .. } => {
                    let dst = self.s.msgs[head - self.base].ev.dst.0;
                    let fs = self
                        .fault
                        .as_deref()
                        .expect("transport implies fault state");
                    if fs.dst_in_flight[dst] as usize >= dst_window {
                        return;
                    }
                }
                TransportMode::None => {}
            }
            let allowed = match self.sim.injection {
                InjectionMode::Open => now,
                InjectionMode::Credit { window } => {
                    if self.s.gates[s].in_flight >= window {
                        // The wake-up is the next delivery of this source.
                        return;
                    }
                    now
                }
                InjectionMode::CreditPerDst { window } => {
                    let dst = self.s.msgs[head - self.base].ev.dst.0;
                    if self.s.gates[s].in_flight_by_dst[dst] as usize >= window {
                        // The wake-up is the next delivery (or loss) to
                        // this destination.
                        return;
                    }
                    now
                }
                InjectionMode::Ecn { .. } => {
                    let (time, gap) = {
                        let m = self.msg(head);
                        (m.ev.time, m.gap)
                    };
                    self.s.gates[s].ecn_allowed(time, gap)
                }
            };
            if allowed > now {
                if self.s.gates[s].wake_at.is_none_or(|w| w > allowed) {
                    self.s.gates[s].wake_at = Some(allowed);
                    self.s.queue.push(allowed, Event::GateWake(s));
                }
                return;
            }
            self.s.gates[s].offered.pop_front();
            // Any pending wake was scheduled for this head; admitting it
            // makes that wake obsolete — clear the marker so the leftover
            // queue event is recognised as stale (the loop schedules a
            // fresh wake if the next head still needs pacing).
            self.s.gates[s].wake_at = None;
            self.admit(head, now);
        }
    }

    /// Passes message `id` through its gate into the network interface.
    fn admit(&mut self, id: usize, now: u64) {
        let sim = self.sim;
        let (src_node, dst_node, offered) = {
            let m = self.msg(id);
            m.admitted = now;
            (m.ev.src, m.ev.dst, m.ev.time)
        };
        self.tap.admitted(now, now - offered, src_node);
        self.probe.admitted(now, now - offered, src_node);
        let src = src_node.0;
        if self.sim.injection.is_closed_loop() {
            self.s.gates[src].note_admit(now);
            if let InjectionMode::CreditPerDst { .. } = self.sim.injection {
                self.s.gates[src].in_flight_by_dst[dst_node.0] += 1;
            }
        }
        match self.sim.transport {
            TransportMode::GoBackN { .. } => {
                let flow = src * self.n + dst_node.0;
                let fs = self
                    .fault
                    .as_deref_mut()
                    .expect("transport implies fault state");
                let seq = fs.next_seq[flow];
                fs.next_seq[flow] += 1;
                fs.unacked[flow] += 1;
                self.msg(id).seq = seq;
            }
            TransportMode::Pfc { .. } => {
                let fs = self
                    .fault
                    .as_deref_mut()
                    .expect("transport implies fault state");
                fs.dst_in_flight[dst_node.0] += 1;
            }
            TransportMode::None => {}
        }
        match &sim.mode {
            WavelengthMode::Dynamic(policy) => {
                // The NI transmits in order: an earlier queued message
                // blocks this one even if its own path is free.
                #[allow(clippy::cast_possible_truncation)]
                let flow = (src * self.n + dst_node.0) as u32;
                let policy = *policy;
                self.enqueue_dynamic(id, flow, now, policy);
            }
            WavelengthMode::Static(_) => {
                #[allow(clippy::cast_possible_truncation)]
                let flow = (src * self.n + dst_node.0) as u32;
                let mask = self.s.flow_lane_masks[flow as usize];
                debug_assert!(mask != 0, "unmapped flows are rejected at offer");
                let avail = match self.fault.as_deref() {
                    Some(fs) => mask & !fs.down_mask,
                    None => mask,
                };
                if avail == 0 {
                    self.park_or_lose_static(id, flow, mask, now);
                } else {
                    self.start_static(id, flow, avail, now);
                }
            }
        }
    }

    /// Queues (or immediately starts) a dynamic-mode message at its
    /// source NI.
    fn enqueue_dynamic(&mut self, id: usize, flow: u32, now: u64, policy: DynamicPolicy) {
        let src = flow as usize / self.n;
        if !self.s.ni_queues[src].is_empty() {
            self.blocked_attempts += 1;
            self.s.ni_queues[src].push_back((id, flow));
            self.waiting += 1;
        } else if !self.try_start_dynamic(id, flow, now, policy) {
            self.blocked_attempts += 1;
            self.s.ni_queues[src].push_back((id, flow));
            self.waiting += 1;
            // This message is now the source's blocked head:
            // register it with its path's waiter sets.
            self.set_waiter(src, flow, true);
        }
    }

    /// Schedules a static-mode transmission on `avail` (the flow's
    /// nominal lanes minus any currently down), serialised on the flow's
    /// `flow_free_at` cursor.
    fn start_static(&mut self, id: usize, flow: u32, avail: u128, now: u64) {
        let volume = self.msg(id).ev.volume;
        let lanes = avail.count_ones() as usize;
        let free_at = self.s.flow_free_at[flow as usize];
        let start = now.max(free_at);
        if start > now {
            self.blocked_attempts += 1;
        }
        let duration = self.sim.duration(volume, lanes);
        let end = start + duration;
        self.s.flow_free_at[flow as usize] = end;
        {
            let m = self.msg(id);
            m.started = start;
            m.completed = end;
            #[allow(clippy::cast_possible_truncation)]
            {
                m.lanes = lanes as u16;
            }
            m.attempts += 1;
        }
        self.s.queue.push(start, Event::Started((id, flow, avail)));
        self.s.queue.push(
            end,
            Event::Completed(CompletedTx {
                id,
                start,
                flow,
                mask: avail,
            }),
        );
    }

    /// An all-lanes-down static admission: park until a pending recovery
    /// if one exists, otherwise the message is lost outright (deferred
    /// through the calendar so loss bookkeeping never recurses through
    /// the gate drain that admitted it).
    fn park_or_lose_static(&mut self, id: usize, flow: u32, mask: u128, now: u64) {
        let stochastic = self
            .sim
            .faults
            .as_ref()
            .is_some_and(|p| p.stochastic.is_some());
        let fs = self
            .fault
            .as_deref_mut()
            .expect("an all-down mask implies fault state");
        // Stochastic outages always repair; scheduled ones only if a
        // finite-duration recovery is still outstanding.
        let mut recovers = stochastic;
        let mut rest = mask;
        while !recovers && rest != 0 {
            let lane = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            recovers = fs.pending_ups[lane] > 0;
        }
        if recovers {
            fs.parked.push((id, flow));
        } else {
            self.s.queue.push(now, Event::Abandon(id));
        }
    }

    /// Re-attempts a static-mode message after a NACK/timeout redo or a
    /// lane recovery.
    fn restart_static(&mut self, id: usize, flow: u32, now: u64) {
        let mask = self.s.flow_lane_masks[flow as usize];
        let avail = match self.fault.as_deref() {
            Some(fs) => mask & !fs.down_mask,
            None => mask,
        };
        if avail == 0 {
            self.park_or_lose_static(id, flow, mask, now);
        } else {
            self.start_static(id, flow, avail, now);
        }
    }

    /// Retransmits message `id` (transport recovery).
    fn redo(&mut self, id: usize, now: u64) {
        let (src, dst) = {
            let m = self.msg(id);
            (m.ev.src.0, m.ev.dst.0)
        };
        #[allow(clippy::cast_possible_truncation)]
        let flow = (src * self.n + dst) as u32;
        match &self.sim.mode {
            WavelengthMode::Dynamic(policy) => {
                let policy = *policy;
                self.enqueue_dynamic(id, flow, now, policy);
            }
            WavelengthMode::Static(_) => self.restart_static(id, flow, now),
        }
    }

    /// Attempts to start a dynamic-mode transmission at `now`.
    fn try_start_dynamic(&mut self, id: usize, flow: u32, now: u64, policy: DynamicPolicy) -> bool {
        let flow = flow as usize;
        let (lo, hi) = (
            self.s.path_offsets[flow] as usize,
            self.s.path_offsets[flow + 1] as usize,
        );
        let Some(mask) = self
            .s
            .arbiter
            .claim_mask(&self.s.path_segs[lo..hi], policy.lane_demand())
        else {
            return false;
        };
        let lanes = mask.count_ones() as usize;
        let volume = self.msg(id).ev.volume;
        let duration = self.sim.duration(volume, lanes);
        {
            let m = self.msg(id);
            m.started = now;
            m.completed = now + duration;
            #[allow(clippy::cast_possible_truncation)]
            {
                m.lanes = lanes as u16;
            }
            m.attempts += 1;
        }
        #[allow(clippy::cast_possible_truncation)]
        let flow = flow as u32;
        self.s.queue.push(
            now + duration,
            Event::Completed(CompletedTx {
                id,
                start: now,
                flow,
                mask,
            }),
        );
        // Occupancy first, so the fact carries the mark the start itself
        // produced (the bookkeeping emits no facts of its own).
        let marked = self.note_transmission_start(flow, mask);
        if marked {
            self.s.flags[id - self.base] |= flag::MARKED;
        }
        let fact = TxFact {
            start: now,
            end: now + duration,
            lanes: mask,
            hops: hi - lo,
            src: NodeId(flow as usize / self.n),
            dst: NodeId(flow as usize % self.n),
            marked,
        };
        self.tap.started(&fact, flow);
        self.probe.started(fact);
        true
    }

    /// Occupancy bookkeeping (and — in streaming static mode — online
    /// conflict counting) when a transmission begins driving its lanes.
    /// Returns whether the transmission is ECN congestion-marked.
    fn note_transmission_start(&mut self, flow: u32, mask: u128) -> bool {
        let (lo, hi) = (
            self.s.path_offsets[flow as usize] as usize,
            self.s.path_offsets[flow as usize + 1] as usize,
        );
        let lanes = u64::from(mask.count_ones());
        self.active_lane_segments += (hi - lo) as u64 * lanes;
        let marked = if let InjectionMode::Ecn { threshold } = self.sim.injection {
            #[allow(clippy::cast_precision_loss)]
            let occupancy = self.active_lane_segments as f64 / self.capacity;
            occupancy > threshold
        } else {
            false
        };
        if self.mode == ReportMode::Streaming && !self.s.active_per_lane_seg.is_empty() {
            // Completions at this cycle already released their slots
            // (Completed < Started in the tie-break), so every live span
            // here properly overlaps the one starting now.
            let w = self.sim.wavelengths;
            for i in lo..hi {
                let row = self.s.path_segs[i] as usize * w;
                let mut rest = mask;
                while rest != 0 {
                    let lane = rest.trailing_zeros() as usize;
                    rest &= rest - 1;
                    let slot = row + lane;
                    self.online_conflicts += self.s.active_per_lane_seg[slot] as usize;
                    self.s.active_per_lane_seg[slot] += 1;
                }
            }
        }
        marked
    }

    /// A transmission delivered its last bit: accumulate occupancy,
    /// release lanes and credits, and retry whoever waits on them.
    /// Everything it needs rides in the event payload — the message
    /// window is only touched through the 1-byte flags deque.
    fn on_completed(&mut self, tx: CompletedTx, now: u64) {
        let CompletedTx {
            id,
            start,
            flow,
            mask,
        } = tx;
        let span = now - start;
        let (lo, hi) = (
            self.s.path_offsets[flow as usize] as usize,
            self.s.path_offsets[flow as usize + 1] as usize,
        );
        let lanes = u64::from(mask.count_ones());
        let hops = (hi - lo) as u64;
        let verdict = self.classify_attempt(id, flow, mask, start, now);
        match verdict {
            None => {
                let fact = TxFact {
                    start,
                    end: now,
                    lanes: mask,
                    hops: hi - lo,
                    src: NodeId(flow as usize / self.n),
                    dst: NodeId(flow as usize % self.n),
                    marked: self.s.flags[id - self.base] & flag::MARKED != 0,
                };
                self.tap.completed(&fact, flow);
                self.probe.completed(fact);
            }
            Some(cause) => {
                // A failed attempt drove its lanes for the full span:
                // the fact stream reports a drop instead of a
                // completion, but the occupancy accounting below is
                // shared with deliveries.
                if self.s.flags[id - self.base] & flag::FAILED == 0 {
                    self.s.flags[id - self.base] |= flag::FAILED;
                    self.msg(id).first_fail = now;
                }
                let (volume, attempt) = {
                    let m = self.msg(id);
                    (m.ev.volume.value(), m.attempts)
                };
                let fact = DropFact {
                    start,
                    end: now,
                    lanes: mask,
                    hops: hi - lo,
                    src: NodeId(flow as usize / self.n),
                    dst: NodeId(flow as usize % self.n),
                    bits: volume,
                    cause,
                    attempt,
                };
                self.tap.dropped(&fact, flow);
                self.probe.dropped(fact);
                let fs = self
                    .fault
                    .as_deref_mut()
                    .expect("a drop verdict implies fault state");
                fs.failed_attempts += 1;
                fs.retransmitted_bits += volume;
            }
        }
        if verdict == Some(FaultCause::Corrupt) {
            self.quarantine_degraded(mask, now);
        }
        for i in lo..hi {
            self.s.segment_busy[self.s.path_segs[i] as usize] += span * lanes;
        }
        let mut rest = mask;
        while rest != 0 {
            let lane = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            self.s.lane_busy[lane] += span * hops;
        }
        self.active_lane_segments -= hops * lanes;
        if !self.s.active_per_lane_seg.is_empty() {
            let w = self.sim.wavelengths;
            for i in lo..hi {
                let row = self.s.path_segs[i] as usize * w;
                let mut rest = mask;
                while rest != 0 {
                    let lane = rest.trailing_zeros() as usize;
                    rest &= rest - 1;
                    self.s.active_per_lane_seg[row + lane] -= 1;
                }
            }
        }
        if let WavelengthMode::Dynamic(policy) = &self.sim.mode {
            let policy = *policy;
            self.s.arbiter.release_mask(&self.s.path_segs[lo..hi], mask);
            // Retry blocked heads. A head's claim can only change outcome
            // after a release on its own path, so only sources whose head
            // waits on one of the just-released segments are candidates —
            // identical starts (in identical source order) to retrying
            // everyone, without rescanning every wavelength × segment.
            if self.waiting > 0 {
                let words = self.s.waiter_words;
                self.s.candidates[..words].fill(0);
                for i in lo..hi {
                    let row = self.s.path_segs[i] as usize * words;
                    for w in 0..words {
                        self.s.candidates[w] |= self.s.waiters[row + w];
                    }
                }
                for w in 0..words {
                    let mut bits = self.s.candidates[w];
                    while bits != 0 {
                        let s = w * 64 + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        self.retry_source(s, now, policy);
                    }
                }
            }
        }
        match verdict {
            None => self.deliver(id, flow, now),
            Some(cause) => self.handle_drop(id, flow, start, now, cause),
        }
    }

    /// Decides whether the attempt that just delivered its last bit
    /// actually failed: a lane outage overlapping the span, a BER
    /// corruption draw, or a go-back-N sequence gap.
    fn classify_attempt(
        &mut self,
        id: usize,
        flow: u32,
        mask: u128,
        start: u64,
        now: u64,
    ) -> Option<FaultCause> {
        let sim = self.sim;
        let fs = self.fault.as_deref_mut()?;
        if fs.overlaps_down(mask, start, now) {
            return Some(FaultCause::LaneDown);
        }
        if let Some(plan) = &sim.faults {
            let ber = match &plan.corruption {
                // The burst channel: the attempt sees the bad-state BER
                // whenever any lane of its mask spent a cycle of the
                // span in the bad state. The timelines are pure
                // functions of the plan seed, so this stays replayable.
                CorruptionModel::GilbertElliott {
                    ber_good, ber_bad, ..
                } => {
                    let ge = fs.ge.as_mut().expect("GE model implies a timeline");
                    let mut rest = mask;
                    let mut bad = false;
                    while rest != 0 && !bad {
                        let lane = rest.trailing_zeros() as usize;
                        rest &= rest - 1;
                        bad = ge.bad_over(lane, start, now);
                    }
                    if bad { *ber_bad } else { *ber_good }
                }
                model => model.ber(flow as usize),
            };
            if ber > 0.0 {
                let m = &self.s.msgs[id - self.base];
                let p = fault::message_error_probability(ber, m.ev.volume.value());
                // Drawn from (message, attempt) so corruption outcomes
                // are independent of event interleaving — runs replay
                // exactly, and the corrupted sets nest as BER grows. The
                // *global* message id keeps the draws shard-invariant
                // under the PDES engine.
                let draw = fault::unit_interval(fault::hash64(
                    plan.seed,
                    self.tap.global_id(id),
                    u64::from(m.attempts),
                ));
                if draw < p {
                    return Some(FaultCause::Corrupt);
                }
            }
        }
        if let TransportMode::GoBackN { .. } = self.sim.transport {
            let seq = self.s.msgs[id - self.base].seq;
            // Frames *ahead* of the receiver's window go back; frames
            // *behind* it arrive late into a gap the receiver already
            // gave up on (a loss skipped past them) and are accepted,
            // so one exhausted frame can never wedge the flow.
            if seq > fs.next_expected[flow as usize] {
                return Some(FaultCause::OutOfOrder);
            }
        }
        None
    }

    /// Final (successful) delivery bookkeeping for message `id`.
    fn deliver(&mut self, id: usize, flow: u32, now: u64) {
        match self.sim.transport {
            TransportMode::GoBackN { .. } => {
                let seq = self.s.msgs[id - self.base].seq;
                let fs = self
                    .fault
                    .as_deref_mut()
                    .expect("transport implies fault state");
                let ne = &mut fs.next_expected[flow as usize];
                debug_assert!(
                    seq <= *ne,
                    "go-back-N never delivers ahead of the receiver window"
                );
                // `seq < ne` is a late frame filling a gap a loss
                // already skipped past — accepted without moving the
                // window.
                *ne = (*ne).max(seq + 1);
                fs.unacked[flow as usize] -= 1;
            }
            TransportMode::Pfc { .. } => {
                let fs = self
                    .fault
                    .as_deref_mut()
                    .expect("transport implies fault state");
                fs.dst_in_flight[flow as usize % self.n] -= 1;
            }
            TransportMode::None => {}
        }
        self.s.flags[id - self.base] |= flag::DONE;
        if self.sim.injection.is_closed_loop() {
            let src = flow as usize / self.n;
            let marked = self.s.flags[id - self.base] & flag::MARKED != 0;
            self.s.gates[src].note_delivery(now, self.sim.injection, marked, &self.sim.aimd);
            if let InjectionMode::CreditPerDst { .. } = self.sim.injection {
                self.s.gates[src].in_flight_by_dst[flow as usize % self.n] -= 1;
            }
            self.drain_gate(src, now);
        }
        self.drain_transport(flow, now);
        if T::ACTIVE {
            let flags = self.s.flags[id - self.base];
            let (record, volume, recovery) = {
                let m = &self.s.msgs[id - self.base];
                (
                    m.record(),
                    m.ev.volume.value(),
                    m.completed.saturating_sub(m.first_fail),
                )
            };
            let hops = self.flow_hops(flow as usize);
            self.tap
                .resolved(id, &record, volume, flags, hops, recovery);
        }
        self.retire_front();
    }

    /// A failed attempt: decide between retransmission and loss.
    fn handle_drop(&mut self, id: usize, flow: u32, start: u64, now: u64, cause: FaultCause) {
        let attempts = self.s.msgs[id - self.base].attempts;
        match self.sim.transport {
            TransportMode::None => self.lose_message(id, flow, now),
            TransportMode::GoBackN {
                nack_delay,
                timeout,
                max_retries,
                ..
            } => {
                // Out-of-order completions are an artefact of go-back-N
                // ordering (not data loss), so they never exhaust the
                // retry budget.
                if cause != FaultCause::OutOfOrder && attempts > max_retries {
                    self.lose_message(id, flow, now);
                } else {
                    let at = match cause {
                        // Lane outages are detected by timeout, not NACK.
                        FaultCause::LaneDown => now.max(start.saturating_add(timeout)),
                        FaultCause::Corrupt | FaultCause::OutOfOrder => now + nack_delay,
                    };
                    self.s.queue.push(at, Event::Redo(id));
                }
            }
            TransportMode::Pfc { max_retries, .. } => {
                if attempts > max_retries {
                    self.lose_message(id, flow, now);
                } else {
                    self.s.queue.push(now + 1, Event::Redo(id));
                }
            }
        }
    }

    /// Marks message `id` permanently lost at `now`: it retires silently
    /// (delivery statistics exclude it), releasing whatever credits and
    /// transport window slots it held.
    fn lose_message(&mut self, id: usize, flow: u32, now: u64) {
        let (volume, attempts, seq) = {
            let m = self.msg(id);
            m.completed = now;
            if m.attempts == 0 {
                m.started = now;
            }
            (m.ev.volume.value(), m.attempts, m.seq)
        };
        {
            let fs = self.fault.as_deref_mut().expect("losses imply fault state");
            fs.lost_messages += 1;
            fs.lost_bits += volume;
        }
        match self.sim.transport {
            TransportMode::GoBackN { .. } => {
                let fs = self
                    .fault
                    .as_deref_mut()
                    .expect("transport implies fault state");
                let ne = &mut fs.next_expected[flow as usize];
                // The receiver gives up on the gap: later frames of the
                // flow become deliverable.
                *ne = (*ne).max(seq + 1);
                fs.unacked[flow as usize] -= 1;
            }
            TransportMode::Pfc { .. } => {
                let fs = self
                    .fault
                    .as_deref_mut()
                    .expect("transport implies fault state");
                fs.dst_in_flight[flow as usize % self.n] -= 1;
            }
            TransportMode::None => {}
        }
        self.s.flags[id - self.base] |= flag::DONE | flag::LOST;
        let record = self.s.msgs[id - self.base].record();
        self.tap.lost(id, &record, volume, attempts.max(1));
        self.probe.lost(&record, volume, attempts.max(1));
        if self.sim.injection.is_closed_loop() {
            let src = flow as usize / self.n;
            let marked = self.s.flags[id - self.base] & flag::MARKED != 0;
            self.s.gates[src].note_delivery(now, self.sim.injection, marked, &self.sim.aimd);
            if let InjectionMode::CreditPerDst { .. } = self.sim.injection {
                self.s.gates[src].in_flight_by_dst[flow as usize % self.n] -= 1;
            }
            self.drain_gate(src, now);
        }
        self.drain_transport(flow, now);
        if T::ACTIVE {
            let flags = self.s.flags[id - self.base];
            let hops = self.flow_hops(flow as usize);
            self.tap.resolved(id, &record, volume, flags, hops, 0);
        }
        self.retire_front();
    }

    /// Re-drains whichever gates a delivery or loss may have unblocked
    /// under the transport windows.
    fn drain_transport(&mut self, flow: u32, now: u64) {
        match self.sim.transport {
            TransportMode::None => {}
            TransportMode::GoBackN { .. } => {
                // Only this flow's source gained window.
                self.drain_gate(flow as usize / self.n, now);
            }
            TransportMode::Pfc { .. } => {
                // Any source may hold traffic for the freed destination.
                for s in 0..self.n {
                    if !self.s.gates[s].offered.is_empty() {
                        self.drain_gate(s, now);
                    }
                }
            }
        }
    }

    /// Administratively takes Gilbert–Elliott-degraded lanes out of
    /// service: when a corrupt attempt reveals a lane in the bad state
    /// and the bad-state BER meets the healing threshold, the lane gets
    /// the same `LaneDown`/`LaneUp` pair a scheduled fault would, for
    /// the rest of its bad sojourn — parked traffic and the healer then
    /// see an ordinary outage. Detection is traffic-driven: a silent
    /// (uncorrupted) bad sojourn is never quarantined, exactly as a real
    /// receiver could not have observed it.
    fn quarantine_degraded(&mut self, mask: u128, now: u64) {
        let sim = self.sim;
        let Some(cfg) = sim.healing else { return };
        let Some(threshold) = cfg.ber_threshold else {
            return;
        };
        let Some(plan) = &sim.faults else { return };
        let CorruptionModel::GilbertElliott { ber_bad, .. } = &plan.corruption else {
            return;
        };
        if *ber_bad < threshold {
            return;
        }
        let fs = self
            .fault
            .as_deref_mut()
            .expect("a corrupt verdict implies fault state");
        let mut rest = mask;
        while rest != 0 {
            let lane = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            if fs.down_mask & (1u128 << lane) != 0 || now < fs.admin_until[lane] {
                continue;
            }
            let until = fs
                .ge
                .as_mut()
                .expect("GE model implies a timeline")
                .bad_until(lane, now);
            if until <= now {
                // The lane already recovered (or was never bad at the
                // detection cycle — the burst hit another lane).
                continue;
            }
            fs.admin_until[lane] = until;
            fs.pending_ups[lane] += 1;
            #[allow(clippy::cast_possible_truncation)]
            {
                self.s.queue.push(now, Event::LaneDown(lane as u16));
                self.s.queue.push(until, Event::LaneUp(lane as u16));
            }
        }
    }

    /// The self-healing quiesce point, run as part of every lane-down
    /// event: re-pack every static flow whose nominal lanes intersect a
    /// dark lane onto the surviving comb, swap the healed masks into
    /// `flow_lane_masks`, restart parked traffic that regained lanes,
    /// and record the heal as a first-class [`HealFact`].
    ///
    /// In-flight attempts keep the mask they started with (it rides in
    /// their `Completed` event) and fail as lane-down drops; the swap
    /// governs every later start, including transport redos — so the
    /// lane-down event boundary is a true quiesce point and no event
    /// mid-flight observes a half-swapped map.
    fn try_heal(&mut self, lane: usize, now: u64) {
        let Some(cfg) = self.sim.healing else { return };
        if cfg.policy == HealPolicy::Park || !matches!(self.sim.mode, WavelengthMode::Static(_)) {
            return;
        }
        let dead = self
            .fault
            .as_deref()
            .expect("lane events imply fault state")
            .down_mask;
        // The affected set: flows intersecting *any* dark lane, not just
        // the trigger — a second outage re-packs the survivors of the
        // first again, against the current occupancy view.
        let mut affected: Vec<u32> = Vec::new();
        let mut old_masks: Vec<u128> = Vec::new();
        let row_list: Vec<u32> = match &self.s.flow_rows {
            Some(rows) => rows.clone(),
            None =>
            {
                #[allow(clippy::cast_possible_truncation)]
                (0..self.s.flow_lane_masks.len() as u32).collect()
            }
        };
        for &f in &row_list {
            let mask = self.s.flow_lane_masks[f as usize];
            if mask & dead != 0 {
                affected.push(f);
                old_masks.push(mask);
            }
        }
        if affected.is_empty() {
            return;
        }
        // Occupancy view per directed segment: the union of the frozen
        // (unaffected) flows' lanes crossing it, and which affected
        // flows cross it (pairwise conflict discovery).
        let segs = self.s.segment_busy.len();
        let mut frozen_occ = vec![0u128; segs];
        let mut touching: Vec<Vec<u32>> = vec![Vec::new(); segs];
        for &f in &row_list {
            let mask = self.s.flow_lane_masks[f as usize];
            if mask == 0 {
                continue;
            }
            let (lo, hi) = (
                self.s.path_offsets[f as usize] as usize,
                self.s.path_offsets[f as usize + 1] as usize,
            );
            match affected.binary_search(&f) {
                Ok(i) =>
                {
                    #[allow(clippy::cast_possible_truncation)]
                    for s in lo..hi {
                        touching[self.s.path_segs[s] as usize].push(i as u32);
                    }
                }
                Err(_) => {
                    for s in lo..hi {
                        frozen_occ[self.s.path_segs[s] as usize] |= mask;
                    }
                }
            }
        }
        let mut frozen = vec![0u128; affected.len()];
        for (i, &f) in affected.iter().enumerate() {
            let (lo, hi) = (
                self.s.path_offsets[f as usize] as usize,
                self.s.path_offsets[f as usize + 1] as usize,
            );
            for s in lo..hi {
                frozen[i] |= frozen_occ[self.s.path_segs[s] as usize];
            }
        }
        let mut conflicts: Vec<(usize, usize)> = Vec::new();
        for list in &touching {
            for (x, &a) in list.iter().enumerate() {
                for &b in &list[x + 1..] {
                    conflicts.push((a as usize, b as usize));
                }
            }
        }
        conflicts.sort_unstable();
        conflicts.dedup();
        let outcome = reassign_flows_on_lane_loss(
            &old_masks,
            &conflicts,
            &frozen,
            dead,
            self.sim.wavelengths,
            cfg.policy,
        );
        let (moved, shared, feasible) = match &outcome {
            Some(o) => (o.moved, o.shared, true),
            None => (0, 0, false),
        };
        let mut restarted = 0usize;
        let mut stall_cycles = 0u64;
        let parked = if let Some(o) = outcome {
            for (i, &f) in affected.iter().enumerate() {
                self.s.flow_lane_masks[f as usize] = o.masks[i];
            }
            let parked = {
                let fs = self.fault.as_deref_mut().expect("checked above");
                std::mem::take(&mut fs.parked)
            };
            for &(id, flow) in &parked {
                if self.s.flow_lane_masks[flow as usize] & !dead != 0 {
                    restarted += 1;
                    stall_cycles += now.saturating_sub(self.s.msgs[id - self.base].admitted);
                }
            }
            parked
        } else {
            Vec::new()
        };
        self.probe.heal(HealFact {
            at: now,
            lane,
            policy: cfg.policy,
            affected: affected.len(),
            moved,
            shared,
            restarted,
            stall_cycles,
            feasible,
        });
        // Parked messages whose flow regained live lanes start at the
        // swap; `restart_static` re-parks any that did not.
        for (id, flow) in parked {
            self.restart_static(id, flow, now);
        }
    }

    /// A wavelength fails at `now`.
    fn on_lane_down(&mut self, lane: usize, now: u64) {
        let stochastic = self.sim.faults.as_ref().and_then(|p| p.stochastic);
        let seed = self.sim.faults.as_ref().map_or(0, |p| p.seed);
        let fs = self
            .fault
            .as_deref_mut()
            .expect("lane events imply fault state");
        if let Some(st) = stochastic {
            // Under the stochastic model every outage repairs: draw the
            // repair time now so parked traffic knows the lane returns.
            let counter = fs.lane_draws[lane];
            fs.lane_draws[lane] += 1;
            let up_at =
                now + fault::exp_draw(seed, LANE_STREAM | lane as u64, counter, st.mean_down);
            fs.pending_ups[lane] += 1;
            #[allow(clippy::cast_possible_truncation)]
            self.s.queue.push(up_at, Event::LaneUp(lane as u16));
        }
        if fs.down_mask & (1u128 << lane) != 0 {
            // Already down (overlapping schedule entries): merge.
            return;
        }
        fs.down_mask |= 1 << lane;
        fs.down_since[lane] = now;
        self.s.arbiter.set_down(lane, true);
        self.tap.lane_event(now, lane, true);
        self.probe.lane_event(now, lane, true);
        self.try_heal(lane, now);
    }

    /// A wavelength recovers at `now`.
    fn on_lane_up(&mut self, lane: usize, now: u64) {
        let stochastic = self.sim.faults.as_ref().and_then(|p| p.stochastic);
        let seed = self.sim.faults.as_ref().map_or(0, |p| p.seed);
        let fs = self
            .fault
            .as_deref_mut()
            .expect("lane events imply fault state");
        if fs.pending_ups[lane] > 0 {
            fs.pending_ups[lane] -= 1;
        }
        if fs.down_mask & (1u128 << lane) == 0 {
            // A merged outage already recovered this lane.
            return;
        }
        fs.down_mask &= !(1u128 << lane);
        fs.down_history[lane].push((fs.down_since[lane], now));
        if let Some(st) = stochastic {
            let counter = fs.lane_draws[lane];
            fs.lane_draws[lane] += 1;
            let down_at =
                now + fault::exp_draw(seed, LANE_STREAM | lane as u64, counter, st.mean_up);
            if down_at < st.horizon {
                #[allow(clippy::cast_possible_truncation)]
                self.s.queue.push(down_at, Event::LaneDown(lane as u16));
            }
        }
        self.s.arbiter.set_down(lane, false);
        self.tap.lane_event(now, lane, false);
        self.probe.lane_event(now, lane, false);
        // Recovered lanes may unblock parked static messages and blocked
        // dynamic heads.
        let parked = {
            let fs = self.fault.as_deref_mut().expect("checked above");
            std::mem::take(&mut fs.parked)
        };
        for (id, flow) in parked {
            self.restart_static(id, flow, now);
        }
        if self.waiting > 0 {
            if let WavelengthMode::Dynamic(policy) = &self.sim.mode {
                let policy = *policy;
                for s in 0..self.n {
                    self.retry_source(s, now, policy);
                }
            }
        }
    }

    /// Once the calendar runs dry, traffic stranded by permanent faults
    /// — parked messages whose recovery never came, NI heads on dead
    /// lanes, gate-held messages whose window never opened — is swept as
    /// lost at the final horizon. Sweeping one batch at a time lets the
    /// released window slots re-admit (and genuinely deliver) later
    /// traffic before the next dry spell. Returns whether anything was
    /// swept.
    fn sweep_stranded(&mut self) -> bool {
        if self.fault.is_none() {
            return false;
        }
        let now = self.horizon;
        let parked = {
            let fs = self.fault.as_deref_mut().expect("checked above");
            std::mem::take(&mut fs.parked)
        };
        let mut swept = !parked.is_empty();
        for (id, flow) in parked {
            self.lose_message(id, flow, now);
        }
        if !swept {
            for s in 0..self.n {
                if let Some(&(id, flow)) = self.s.ni_queues[s].front() {
                    self.s.ni_queues[s].pop_front();
                    self.waiting -= 1;
                    // The head was registered in the waiter sets; its
                    // successor takes over the registration so genuine
                    // releases keep retrying it.
                    self.set_waiter(s, flow, false);
                    if let Some(&(_, f2)) = self.s.ni_queues[s].front() {
                        self.set_waiter(s, f2, true);
                    }
                    self.lose_message(id, flow, now);
                    if let WavelengthMode::Dynamic(policy) = &self.sim.mode {
                        let policy = *policy;
                        self.retry_source(s, now, policy);
                    }
                    swept = true;
                    break;
                }
            }
        }
        if !swept {
            for s in 0..self.n {
                if let Some(id) = self.s.gates[s].offered.pop_front() {
                    // Never admitted: lost without credits or transport
                    // slots to release.
                    let volume = {
                        let m = self.msg(id);
                        m.admitted = now;
                        m.started = now;
                        m.completed = now;
                        m.ev.volume.value()
                    };
                    {
                        let fs = self.fault.as_deref_mut().expect("checked above");
                        fs.lost_messages += 1;
                        fs.lost_bits += volume;
                    }
                    self.s.flags[id - self.base] |= flag::DONE | flag::LOST;
                    let record = self.s.msgs[id - self.base].record();
                    self.tap.lost(id, &record, volume, 1);
                    self.probe.lost(&record, volume, 1);
                    self.s.gates[s].wake_at = None;
                    if T::ACTIVE {
                        let flags = self.s.flags[id - self.base];
                        self.tap.resolved(id, &record, volume, flags, 0, 0);
                    }
                    self.retire_front();
                    swept = true;
                    break;
                }
            }
        }
        if swept {
            // A sharded run sweeps at its *local* horizon, which need not
            // be the global one — the PDES worker tap escalates instead
            // of diverging silently (unreachable under its eligibility
            // gate; see `pdes.rs`).
            self.tap.stranded_sweep();
        }
        swept
    }

    /// Sets or clears source `s`'s waiter bit on every segment of `flow`'s
    /// path.
    fn set_waiter(&mut self, s: usize, flow: u32, on: bool) {
        let words = self.s.waiter_words;
        let (word, bit) = (s / 64, 1u64 << (s % 64));
        let (lo, hi) = (
            self.s.path_offsets[flow as usize] as usize,
            self.s.path_offsets[flow as usize + 1] as usize,
        );
        for i in lo..hi {
            let slot = self.s.path_segs[i] as usize * words + word;
            if on {
                self.s.waiters[slot] |= bit;
            } else {
                self.s.waiters[slot] &= !bit;
            }
        }
    }

    /// Retries source `s`'s head after a release touched its path; a
    /// started head unblocks the next message behind it, which is tried
    /// in turn (and becomes the newly registered blocked head if it
    /// fails).
    fn retry_source(&mut self, s: usize, now: u64, policy: DynamicPolicy) {
        // The candidate's current head is registered in the waiter sets;
        // later heads in the chain are not (yet).
        let mut head_registered = true;
        while let Some(&(head, flow)) = self.s.ni_queues[s].front() {
            if self.try_start_dynamic(head, flow, now, policy) {
                if head_registered {
                    self.set_waiter(s, flow, false);
                }
                self.s.ni_queues[s].pop_front();
                self.waiting -= 1;
                head_registered = false;
            } else {
                if !head_registered {
                    self.set_waiter(s, flow, true);
                }
                break;
            }
        }
    }

    /// Folds every completed message at the front of the window into the
    /// fact consumers (the built-in [`ReportProbe`] plus the caller's
    /// probe) and, in full static mode, the retained conflict spans — in
    /// id order.
    fn retire_front(&mut self) {
        while let Some(&bits) = self.s.flags.front() {
            if bits & flag::DONE == 0 {
                break;
            }
            let m = self.s.msgs.pop_front().expect("flags parallel msgs");
            self.s.flags.pop_front();
            self.base += 1;
            if bits & flag::LOST != 0 {
                // Lost messages already fed the loss facts; they retire
                // silently (delivery statistics exclude them).
                continue;
            }
            let record = m.record();
            let flow = m.ev.src.0 * self.n + m.ev.dst.0;
            let hops = self.flow_hops(flow);
            if bits & flag::FAILED != 0 {
                self.probe
                    .recovered(&record, record.attempts, m.completed - m.first_fail);
            }
            self.report.retired(&record, m.ev.volume.value(), hops);
            self.probe.retired(&record, m.ev.volume.value(), hops);
            if self.mode == ReportMode::Full && matches!(self.sim.mode, WavelengthMode::Static(_)) {
                let w = self.sim.wavelengths as u64;
                let id = self.base - 1;
                // The flow's *current* nominal lanes. Spans were always
                // recorded this way (a partial outage narrows the lanes
                // an attempt drives without narrowing the span); under a
                // mid-run heal the approximation extends to messages
                // retired after the swap.
                let mask = self.s.flow_lane_masks[flow];
                let (lo, hi) = (
                    self.s.path_offsets[flow] as usize,
                    self.s.path_offsets[flow + 1] as usize,
                );
                for i in lo..hi {
                    let row = u64::from(self.s.path_segs[i]) * w;
                    let mut rest = mask;
                    while rest != 0 {
                        let lane = u64::from(rest.trailing_zeros());
                        rest &= rest - 1;
                        self.s.spans.push((row + lane, m.started, m.completed, id));
                    }
                }
            }
        }
    }

    /// Hands the buffers back after a failed run.
    fn into_scratch(self) -> SimScratch {
        self.s
    }

    /// Assembles the report once the queue drained.
    fn finish(mut self) -> (OpenLoopReport, SimScratch) {
        self.retire_front();
        self.probe.finished(self.horizon, self.last_injection);
        debug_assert!(self.s.queue.is_empty(), "the event queue drained");
        debug_assert!(
            self.s.msgs.is_empty(),
            "every message completes once the queue drains"
        );
        debug_assert!(
            self.s.ni_queues.iter().all(VecDeque::is_empty),
            "completions always drain the NI queues"
        );
        debug_assert!(
            self.s.gates.iter().all(|g| g.offered.is_empty()),
            "deliveries and wake-ups always drain the gates"
        );
        let (conflict_count, conflict_examples) = match (&self.sim.mode, self.mode) {
            (WavelengthMode::Dynamic(_), _) => (0, Vec::new()),
            (WavelengthMode::Static(_), ReportMode::Full) => {
                sweep_conflicts_flat(&mut self.s.spans, self.sim.wavelengths)
            }
            (WavelengthMode::Static(_), ReportMode::Streaming) => {
                (self.online_conflicts, Vec::new())
            }
        };
        let segment_busy: Vec<(DirectedSegment, u64)> = self
            .s
            .segment_busy
            .iter()
            .enumerate()
            .filter(|&(_, &busy)| busy > 0)
            .map(|(dense, &busy)| (DirectedSegment::from_segment_index(dense), busy))
            .collect();
        let credit_occupancy = match self.sim.injection {
            InjectionMode::Credit { window } if self.horizon > 0 => {
                let used: f64 = self.s.gates.iter().map(SourceGate::credit_cycles).sum();
                #[allow(clippy::cast_precision_loss)]
                {
                    used / (self.horizon as f64 * self.n as f64 * window as f64)
                }
            }
            InjectionMode::CreditPerDst { window } if self.horizon > 0 => {
                // Full per-destination pools: each source owns
                // `(n - 1) × window` credits.
                let used: f64 = self.s.gates.iter().map(SourceGate::credit_cycles).sum();
                #[allow(clippy::cast_precision_loss)]
                {
                    used / (self.horizon as f64 * (self.n * (self.n - 1) * window) as f64)
                }
            }
            _ => 0.0,
        };
        let (failed_attempts, retransmitted_bits, lost_messages, lost_bits) =
            self.fault.as_deref().map_or((0, 0.0, 0, 0.0), |fs| {
                (
                    fs.failed_attempts,
                    fs.retransmitted_bits,
                    fs.lost_messages,
                    fs.lost_bits,
                )
            });
        let report = OpenLoopReport {
            nodes: self.n,
            wavelengths: self.sim.wavelengths,
            injection: self.sim.injection,
            horizon: self.horizon,
            last_injection: self.last_injection,
            message_count: self.next_id - lost_messages,
            records: self.report.records,
            latency_hist: self.report.latency_hist,
            stall_hist: self.report.stall_hist,
            peak_in_flight: self.peak_in_flight,
            offered_bits: self.offered_bits,
            delivered_bits: self.report.delivered_bits,
            blocked_attempts: self.blocked_attempts,
            conflict_count,
            conflict_examples,
            segment_busy,
            lane_busy: self.s.lane_busy.clone(),
            credit_occupancy,
            failed_attempts,
            retransmitted_bits,
            lost_messages,
            lost_bits,
        };
        (report, self.s)
    }
}

/// Counts wavelength collisions with one sort over the flat span vector —
/// spans are keyed by `dense segment index × comb + lane`, so a single
/// `sort_unstable` replaces the old per-`(segment, lane)` hash map and its
/// per-key sorts, and keys iterate in the canonical report order for free.
pub(crate) fn sweep_conflicts_flat(
    spans: &mut [FlatSpan],
    wavelengths: usize,
) -> (usize, Vec<OpenLoopConflict>) {
    spans.sort_unstable();
    let mut count = 0usize;
    let mut examples = Vec::new();
    // Active set of (end, msg) spans per key run; overlapping pairs count
    // once each.
    let mut active: Vec<(u64, usize)> = Vec::new();
    let mut current_key = u64::MAX;
    for &(key, start, end, id) in spans.iter() {
        if key != current_key {
            current_key = key;
            active.clear();
        }
        active.retain(|&(e, _)| e > start);
        for &(active_end, other) in &active {
            count += 1;
            if examples.len() < CONFLICT_EXAMPLE_CAP {
                let w = wavelengths as u64;
                examples.push(OpenLoopConflict {
                    segment: DirectedSegment::from_segment_index((key / w) as usize),
                    channel: WavelengthId((key % w) as usize),
                    first: MsgId(other.min(id)),
                    second: MsgId(other.max(id)),
                    overlap: (start, end.min(active_end)),
                });
            }
        }
        active.push((end, id));
    }
    (count, examples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use onoc_topology::Direction;

    fn rate() -> BitsPerCycle {
        BitsPerCycle::new(1.0)
    }

    fn ring16() -> RingTopology {
        RingTopology::new(16)
    }

    fn event(time: u64, src: usize, dst: usize, bits: f64) -> TrafficEvent {
        TrafficEvent {
            time,
            src: NodeId(src),
            dst: NodeId(dst),
            volume: Bits::new(bits),
        }
    }

    fn dynamic_single() -> WavelengthMode {
        WavelengthMode::Dynamic(DynamicPolicy::Single)
    }

    #[test]
    fn empty_source_is_a_clean_zero_report() {
        let sim = OpenLoopSimulator::new(ring16(), 4, rate(), dynamic_single());
        let report = sim.run(std::iter::empty()).unwrap();
        assert_eq!(report.records.len(), 0);
        assert_eq!(report.horizon, 0);
        assert_eq!(report.accepted_throughput(), 0.0);
        assert_eq!(report.latency().count, 0);
        assert_eq!(report.injection, InjectionMode::Open);
    }

    #[test]
    fn restricted_flow_rows_are_bit_identical_to_the_full_table() {
        // A trace over three flows, replayed with the route/mask build
        // restricted to exactly those rows: the reports must match the
        // full-table run bit for bit, in both modes and both report
        // depths.
        let events = vec![
            event(0, 0, 3, 96.0),
            event(4, 5, 2, 128.0),
            event(9, 0, 3, 64.0),
            event(15, 11, 12, 256.0),
        ];
        let mut rows: Vec<u32> = events
            .iter()
            .map(|e| (e.src.0 * 16 + e.dst.0) as u32)
            .collect();
        rows.sort_unstable();
        rows.dedup();
        for mode in [
            dynamic_single(),
            WavelengthMode::Static(StaticFlowMap::striped(16, 4, 1)),
        ] {
            let sim = OpenLoopSimulator::new(ring16(), 4, rate(), mode);
            for depth in [ReportMode::Full, ReportMode::Streaming] {
                let full = sim
                    .run_with_scratch(events.clone().into_iter(), &mut SimScratch::new(), depth)
                    .unwrap();
                let mut scratch = SimScratch::new();
                scratch.set_flow_rows(Some(rows.clone()));
                let restricted = sim
                    .run_with_scratch(events.clone().into_iter(), &mut scratch, depth)
                    .unwrap();
                assert_eq!(full, restricted, "{depth:?} drifted under flow rows");
            }
        }
    }

    #[test]
    fn single_message_latency_is_transmission_time() {
        let sim = OpenLoopSimulator::new(ring16(), 4, rate(), dynamic_single());
        let report = sim.run(vec![event(10, 0, 3, 500.0)].into_iter()).unwrap();
        assert_eq!(report.records.len(), 1);
        // 500 bits over 1 λ at 1 bit/cycle.
        assert_eq!(report.records[0].latency(), 500);
        assert_eq!(report.records[0].queueing(), 0);
        assert_eq!(report.records[0].stall(), 0);
        assert_eq!(report.horizon, 510);
    }

    #[test]
    fn contention_queues_fifo_and_counts_blocking() {
        // Two messages on the same 1-λ path at the same instant: the
        // second waits for the first.
        let sim = OpenLoopSimulator::new(ring16(), 1, rate(), dynamic_single());
        let src = vec![event(0, 0, 3, 100.0), event(0, 0, 3, 100.0)];
        let report = sim.run(src.into_iter()).unwrap();
        assert_eq!(report.blocked_attempts, 1);
        assert_eq!(report.records[0].latency(), 100);
        assert_eq!(report.records[1].queueing(), 100);
        assert_eq!(report.records[1].latency(), 200);
    }

    #[test]
    fn disjoint_paths_do_not_interact() {
        let sim = OpenLoopSimulator::new(ring16(), 1, rate(), dynamic_single());
        // 0→2 rides segments 0,1 clockwise; 8→10 rides 8,9: no overlap.
        let src = vec![event(0, 0, 2, 100.0), event(0, 8, 10, 100.0)];
        let report = sim.run(src.into_iter()).unwrap();
        assert_eq!(report.blocked_attempts, 0);
        assert!(report.records.iter().all(|r| r.latency() == 100));
    }

    #[test]
    fn opposite_waveguides_are_independent() {
        // 0→1 (CW, segment 0) and 1→0 (CCW, segment 0) share the physical
        // span but not the waveguide.
        let sim = OpenLoopSimulator::new(ring16(), 1, rate(), dynamic_single());
        let src = vec![event(0, 0, 1, 100.0), event(0, 1, 0, 100.0)];
        let report = sim.run(src.into_iter()).unwrap();
        assert_eq!(report.blocked_attempts, 0);
    }

    #[test]
    fn greedy_mode_uses_the_free_comb() {
        let sim = OpenLoopSimulator::new(
            ring16(),
            8,
            rate(),
            WavelengthMode::Dynamic(DynamicPolicy::Greedy { cap: 8 }),
        );
        let report = sim.run(vec![event(0, 0, 3, 800.0)].into_iter()).unwrap();
        assert_eq!(report.records[0].lanes, 8);
        assert_eq!(report.records[0].latency(), 100);
    }

    #[test]
    fn unordered_source_is_rejected() {
        let sim = OpenLoopSimulator::new(ring16(), 4, rate(), dynamic_single());
        let src = vec![event(10, 0, 3, 100.0), event(5, 0, 3, 100.0)];
        assert_eq!(
            sim.run(src.into_iter()).unwrap_err(),
            OpenLoopError::UnorderedSource {
                time: 5,
                previous: 10
            }
        );
    }

    #[test]
    fn degenerate_and_foreign_events_are_rejected() {
        let sim = OpenLoopSimulator::new(ring16(), 4, rate(), dynamic_single());
        assert!(matches!(
            sim.run(vec![event(0, 3, 3, 100.0)].into_iter()),
            Err(OpenLoopError::DegenerateEvent { index: 0 })
        ));
        assert!(matches!(
            sim.run(vec![event(0, 0, 16, 100.0)].into_iter()),
            Err(OpenLoopError::ForeignNode { .. })
        ));
    }

    #[test]
    fn static_mode_serialises_per_flow() {
        let map = StaticFlowMap::striped(16, 8, 1);
        let sim = OpenLoopSimulator::new(ring16(), 8, rate(), WavelengthMode::Static(map));
        let src = vec![event(0, 0, 3, 100.0), event(10, 0, 3, 100.0)];
        let report = sim.run(src.into_iter()).unwrap();
        // Second message waits for the flow's lane: starts at 100, not 10.
        assert_eq!(report.records[1].started, 100);
        assert_eq!(report.blocked_attempts, 1);
        // Same flow reusing its own lane sequentially never conflicts.
        assert_eq!(report.conflict_count, 0);
    }

    #[test]
    fn static_mode_detects_cross_flow_collisions() {
        // Flows 0→2 (CW segments 0,1) and 1→2 (CW segment 1) share
        // segment 1; force both onto λ1 so they collide there.
        let nodes = 4;
        let mut table = vec![Vec::new(); nodes * nodes];
        table[2] = vec![WavelengthId(0)]; // flow 0→2
        table[nodes + 2] = vec![WavelengthId(0)]; // flow 1→2
        for src in 0..nodes {
            for dst in 0..nodes {
                if src != dst && table[src * nodes + dst].is_empty() {
                    table[src * nodes + dst] = vec![WavelengthId(1)];
                }
            }
        }
        let map = StaticFlowMap::from_table(nodes, 2, table);
        let sim = OpenLoopSimulator::new(
            RingTopology::new(nodes),
            2,
            rate(),
            WavelengthMode::Static(map),
        );
        let src = vec![event(0, 0, 2, 100.0), event(0, 1, 2, 100.0)];
        let report = sim.run(src.into_iter()).unwrap();
        assert_eq!(report.conflict_count, 1);
        let c = report.conflict_examples[0];
        assert_eq!(c.channel, WavelengthId(0));
        assert_eq!(
            c.segment,
            DirectedSegment {
                index: 1,
                direction: Direction::Clockwise
            }
        );
        assert_eq!((c.first, c.second), (MsgId(0), MsgId(1)));
    }

    #[test]
    fn occupancy_accounting_adds_up() {
        let sim = OpenLoopSimulator::new(ring16(), 4, rate(), dynamic_single());
        // One message, 2 hops, 100 cycles on one lane.
        let report = sim.run(vec![event(0, 0, 2, 100.0)].into_iter()).unwrap();
        let busy: u64 = report.segment_busy.iter().map(|&(_, b)| b).sum();
        assert_eq!(busy, 200);
        assert_eq!(report.lane_busy.iter().sum::<u64>(), 200);
        assert!(report.mean_wavelength_occupancy() > 0.0);
        assert!((report.lane_occupancy(WavelengthId(0)) - 200.0 / (100.0 * 32.0)).abs() < 1e-12);
        assert_eq!(report.lane_occupancy(WavelengthId(3)), 0.0);
    }

    #[test]
    fn throughput_matches_offered_when_unsaturated() {
        let sim = OpenLoopSimulator::new(ring16(), 8, rate(), dynamic_single());
        let src: Vec<_> = (0..10)
            .map(|k| event(k * 200, (k % 15) as usize, ((k % 15) + 1) as usize, 100.0))
            .collect();
        let report = sim.run(src.into_iter()).unwrap();
        assert_eq!(report.blocked_attempts, 0);
        assert_eq!(report.offered_bits, 1_000.0);
        assert_eq!(report.delivered_bits, 1_000.0);
        assert!(report.accepted_throughput() > 0.0);
    }

    #[test]
    fn flow_latency_grouping() {
        let sim = OpenLoopSimulator::new(ring16(), 8, rate(), dynamic_single());
        let src = vec![
            event(0, 0, 3, 100.0),
            event(0, 5, 9, 200.0),
            event(500, 0, 3, 100.0),
        ];
        let report = sim.run(src.into_iter()).unwrap();
        let by_flow = report.latency_by_flow();
        assert_eq!(by_flow.len(), 2);
        assert_eq!(by_flow[0].0, (NodeId(0), NodeId(3)));
        assert_eq!(by_flow[0].1.count, 2);
        assert_eq!(by_flow[1].1.count, 1);
    }

    // ------------------------------------------------- closed loop --

    /// A burst of same-source messages offered back to back.
    fn burst(count: usize, gap: u64, bits: f64) -> Vec<TrafficEvent> {
        (0..count)
            .map(|k| event(k as u64 * gap, 0, 3, bits))
            .collect()
    }

    #[test]
    fn credit_window_bounds_in_flight_and_records_stalls() {
        // Window 1 on a 1-λ comb: message k may only be admitted once
        // message k-1 delivered, so admissions serialise exactly.
        let sim = OpenLoopSimulator::with_injection(
            ring16(),
            1,
            rate(),
            dynamic_single(),
            InjectionMode::Credit { window: 1 },
        );
        let report = sim.run(burst(4, 0, 100.0).into_iter()).unwrap();
        assert_eq!(report.records.len(), 4);
        for (k, r) in report.records.iter().enumerate() {
            assert_eq!(r.admitted, k as u64 * 100, "admissions serialise");
            assert_eq!(r.queueing(), 0, "admitted messages never queue at the NI");
        }
        assert_eq!(report.stalled_count(), 3);
        assert_eq!(report.stall().max, 300);
        // The whole window is in flight the whole run.
        assert!((report.credit_occupancy - 1.0 / 16.0).abs() < 1e-9);
        // Open loop on the same input queues at the NI instead.
        let open = OpenLoopSimulator::new(ring16(), 1, rate(), dynamic_single())
            .run(burst(4, 0, 100.0).into_iter())
            .unwrap();
        assert_eq!(open.stalled_count(), 0);
        assert_eq!(open.records[3].queueing(), 300);
        // Both deliver everything with identical end-to-end latency here.
        assert_eq!(open.records[3].completed, report.records[3].completed);
    }

    #[test]
    fn large_credit_window_matches_open_loop() {
        let events: Vec<_> = (0..20)
            .map(|k| event(k * 7, (k % 5) as usize, ((k % 5) + 6) as usize, 256.0))
            .collect();
        let open = OpenLoopSimulator::new(ring16(), 4, rate(), dynamic_single())
            .run(events.clone().into_iter())
            .unwrap();
        let credit = OpenLoopSimulator::with_injection(
            ring16(),
            4,
            rate(),
            dynamic_single(),
            InjectionMode::Credit { window: 64 },
        )
        .run(events.into_iter())
        .unwrap();
        // A window no source ever exhausts never stalls: identical spans.
        assert_eq!(credit.stalled_count(), 0);
        for (a, b) in open.records.iter().zip(&credit.records) {
            assert_eq!((a.started, a.completed), (b.started, b.completed));
        }
    }

    #[test]
    fn closed_loop_conserves_messages_and_bits() {
        for injection in [
            InjectionMode::Credit { window: 2 },
            InjectionMode::Ecn { threshold: 0.05 },
        ] {
            let events: Vec<_> = (0..50)
                .map(|k| event(k * 2, (k % 8) as usize, ((k % 8) + 4) as usize, 320.0))
                .collect();
            let sim =
                OpenLoopSimulator::with_injection(ring16(), 2, rate(), dynamic_single(), injection);
            let report = sim.run(events.clone().into_iter()).unwrap();
            assert_eq!(report.records.len(), events.len(), "{injection}");
            assert_eq!(report.offered_bits, report.delivered_bits, "{injection}");
            for r in &report.records {
                assert!(r.injected <= r.admitted, "{injection}");
                assert!(r.admitted <= r.started, "{injection}");
                assert!(r.started < r.completed, "{injection}");
            }
        }
    }

    #[test]
    fn ecn_throttles_under_congestion() {
        // A sustained stream on a tiny comb crosses the 5% occupancy
        // threshold (one 3-hop transmission is 3/32 of the fabric) on
        // every delivery: AIMD halves the source's rate, stretching its
        // offered gaps, so the last admission lands later than the last
        // offer. The stream must outlast a delivery time for the first
        // mark to feed back while offers still arrive.
        let events = burst(60, 2, 50.0);
        let last_offer = events.last().unwrap().time;
        let sim = OpenLoopSimulator::with_injection(
            ring16(),
            1,
            rate(),
            dynamic_single(),
            InjectionMode::Ecn { threshold: 0.05 },
        );
        let report = sim.run(events.into_iter()).unwrap();
        assert!(report.stalled_count() > 0, "pacing must defer admissions");
        assert!(report.records.last().unwrap().admitted > last_offer);
        // Everything still delivers.
        assert_eq!(report.records.len(), 60);
    }

    #[test]
    fn stale_gate_wakes_do_not_extend_the_horizon() {
        // An AIMD recovery can reschedule a source's wake *earlier*,
        // leaving the superseded wake in the queue; when it pops after
        // the last completion it must not inflate the horizon (which
        // would dilute accepted throughput and every occupancy metric).
        let sim = OpenLoopSimulator::with_injection(
            ring16(),
            2,
            rate(),
            dynamic_single(),
            InjectionMode::Ecn { threshold: 0.15 },
        );
        let events = vec![
            event(0, 0, 8, 2000.0),
            event(1, 0, 3, 100.0),
            event(1801, 0, 3, 20.0),
        ];
        let report = sim.run(events.into_iter()).unwrap();
        let last_completion = report.records.iter().map(|r| r.completed).max().unwrap();
        assert_eq!(
            report.horizon, last_completion,
            "horizon is the cycle of the last completion"
        );
    }

    #[test]
    fn ecn_with_high_threshold_never_marks() {
        let events = burst(10, 50, 100.0);
        let report = OpenLoopSimulator::with_injection(
            ring16(),
            8,
            rate(),
            dynamic_single(),
            InjectionMode::Ecn { threshold: 1.0 },
        )
        .run(events.into_iter())
        .unwrap();
        assert_eq!(report.stalled_count(), 0, "unmarked sources never pace");
    }

    #[test]
    fn closed_loop_static_mode_keeps_the_conflict_checker() {
        let map = StaticFlowMap::striped(16, 8, 1);
        let sim = OpenLoopSimulator::with_injection(
            ring16(),
            8,
            rate(),
            WavelengthMode::Static(map),
            InjectionMode::Credit { window: 1 },
        );
        let src = vec![event(0, 0, 3, 100.0), event(0, 0, 3, 100.0)];
        let report = sim.run(src.into_iter()).unwrap();
        // Window 1 admits the second message only at delivery of the
        // first, so the flow never double-books its lane.
        assert_eq!(report.records[1].admitted, 100);
        assert_eq!(report.records[1].stall(), 100);
        assert_eq!(report.conflict_count, 0);
        assert_eq!(report.blocked_attempts, 0);
    }

    #[test]
    #[should_panic(expected = "credit window")]
    fn zero_credit_window_panics_at_construction() {
        let _ = OpenLoopSimulator::with_injection(
            ring16(),
            4,
            rate(),
            dynamic_single(),
            InjectionMode::Credit { window: 0 },
        );
    }

    proptest::proptest! {
        /// Conservation under closed-loop injection: for any credit
        /// window / ECN threshold, every offered message is delivered
        /// exactly once with ordered timestamps — none lost, none stuck.
        #[test]
        fn closed_loop_conserves_traffic(
            seed in 0u64..500,
            window in 1usize..6,
            wavelengths in 1usize..5,
            use_ecn in 0usize..2,
        ) {
            use proptest::prelude::*;
            // A deterministic pseudo-random ordered stream from the seed.
            let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let mut time = 0u64;
            let events: Vec<TrafficEvent> = (0..80)
                .map(|_| {
                    time += next() % 4;
                    let src = (next() % 16) as usize;
                    let dst = (src + 1 + (next() % 15) as usize) % 16;
                    event(time, src, dst, 64.0 + (next() % 512) as f64)
                })
                .collect();
            let injection = if use_ecn == 0 {
                InjectionMode::Credit { window }
            } else {
                InjectionMode::Ecn { threshold: 0.1 + window as f64 * 0.15 }
            };
            let sim = OpenLoopSimulator::with_injection(
                ring16(),
                wavelengths,
                rate(),
                dynamic_single(),
                injection,
            );
            let report = sim.run(events.clone().into_iter()).unwrap();
            prop_assert_eq!(report.records.len(), events.len());
            prop_assert!((report.offered_bits - report.delivered_bits).abs() < 1e-9);
            let last_completion = report.records.iter().map(|r| r.completed).max().unwrap();
            prop_assert_eq!(report.horizon, last_completion);
            for (r, e) in report.records.iter().zip(&events) {
                prop_assert_eq!(r.injected, e.time);
                prop_assert_eq!((r.src, r.dst), (e.src, e.dst));
                prop_assert!(r.injected <= r.admitted);
                prop_assert!(r.admitted <= r.started);
                prop_assert!(r.started < r.completed);
            }

            // The streaming path over the same corpus: every exact
            // metric agrees, and nearest-rank quantiles land within one
            // log histogram bin of the exact nearest-rank sample.
            let streaming = sim.run_streaming(events.clone().into_iter()).unwrap();
            prop_assert_eq!(streaming.message_count, events.len());
            prop_assert!(streaming.records.is_empty());
            prop_assert_eq!(streaming.horizon, report.horizon);
            prop_assert_eq!(&streaming.segment_busy, &report.segment_busy);
            prop_assert_eq!(streaming.stalled_count(), report.stalled_count());
            prop_assert_eq!(&streaming.latency_hist, &report.latency_hist);
            let mut latencies: Vec<u64> =
                report.records.iter().map(MsgRecord::latency).collect();
            latencies.sort_unstable();
            let stats = streaming.latency();
            for (q, approx) in [(0.50, stats.p50), (0.95, stats.p95), (0.99, stats.p99)] {
                #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
                let exact = latencies[(q * (latencies.len() - 1) as f64).round() as usize];
                #[allow(clippy::cast_precision_loss)]
                let exact_f = exact as f64;
                prop_assert!(
                    approx <= exact_f && exact_f <= approx * 1.125 + 1.0,
                    "q {}: exact nearest-rank {} vs streaming {}", q, exact, approx
                );
            }
        }
    }

    #[test]
    fn closed_loop_accepted_throughput_plateaus() {
        // Offered load doubles; sustained (credit-gated) accepted
        // throughput stays within a few percent — the finite knee.
        let run_at = |gap: u64| {
            let events: Vec<_> = (0..600)
                .flat_map(|k| {
                    (0..16).filter_map(move |s| {
                        if s % 2 == 0 {
                            Some(event(k * gap, s, (s + 8) % 16, 512.0))
                        } else {
                            None
                        }
                    })
                })
                .collect();
            OpenLoopSimulator::with_injection(
                ring16(),
                2,
                rate(),
                dynamic_single(),
                InjectionMode::Credit { window: 2 },
            )
            .run(events.into_iter())
            .unwrap()
        };
        let saturated = run_at(8); // offered well past capacity
        let doubled = run_at(4); // offered 2× that
        assert!(saturated.offered_load() < doubled.offered_load() * 0.6);
        let ratio = doubled.accepted_throughput() / saturated.accepted_throughput();
        assert!(
            (0.9..=1.1).contains(&ratio),
            "sustained throughput must plateau, got ratio {ratio}"
        );
    }
}
