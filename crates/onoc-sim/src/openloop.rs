//! The open/closed-loop traffic engine: simulate *streams of timed
//! messages* instead of a closed task graph.
//!
//! The task-graph simulators ([`Simulator`](crate::Simulator),
//! [`DynamicSimulator`](crate::DynamicSimulator)) replay one application
//! whose communications are gated by task dependencies. Saturation studies
//! (Dally & Towles ch. 23; Das et al., arXiv:1608.06972) instead drive the
//! network with timed message streams, and the figure of merit is the
//! latency distribution as offered load approaches capacity.
//!
//! [`OpenLoopSimulator`] polls a [`TrafficSource`] for timed
//! [`TrafficEvent`]s and services them on the ring WDM fabric. Two
//! orthogonal policies parameterise one shared event core:
//!
//! * **Wavelength discipline** ([`WavelengthMode`]):
//!   * **Dynamic** — runtime arbitration like
//!     [`DynamicSimulator`](crate::DynamicSimulator): a message claims free
//!     wavelengths along its whole path or waits. Every ONI keeps a FIFO
//!     injection queue — a node's messages transmit in order (head-of-line
//!     at the network interface), different nodes arbitrate independently.
//!     Per-source queues keep retry work O(nodes) per release, so saturated
//!     sweeps stay fast.
//!   * **Static** — every ordered `(src, dst)` flow owns a fixed wavelength
//!     set ([`StaticFlowMap`]); messages of one flow serialise on their own
//!     lanes, and the simulator *checks* rather than arbitrates: any two
//!     flows that ever drive a common wavelength on a common directed
//!     segment at the same time are recorded as [`OpenLoopConflict`]s. This
//!     is the open-loop analogue of the §III-D static-validity checker.
//!
//! * **Injection policy** ([`InjectionMode`]): pure open loop (offered
//!   time is admission time, queues may grow without bound past
//!   saturation), credit-based closed loop (per-source in-flight window,
//!   credits returned on delivery), or ECN-style closed loop (sources
//!   halve their offered rate on congestion marks and additively
//!   recover). See the [`injection`](crate::InjectionMode) docs. Closed
//!   loops bound queue growth, so *sustained* operating points near the
//!   saturation knee are measurable — accepted throughput plateaus
//!   instead of queueing delay diverging.
//!
//! Synthetic traffic patterns that feed this interface live in the
//! `onoc-traffic` crate; the trait is defined here so the engine has no
//! dependency on how events are produced.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use onoc_photonics::WavelengthId;
use onoc_topology::{DirectedSegment, NodeId, RingPath, RingTopology};
use onoc_units::{Bits, BitsPerCycle};

use crate::DynamicPolicy;
use crate::injection::{InjectionMode, LaneArbiter, SourceGate};
use crate::report::{MsgId, MsgRecord, OpenLoopConflict, OpenLoopReport};

/// One injected message: `volume` bits from `src` to `dst`, offered to the
/// network interface at cycle `time`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficEvent {
    /// Offered injection cycle.
    pub time: u64,
    /// Producing ONI.
    pub src: NodeId,
    /// Consuming ONI.
    pub dst: NodeId,
    /// Message size.
    pub volume: Bits,
}

/// A pull-based producer of timed messages.
///
/// The engine polls `next_event` and requires the stream to be ordered by
/// nondecreasing `time` (violations are rejected at run time). Sources are
/// finite; an open-ended source is expressed by generating up to a horizon.
pub trait TrafficSource {
    /// Returns the next message, or `None` when the stream is exhausted.
    fn next_event(&mut self) -> Option<TrafficEvent>;
}

/// Blanket adapter: any iterator of events is a source.
impl<I: Iterator<Item = TrafficEvent>> TrafficSource for I {
    fn next_event(&mut self) -> Option<TrafficEvent> {
        self.next()
    }
}

/// A fixed design-time wavelength set per ordered `(src, dst)` flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticFlowMap {
    nodes: usize,
    wavelengths: usize,
    /// Indexed by `src * nodes + dst`; empty for the diagonal.
    lanes: Vec<Vec<WavelengthId>>,
}

impl StaticFlowMap {
    /// Stripes `lanes_per_flow` consecutive wavelengths over the flows in
    /// flow-id order (`src * nodes + dst`), wrapping around the comb.
    ///
    /// With enough wavelengths per concurrently-active segment the stripe
    /// is conflict-free; undersized combs intentionally collide so the
    /// checker has something to report.
    ///
    /// # Panics
    ///
    /// Panics if `nodes < 2`, `wavelengths == 0`, `lanes_per_flow == 0` or
    /// `lanes_per_flow > wavelengths`.
    #[must_use]
    pub fn striped(nodes: usize, wavelengths: usize, lanes_per_flow: usize) -> Self {
        assert!(nodes >= 2, "a ring needs at least 2 nodes, got {nodes}");
        assert!(wavelengths > 0, "the comb needs at least one wavelength");
        assert!(
            lanes_per_flow >= 1 && lanes_per_flow <= wavelengths,
            "lanes per flow must be in 1..={wavelengths}, got {lanes_per_flow}"
        );
        let mut lanes = vec![Vec::new(); nodes * nodes];
        let mut next = 0usize;
        for src in 0..nodes {
            for dst in 0..nodes {
                if src == dst {
                    continue;
                }
                let set = (0..lanes_per_flow)
                    .map(|k| WavelengthId((next + k) % wavelengths))
                    .collect();
                lanes[src * nodes + dst] = set;
                next = (next + lanes_per_flow) % wavelengths;
            }
        }
        Self {
            nodes,
            wavelengths,
            lanes,
        }
    }

    /// Builds a map from an explicit per-flow table (indexed
    /// `src * nodes + dst`; diagonal entries must be empty).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch, an empty off-diagonal entry, or a lane
    /// outside the comb.
    #[must_use]
    pub fn from_table(nodes: usize, wavelengths: usize, lanes: Vec<Vec<WavelengthId>>) -> Self {
        assert_eq!(lanes.len(), nodes * nodes, "need one entry per (src, dst)");
        for (i, set) in lanes.iter().enumerate() {
            let (src, dst) = (i / nodes, i % nodes);
            if src == dst {
                assert!(set.is_empty(), "diagonal flow n{src}→n{dst} must be empty");
            } else {
                assert!(!set.is_empty(), "flow n{src}→n{dst} has no wavelengths");
                for lane in set {
                    assert!(
                        lane.index() < wavelengths,
                        "flow n{src}→n{dst} uses {lane} outside a {wavelengths}-λ comb"
                    );
                }
            }
        }
        Self {
            nodes,
            wavelengths,
            lanes,
        }
    }

    /// Internal constructor for synthesised maps (see `flows.rs`); unlike
    /// [`StaticFlowMap::from_table`], off-diagonal entries may stay empty —
    /// the engine rejects traffic on them with
    /// [`OpenLoopError::UnmappedFlow`].
    pub(crate) fn from_parts(
        nodes: usize,
        wavelengths: usize,
        lanes: Vec<Vec<WavelengthId>>,
    ) -> Self {
        debug_assert_eq!(lanes.len(), nodes * nodes);
        Self {
            nodes,
            wavelengths,
            lanes,
        }
    }

    /// The wavelengths owned by the `src → dst` flow.
    #[must_use]
    pub fn lanes(&self, src: NodeId, dst: NodeId) -> &[WavelengthId] {
        &self.lanes[src.0 * self.nodes + dst.0]
    }

    /// Comb size this map was built for.
    #[must_use]
    pub fn wavelengths(&self) -> usize {
        self.wavelengths
    }
}

/// How the engine assigns wavelengths to messages.
#[derive(Debug, Clone, PartialEq)]
pub enum WavelengthMode {
    /// Runtime arbitration with FIFO queueing (see crate docs).
    Dynamic(DynamicPolicy),
    /// Fixed per-flow lanes with conflict *checking* (see crate docs).
    Static(StaticFlowMap),
}

/// Errors raised by the open/closed-loop engine.
#[derive(Debug, Clone, PartialEq)]
pub enum OpenLoopError {
    /// The source produced events with decreasing timestamps.
    UnorderedSource {
        /// Timestamp that went backwards.
        time: u64,
        /// The previously seen timestamp.
        previous: u64,
    },
    /// An event references a node outside the ring.
    ForeignNode {
        /// The offending node.
        node: NodeId,
        /// Ring size.
        nodes: usize,
    },
    /// An event has `src == dst` (the optical layer is not used) or a
    /// nonpositive volume.
    DegenerateEvent {
        /// Index of the offending event in the stream.
        index: usize,
    },
    /// Static mode: the flow map owns no wavelengths for this flow (it was
    /// not in the measured matrix a synthesised map was built from).
    UnmappedFlow {
        /// Producing ONI.
        src: NodeId,
        /// Consuming ONI.
        dst: NodeId,
    },
}

impl core::fmt::Display for OpenLoopError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            OpenLoopError::UnorderedSource { time, previous } => {
                write!(f, "source time went backwards: {time} after {previous}")
            }
            OpenLoopError::ForeignNode { node, nodes } => {
                write!(f, "{node} is not on a {nodes}-node ring")
            }
            OpenLoopError::DegenerateEvent { index } => {
                write!(f, "event {index} is degenerate (self-loop or empty volume)")
            }
            OpenLoopError::UnmappedFlow { src, dst } => {
                write!(f, "static flow map owns no wavelengths for {src}→{dst}")
            }
        }
    }
}

impl std::error::Error for OpenLoopError {}

/// How many conflict examples an [`OpenLoopReport`] retains.
const CONFLICT_EXAMPLE_CAP: usize = 16;

/// Engine events. Variant order is the tiebreak at equal timestamps:
/// completions release lanes and credits first, static transmissions
/// start, gates wake, and only then do fresh offers arrive — so released
/// capacity is reusable in the same cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    /// A transmission delivered its last bit.
    Completed(usize),
    /// A static-mode transmission begins driving its lanes.
    Started(usize),
    /// A closed-loop gate retries admission for one source.
    GateWake(usize),
    /// A source offers a message to its injection gate.
    Offered(usize),
}

/// The open/closed-loop engine. See the module docs for semantics.
#[derive(Debug)]
pub struct OpenLoopSimulator {
    ring: RingTopology,
    wavelengths: usize,
    rate: BitsPerCycle,
    mode: WavelengthMode,
    injection: InjectionMode,
}

impl OpenLoopSimulator {
    /// Creates an open-loop engine over a `wavelengths`-channel comb
    /// (injection policy [`InjectionMode::Open`]).
    ///
    /// # Panics
    ///
    /// Panics if `wavelengths` is outside `1..=128`, `rate` is not
    /// strictly positive, a greedy policy has `cap == 0`, or a static map
    /// disagrees with `wavelengths`.
    #[must_use]
    pub fn new(
        ring: RingTopology,
        wavelengths: usize,
        rate: BitsPerCycle,
        mode: WavelengthMode,
    ) -> Self {
        Self::with_injection(ring, wavelengths, rate, mode, InjectionMode::Open)
    }

    /// Creates an engine with an explicit injection policy.
    ///
    /// # Panics
    ///
    /// Panics on the conditions of [`OpenLoopSimulator::new`], a zero
    /// credit window, or an ECN threshold outside `(0, 1]`.
    #[must_use]
    pub fn with_injection(
        ring: RingTopology,
        wavelengths: usize,
        rate: BitsPerCycle,
        mode: WavelengthMode,
        injection: InjectionMode,
    ) -> Self {
        assert!(
            wavelengths > 0 && wavelengths <= 128,
            "open-loop simulator supports 1..=128 wavelengths, got {wavelengths}"
        );
        assert!(
            rate.value() > 0.0,
            "per-wavelength data rate must be strictly positive, got {rate}"
        );
        match &mode {
            WavelengthMode::Dynamic(DynamicPolicy::Greedy { cap }) => {
                assert!(*cap > 0, "greedy burst cap must be at least 1");
            }
            WavelengthMode::Dynamic(DynamicPolicy::Single) => {}
            WavelengthMode::Static(map) => {
                assert_eq!(
                    map.wavelengths(),
                    wavelengths,
                    "static flow map was built for a different comb"
                );
                assert_eq!(
                    map.nodes,
                    ring.node_count(),
                    "static flow map was built for a different ring"
                );
            }
        }
        injection.validate();
        Self {
            ring,
            wavelengths,
            rate,
            mode,
            injection,
        }
    }

    /// The injection policy this engine runs under.
    #[must_use]
    pub fn injection(&self) -> InjectionMode {
        self.injection
    }

    /// Routes a message along the shortest ring direction
    /// (clockwise on ties), matching `RouteStrategy::Shortest`.
    fn route(&self, src: NodeId, dst: NodeId) -> RingPath {
        let direction = self.ring.shortest_direction(src, dst);
        RingPath::new(&self.ring, src, dst, direction)
    }

    /// Drains `source` to completion.
    ///
    /// # Errors
    ///
    /// Returns [`OpenLoopError`] on unordered, foreign-node, degenerate
    /// or (static mode) unmapped events. The stream is validated as it is
    /// consumed.
    pub fn run<S: TrafficSource>(&self, mut source: S) -> Result<OpenLoopReport, OpenLoopError> {
        let mut run = RunState::new(self);
        let mut next_from_source = source.next_event();
        loop {
            // Pull every source event that is due before the next
            // scheduled event (or all of them if none is scheduled).
            while let Some(event) = next_from_source {
                let due_now = match run.queue.peek() {
                    Some(&Reverse((t, _))) => event.time <= t,
                    None => true,
                };
                if !due_now {
                    break;
                }
                run.offer(event)?;
                next_from_source = source.next_event();
            }

            let Some(Reverse((now, event))) = run.queue.pop() else {
                break;
            };
            if let Event::GateWake(s) = event {
                // A wake superseded by a fresher, earlier one (the gate's
                // `wake_at` moved on) is a no-op: every admission it could
                // have triggered was already handled by the fresh wake or
                // a delivery re-drain. It must not extend the horizon —
                // stale wakes can outlive the last completion.
                if run.gates[s].wake_at != Some(now) {
                    continue;
                }
                run.gates[s].wake_at = None;
                run.horizon = run.horizon.max(now);
                run.drain_gate(s, now);
                continue;
            }
            run.horizon = run.horizon.max(now);

            match event {
                Event::Offered(id) => {
                    let src = run.pending[id].src.0;
                    if self.injection.is_closed_loop() {
                        run.gates[src].offered.push_back(id);
                        run.drain_gate(src, now);
                    } else {
                        run.admit(id, now);
                    }
                }
                Event::GateWake(_) => unreachable!("handled above"),
                Event::Started(id) => run.on_started(id),
                Event::Completed(id) => run.on_completed(id, now),
            }
        }
        Ok(run.finish())
    }

    /// Whole-cycle transmission duration over `lanes` wavelengths.
    fn duration(&self, volume: Bits, lanes: usize) -> u64 {
        ((volume.value() / (lanes as f64 * self.rate.value())).ceil() as u64).max(1)
    }
}

/// All mutable state of one engine run: arbitration below the injection
/// gates, the gates themselves, and the accounting that becomes the
/// report.
struct RunState<'a> {
    sim: &'a OpenLoopSimulator,
    n: usize,
    pending: Vec<TrafficEvent>,
    routes: Vec<RingPath>,
    records: Vec<MsgRecord>,
    granted: Vec<Vec<WavelengthId>>,
    /// Offered-time gap to the previous offer of the same source.
    gaps: Vec<u64>,
    /// ECN congestion marks, set when a transmission starts.
    marked: Vec<bool>,
    // Arbitration state below the gate.
    arbiter: LaneArbiter,
    /// Dynamic-mode network-interface FIFOs, one per source ONI.
    ni_queues: Vec<VecDeque<usize>>,
    /// Static-mode next free cycle per flow.
    flow_free_at: HashMap<(NodeId, NodeId), u64>,
    // Injection gates above it.
    gates: Vec<SourceGate>,
    /// Lane-segments currently driven by in-transit messages (the
    /// instantaneous occupancy numerator for ECN marks).
    active_lane_segments: u64,
    /// `2 × nodes × wavelengths`: the occupancy denominator.
    capacity: f64,
    queue: BinaryHeap<Reverse<(u64, Event)>>,
    blocked_attempts: usize,
    segment_busy: HashMap<DirectedSegment, u64>,
    lane_busy: Vec<u64>,
    offered_bits: f64,
    last_injection: u64,
    last_time: u64,
    horizon: u64,
}

impl<'a> RunState<'a> {
    fn new(sim: &'a OpenLoopSimulator) -> Self {
        let n = sim.ring.node_count();
        Self {
            sim,
            n,
            pending: Vec::new(),
            routes: Vec::new(),
            records: Vec::new(),
            granted: Vec::new(),
            gaps: Vec::new(),
            marked: Vec::new(),
            arbiter: LaneArbiter::new(n, sim.wavelengths),
            ni_queues: vec![VecDeque::new(); n],
            flow_free_at: HashMap::new(),
            gates: (0..n).map(|_| SourceGate::new()).collect(),
            active_lane_segments: 0,
            capacity: ((2 * n) * sim.wavelengths) as f64,
            queue: BinaryHeap::new(),
            blocked_attempts: 0,
            segment_busy: HashMap::new(),
            lane_busy: vec![0u64; sim.wavelengths],
            offered_bits: 0.0,
            last_injection: 0,
            last_time: 0,
            horizon: 0,
        }
    }

    /// Validates and registers one source event, scheduling its offer.
    fn offer(&mut self, event: TrafficEvent) -> Result<(), OpenLoopError> {
        if event.time < self.last_time {
            return Err(OpenLoopError::UnorderedSource {
                time: event.time,
                previous: self.last_time,
            });
        }
        self.last_time = event.time;
        for node in [event.src, event.dst] {
            if !self.sim.ring.contains(node) {
                return Err(OpenLoopError::ForeignNode {
                    node,
                    nodes: self.n,
                });
            }
        }
        if event.src == event.dst || event.volume.value() <= 0.0 {
            return Err(OpenLoopError::DegenerateEvent {
                index: self.pending.len(),
            });
        }
        if let WavelengthMode::Static(map) = &self.sim.mode {
            if map.lanes(event.src, event.dst).is_empty() {
                return Err(OpenLoopError::UnmappedFlow {
                    src: event.src,
                    dst: event.dst,
                });
            }
        }
        let id = self.pending.len();
        self.pending.push(event);
        self.routes.push(self.sim.route(event.src, event.dst));
        self.records.push(MsgRecord {
            src: event.src,
            dst: event.dst,
            injected: event.time,
            admitted: 0,
            started: 0,
            completed: 0,
            lanes: 0,
        });
        self.granted.push(Vec::new());
        self.gaps
            .push(self.gates[event.src.0].offered_gap(event.time));
        self.marked.push(false);
        self.offered_bits += event.volume.value();
        self.last_injection = self.last_injection.max(event.time);
        self.queue.push(Reverse((event.time, Event::Offered(id))));
        Ok(())
    }

    /// Admits as many of source `s`'s offered messages as the injection
    /// policy allows at `now`, scheduling a wake-up when ECN pacing
    /// defers the head.
    fn drain_gate(&mut self, s: usize, now: u64) {
        loop {
            let Some(&head) = self.gates[s].offered.front() else {
                return;
            };
            let allowed = match self.sim.injection {
                InjectionMode::Open => now,
                InjectionMode::Credit { window } => {
                    if self.gates[s].in_flight >= window {
                        // The wake-up is the next delivery of this source.
                        return;
                    }
                    now
                }
                InjectionMode::Ecn { .. } => {
                    self.gates[s].ecn_allowed(self.pending[head].time, self.gaps[head])
                }
            };
            if allowed > now {
                if self.gates[s].wake_at.is_none_or(|w| w > allowed) {
                    self.gates[s].wake_at = Some(allowed);
                    self.queue.push(Reverse((allowed, Event::GateWake(s))));
                }
                return;
            }
            self.gates[s].offered.pop_front();
            // Any pending wake was scheduled for this head; admitting it
            // makes that wake obsolete — clear the marker so the leftover
            // queue event is recognised as stale (the loop schedules a
            // fresh wake if the next head still needs pacing).
            self.gates[s].wake_at = None;
            self.admit(head, now);
        }
    }

    /// Passes message `id` through its gate into the network interface.
    fn admit(&mut self, id: usize, now: u64) {
        let sim = self.sim;
        let src = self.pending[id].src.0;
        self.records[id].admitted = now;
        self.gates[src].note_admit(now);
        match &sim.mode {
            WavelengthMode::Dynamic(policy) => {
                // The NI transmits in order: an earlier queued message
                // blocks this one even if its own path is free.
                if !self.ni_queues[src].is_empty() || !self.try_start_dynamic(id, now, *policy) {
                    self.blocked_attempts += 1;
                    self.ni_queues[src].push_back(id);
                }
            }
            WavelengthMode::Static(map) => {
                let (s, d) = (self.pending[id].src, self.pending[id].dst);
                let lanes = map.lanes(s, d);
                debug_assert!(!lanes.is_empty(), "unmapped flows are rejected at offer");
                let free_at = self.flow_free_at.get(&(s, d)).copied().unwrap_or(0);
                let start = now.max(free_at);
                if start > now {
                    self.blocked_attempts += 1;
                }
                let duration = sim.duration(self.pending[id].volume, lanes.len());
                let end = start + duration;
                self.flow_free_at.insert((s, d), end);
                self.records[id].started = start;
                self.records[id].completed = end;
                self.records[id].lanes = lanes.len();
                self.granted[id] = lanes.to_vec();
                self.queue.push(Reverse((start, Event::Started(id))));
                self.queue.push(Reverse((end, Event::Completed(id))));
            }
        }
    }

    /// Attempts to start a dynamic-mode transmission at `now`.
    fn try_start_dynamic(&mut self, id: usize, now: u64, policy: DynamicPolicy) -> bool {
        let Some(lanes) = self.arbiter.claim(&self.routes[id], policy.lane_demand()) else {
            return false;
        };
        let duration = self.sim.duration(self.pending[id].volume, lanes.len());
        self.records[id].started = now;
        self.records[id].completed = now + duration;
        self.records[id].lanes = lanes.len();
        self.granted[id] = lanes;
        self.queue
            .push(Reverse((now + duration, Event::Completed(id))));
        self.note_transmission_start(id);
        true
    }

    /// Occupancy bookkeeping (and the ECN mark) when a transmission
    /// begins driving its lanes.
    fn note_transmission_start(&mut self, id: usize) {
        let span = self.routes[id].hops() as u64 * self.granted[id].len() as u64;
        self.active_lane_segments += span;
        if let InjectionMode::Ecn { threshold } = self.sim.injection {
            self.marked[id] = self.active_lane_segments as f64 / self.capacity > threshold;
        }
    }

    /// A static-mode transmission begins now.
    fn on_started(&mut self, id: usize) {
        self.note_transmission_start(id);
    }

    /// A transmission delivered its last bit: accumulate occupancy,
    /// release lanes and credits, and retry whoever waits on them.
    fn on_completed(&mut self, id: usize, now: u64) {
        let span = self.records[id].completed - self.records[id].started;
        let lanes = self.granted[id].len() as u64;
        let hops = self.routes[id].hops() as u64;
        for seg in self.routes[id].segments() {
            *self.segment_busy.entry(seg).or_insert(0) += span * lanes;
        }
        for lane in &self.granted[id] {
            self.lane_busy[lane.index()] += span * hops;
        }
        self.active_lane_segments -= hops * lanes;
        if let WavelengthMode::Dynamic(policy) = &self.sim.mode {
            let policy = *policy;
            self.arbiter.release(&self.routes[id], &self.granted[id]);
            // Retry each source's head; a started head unblocks the next
            // message behind it.
            for s in 0..self.n {
                while let Some(&head) = self.ni_queues[s].front() {
                    if self.try_start_dynamic(head, now, policy) {
                        self.ni_queues[s].pop_front();
                    } else {
                        break;
                    }
                }
            }
        }
        let src = self.pending[id].src.0;
        self.gates[src].note_delivery(now, self.sim.injection, self.marked[id]);
        if self.sim.injection.is_closed_loop() {
            self.drain_gate(src, now);
        }
    }

    /// Assembles the report once the queue drained.
    fn finish(self) -> OpenLoopReport {
        debug_assert!(
            self.ni_queues.iter().all(VecDeque::is_empty),
            "completions always drain the NI queues"
        );
        debug_assert!(
            self.gates.iter().all(|g| g.offered.is_empty()),
            "deliveries and wake-ups always drain the gates"
        );
        let delivered_bits = self.pending.iter().map(|e| e.volume.value()).sum();
        let (conflict_count, conflict_examples) = match &self.sim.mode {
            WavelengthMode::Dynamic(_) => (0, Vec::new()),
            WavelengthMode::Static(_) => {
                sweep_conflicts(&self.records, &self.routes, &self.granted)
            }
        };
        let mut segment_busy: Vec<_> = self.segment_busy.into_iter().collect();
        segment_busy
            .sort_by_key(|&(s, _)| (s.index, s.direction != onoc_topology::Direction::Clockwise));
        let credit_occupancy = match self.sim.injection {
            InjectionMode::Credit { window } if self.horizon > 0 => {
                let used: f64 = self.gates.iter().map(SourceGate::credit_cycles).sum();
                used / (self.horizon as f64 * self.n as f64 * window as f64)
            }
            _ => 0.0,
        };
        OpenLoopReport {
            nodes: self.n,
            wavelengths: self.sim.wavelengths,
            injection: self.sim.injection,
            horizon: self.horizon,
            last_injection: self.last_injection,
            records: self.records,
            offered_bits: self.offered_bits,
            delivered_bits,
            blocked_attempts: self.blocked_attempts,
            conflict_count,
            conflict_examples,
            segment_busy,
            lane_busy: self.lane_busy,
            credit_occupancy,
        }
    }
}

/// Counts wavelength collisions with a sweep over per-`(segment, lane)`
/// interval lists — O(k log k) per list instead of all-pairs over every
/// message.
fn sweep_conflicts(
    records: &[MsgRecord],
    routes: &[RingPath],
    granted: &[Vec<WavelengthId>],
) -> (usize, Vec<OpenLoopConflict>) {
    /// The `[(start, end, msg)]` spans driving one (segment, lane) pair.
    type SpanList = Vec<(u64, u64, usize)>;
    let mut intervals: HashMap<(DirectedSegment, WavelengthId), SpanList> = HashMap::new();
    for (id, record) in records.iter().enumerate() {
        for seg in routes[id].segments() {
            for &lane in &granted[id] {
                intervals.entry((seg, lane)).or_default().push((
                    record.started,
                    record.completed,
                    id,
                ));
            }
        }
    }
    let mut keys: Vec<_> = intervals.keys().copied().collect();
    keys.sort_by_key(|&(s, l)| {
        (
            s.index,
            s.direction != onoc_topology::Direction::Clockwise,
            l.index(),
        )
    });
    let mut count = 0usize;
    let mut examples = Vec::new();
    for key in keys {
        let spans = intervals.get_mut(&key).expect("key came from the map");
        spans.sort_unstable();
        // Active set of (end, msg) spans; each overlapping pair counts once.
        let mut active: Vec<(u64, usize)> = Vec::new();
        for &(start, end, id) in spans.iter() {
            active.retain(|&(e, _)| e > start);
            for &(active_end, other) in &active {
                count += 1;
                if examples.len() < CONFLICT_EXAMPLE_CAP {
                    examples.push(OpenLoopConflict {
                        segment: key.0,
                        channel: key.1,
                        first: MsgId(other.min(id)),
                        second: MsgId(other.max(id)),
                        overlap: (start, end.min(active_end)),
                    });
                }
            }
            active.push((end, id));
        }
    }
    (count, examples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use onoc_topology::Direction;

    fn rate() -> BitsPerCycle {
        BitsPerCycle::new(1.0)
    }

    fn ring16() -> RingTopology {
        RingTopology::new(16)
    }

    fn event(time: u64, src: usize, dst: usize, bits: f64) -> TrafficEvent {
        TrafficEvent {
            time,
            src: NodeId(src),
            dst: NodeId(dst),
            volume: Bits::new(bits),
        }
    }

    fn dynamic_single() -> WavelengthMode {
        WavelengthMode::Dynamic(DynamicPolicy::Single)
    }

    #[test]
    fn empty_source_is_a_clean_zero_report() {
        let sim = OpenLoopSimulator::new(ring16(), 4, rate(), dynamic_single());
        let report = sim.run(std::iter::empty()).unwrap();
        assert_eq!(report.records.len(), 0);
        assert_eq!(report.horizon, 0);
        assert_eq!(report.accepted_throughput(), 0.0);
        assert_eq!(report.latency().count, 0);
        assert_eq!(report.injection, InjectionMode::Open);
    }

    #[test]
    fn single_message_latency_is_transmission_time() {
        let sim = OpenLoopSimulator::new(ring16(), 4, rate(), dynamic_single());
        let report = sim.run(vec![event(10, 0, 3, 500.0)].into_iter()).unwrap();
        assert_eq!(report.records.len(), 1);
        // 500 bits over 1 λ at 1 bit/cycle.
        assert_eq!(report.records[0].latency(), 500);
        assert_eq!(report.records[0].queueing(), 0);
        assert_eq!(report.records[0].stall(), 0);
        assert_eq!(report.horizon, 510);
    }

    #[test]
    fn contention_queues_fifo_and_counts_blocking() {
        // Two messages on the same 1-λ path at the same instant: the
        // second waits for the first.
        let sim = OpenLoopSimulator::new(ring16(), 1, rate(), dynamic_single());
        let src = vec![event(0, 0, 3, 100.0), event(0, 0, 3, 100.0)];
        let report = sim.run(src.into_iter()).unwrap();
        assert_eq!(report.blocked_attempts, 1);
        assert_eq!(report.records[0].latency(), 100);
        assert_eq!(report.records[1].queueing(), 100);
        assert_eq!(report.records[1].latency(), 200);
    }

    #[test]
    fn disjoint_paths_do_not_interact() {
        let sim = OpenLoopSimulator::new(ring16(), 1, rate(), dynamic_single());
        // 0→2 rides segments 0,1 clockwise; 8→10 rides 8,9: no overlap.
        let src = vec![event(0, 0, 2, 100.0), event(0, 8, 10, 100.0)];
        let report = sim.run(src.into_iter()).unwrap();
        assert_eq!(report.blocked_attempts, 0);
        assert!(report.records.iter().all(|r| r.latency() == 100));
    }

    #[test]
    fn opposite_waveguides_are_independent() {
        // 0→1 (CW, segment 0) and 1→0 (CCW, segment 0) share the physical
        // span but not the waveguide.
        let sim = OpenLoopSimulator::new(ring16(), 1, rate(), dynamic_single());
        let src = vec![event(0, 0, 1, 100.0), event(0, 1, 0, 100.0)];
        let report = sim.run(src.into_iter()).unwrap();
        assert_eq!(report.blocked_attempts, 0);
    }

    #[test]
    fn greedy_mode_uses_the_free_comb() {
        let sim = OpenLoopSimulator::new(
            ring16(),
            8,
            rate(),
            WavelengthMode::Dynamic(DynamicPolicy::Greedy { cap: 8 }),
        );
        let report = sim.run(vec![event(0, 0, 3, 800.0)].into_iter()).unwrap();
        assert_eq!(report.records[0].lanes, 8);
        assert_eq!(report.records[0].latency(), 100);
    }

    #[test]
    fn unordered_source_is_rejected() {
        let sim = OpenLoopSimulator::new(ring16(), 4, rate(), dynamic_single());
        let src = vec![event(10, 0, 3, 100.0), event(5, 0, 3, 100.0)];
        assert_eq!(
            sim.run(src.into_iter()).unwrap_err(),
            OpenLoopError::UnorderedSource {
                time: 5,
                previous: 10
            }
        );
    }

    #[test]
    fn degenerate_and_foreign_events_are_rejected() {
        let sim = OpenLoopSimulator::new(ring16(), 4, rate(), dynamic_single());
        assert!(matches!(
            sim.run(vec![event(0, 3, 3, 100.0)].into_iter()),
            Err(OpenLoopError::DegenerateEvent { index: 0 })
        ));
        assert!(matches!(
            sim.run(vec![event(0, 0, 16, 100.0)].into_iter()),
            Err(OpenLoopError::ForeignNode { .. })
        ));
    }

    #[test]
    fn static_mode_serialises_per_flow() {
        let map = StaticFlowMap::striped(16, 8, 1);
        let sim = OpenLoopSimulator::new(ring16(), 8, rate(), WavelengthMode::Static(map));
        let src = vec![event(0, 0, 3, 100.0), event(10, 0, 3, 100.0)];
        let report = sim.run(src.into_iter()).unwrap();
        // Second message waits for the flow's lane: starts at 100, not 10.
        assert_eq!(report.records[1].started, 100);
        assert_eq!(report.blocked_attempts, 1);
        // Same flow reusing its own lane sequentially never conflicts.
        assert_eq!(report.conflict_count, 0);
    }

    #[test]
    fn static_mode_detects_cross_flow_collisions() {
        // Flows 0→2 (CW segments 0,1) and 1→2 (CW segment 1) share
        // segment 1; force both onto λ1 so they collide there.
        let nodes = 4;
        let mut table = vec![Vec::new(); nodes * nodes];
        table[2] = vec![WavelengthId(0)]; // flow 0→2
        table[nodes + 2] = vec![WavelengthId(0)]; // flow 1→2
        for src in 0..nodes {
            for dst in 0..nodes {
                if src != dst && table[src * nodes + dst].is_empty() {
                    table[src * nodes + dst] = vec![WavelengthId(1)];
                }
            }
        }
        let map = StaticFlowMap::from_table(nodes, 2, table);
        let sim = OpenLoopSimulator::new(
            RingTopology::new(nodes),
            2,
            rate(),
            WavelengthMode::Static(map),
        );
        let src = vec![event(0, 0, 2, 100.0), event(0, 1, 2, 100.0)];
        let report = sim.run(src.into_iter()).unwrap();
        assert_eq!(report.conflict_count, 1);
        let c = report.conflict_examples[0];
        assert_eq!(c.channel, WavelengthId(0));
        assert_eq!(
            c.segment,
            DirectedSegment {
                index: 1,
                direction: Direction::Clockwise
            }
        );
        assert_eq!((c.first, c.second), (MsgId(0), MsgId(1)));
    }

    #[test]
    fn occupancy_accounting_adds_up() {
        let sim = OpenLoopSimulator::new(ring16(), 4, rate(), dynamic_single());
        // One message, 2 hops, 100 cycles on one lane.
        let report = sim.run(vec![event(0, 0, 2, 100.0)].into_iter()).unwrap();
        let busy: u64 = report.segment_busy.iter().map(|&(_, b)| b).sum();
        assert_eq!(busy, 200);
        assert_eq!(report.lane_busy.iter().sum::<u64>(), 200);
        assert!(report.mean_wavelength_occupancy() > 0.0);
        assert!((report.lane_occupancy(WavelengthId(0)) - 200.0 / (100.0 * 32.0)).abs() < 1e-12);
        assert_eq!(report.lane_occupancy(WavelengthId(3)), 0.0);
    }

    #[test]
    fn throughput_matches_offered_when_unsaturated() {
        let sim = OpenLoopSimulator::new(ring16(), 8, rate(), dynamic_single());
        let src: Vec<_> = (0..10)
            .map(|k| event(k * 200, (k % 15) as usize, ((k % 15) + 1) as usize, 100.0))
            .collect();
        let report = sim.run(src.into_iter()).unwrap();
        assert_eq!(report.blocked_attempts, 0);
        assert_eq!(report.offered_bits, 1_000.0);
        assert_eq!(report.delivered_bits, 1_000.0);
        assert!(report.accepted_throughput() > 0.0);
    }

    #[test]
    fn flow_latency_grouping() {
        let sim = OpenLoopSimulator::new(ring16(), 8, rate(), dynamic_single());
        let src = vec![
            event(0, 0, 3, 100.0),
            event(0, 5, 9, 200.0),
            event(500, 0, 3, 100.0),
        ];
        let report = sim.run(src.into_iter()).unwrap();
        let by_flow = report.latency_by_flow();
        assert_eq!(by_flow.len(), 2);
        assert_eq!(by_flow[0].0, (NodeId(0), NodeId(3)));
        assert_eq!(by_flow[0].1.count, 2);
        assert_eq!(by_flow[1].1.count, 1);
    }

    // ------------------------------------------------- closed loop --

    /// A burst of same-source messages offered back to back.
    fn burst(count: usize, gap: u64, bits: f64) -> Vec<TrafficEvent> {
        (0..count)
            .map(|k| event(k as u64 * gap, 0, 3, bits))
            .collect()
    }

    #[test]
    fn credit_window_bounds_in_flight_and_records_stalls() {
        // Window 1 on a 1-λ comb: message k may only be admitted once
        // message k-1 delivered, so admissions serialise exactly.
        let sim = OpenLoopSimulator::with_injection(
            ring16(),
            1,
            rate(),
            dynamic_single(),
            InjectionMode::Credit { window: 1 },
        );
        let report = sim.run(burst(4, 0, 100.0).into_iter()).unwrap();
        assert_eq!(report.records.len(), 4);
        for (k, r) in report.records.iter().enumerate() {
            assert_eq!(r.admitted, k as u64 * 100, "admissions serialise");
            assert_eq!(r.queueing(), 0, "admitted messages never queue at the NI");
        }
        assert_eq!(report.stalled_count(), 3);
        assert_eq!(report.stall().max, 300);
        // The whole window is in flight the whole run.
        assert!((report.credit_occupancy - 1.0 / 16.0).abs() < 1e-9);
        // Open loop on the same input queues at the NI instead.
        let open = OpenLoopSimulator::new(ring16(), 1, rate(), dynamic_single())
            .run(burst(4, 0, 100.0).into_iter())
            .unwrap();
        assert_eq!(open.stalled_count(), 0);
        assert_eq!(open.records[3].queueing(), 300);
        // Both deliver everything with identical end-to-end latency here.
        assert_eq!(open.records[3].completed, report.records[3].completed);
    }

    #[test]
    fn large_credit_window_matches_open_loop() {
        let events: Vec<_> = (0..20)
            .map(|k| event(k * 7, (k % 5) as usize, ((k % 5) + 6) as usize, 256.0))
            .collect();
        let open = OpenLoopSimulator::new(ring16(), 4, rate(), dynamic_single())
            .run(events.clone().into_iter())
            .unwrap();
        let credit = OpenLoopSimulator::with_injection(
            ring16(),
            4,
            rate(),
            dynamic_single(),
            InjectionMode::Credit { window: 64 },
        )
        .run(events.into_iter())
        .unwrap();
        // A window no source ever exhausts never stalls: identical spans.
        assert_eq!(credit.stalled_count(), 0);
        for (a, b) in open.records.iter().zip(&credit.records) {
            assert_eq!((a.started, a.completed), (b.started, b.completed));
        }
    }

    #[test]
    fn closed_loop_conserves_messages_and_bits() {
        for injection in [
            InjectionMode::Credit { window: 2 },
            InjectionMode::Ecn { threshold: 0.05 },
        ] {
            let events: Vec<_> = (0..50)
                .map(|k| event(k * 2, (k % 8) as usize, ((k % 8) + 4) as usize, 320.0))
                .collect();
            let sim =
                OpenLoopSimulator::with_injection(ring16(), 2, rate(), dynamic_single(), injection);
            let report = sim.run(events.clone().into_iter()).unwrap();
            assert_eq!(report.records.len(), events.len(), "{injection}");
            assert_eq!(report.offered_bits, report.delivered_bits, "{injection}");
            for r in &report.records {
                assert!(r.injected <= r.admitted, "{injection}");
                assert!(r.admitted <= r.started, "{injection}");
                assert!(r.started < r.completed, "{injection}");
            }
        }
    }

    #[test]
    fn ecn_throttles_under_congestion() {
        // A sustained stream on a tiny comb crosses the 5% occupancy
        // threshold (one 3-hop transmission is 3/32 of the fabric) on
        // every delivery: AIMD halves the source's rate, stretching its
        // offered gaps, so the last admission lands later than the last
        // offer. The stream must outlast a delivery time for the first
        // mark to feed back while offers still arrive.
        let events = burst(60, 2, 50.0);
        let last_offer = events.last().unwrap().time;
        let sim = OpenLoopSimulator::with_injection(
            ring16(),
            1,
            rate(),
            dynamic_single(),
            InjectionMode::Ecn { threshold: 0.05 },
        );
        let report = sim.run(events.into_iter()).unwrap();
        assert!(report.stalled_count() > 0, "pacing must defer admissions");
        assert!(report.records.last().unwrap().admitted > last_offer);
        // Everything still delivers.
        assert_eq!(report.records.len(), 60);
    }

    #[test]
    fn stale_gate_wakes_do_not_extend_the_horizon() {
        // An AIMD recovery can reschedule a source's wake *earlier*,
        // leaving the superseded wake in the queue; when it pops after
        // the last completion it must not inflate the horizon (which
        // would dilute accepted throughput and every occupancy metric).
        let sim = OpenLoopSimulator::with_injection(
            ring16(),
            2,
            rate(),
            dynamic_single(),
            InjectionMode::Ecn { threshold: 0.15 },
        );
        let events = vec![
            event(0, 0, 8, 2000.0),
            event(1, 0, 3, 100.0),
            event(1801, 0, 3, 20.0),
        ];
        let report = sim.run(events.into_iter()).unwrap();
        let last_completion = report.records.iter().map(|r| r.completed).max().unwrap();
        assert_eq!(
            report.horizon, last_completion,
            "horizon is the cycle of the last completion"
        );
    }

    #[test]
    fn ecn_with_high_threshold_never_marks() {
        let events = burst(10, 50, 100.0);
        let report = OpenLoopSimulator::with_injection(
            ring16(),
            8,
            rate(),
            dynamic_single(),
            InjectionMode::Ecn { threshold: 1.0 },
        )
        .run(events.into_iter())
        .unwrap();
        assert_eq!(report.stalled_count(), 0, "unmarked sources never pace");
    }

    #[test]
    fn closed_loop_static_mode_keeps_the_conflict_checker() {
        let map = StaticFlowMap::striped(16, 8, 1);
        let sim = OpenLoopSimulator::with_injection(
            ring16(),
            8,
            rate(),
            WavelengthMode::Static(map),
            InjectionMode::Credit { window: 1 },
        );
        let src = vec![event(0, 0, 3, 100.0), event(0, 0, 3, 100.0)];
        let report = sim.run(src.into_iter()).unwrap();
        // Window 1 admits the second message only at delivery of the
        // first, so the flow never double-books its lane.
        assert_eq!(report.records[1].admitted, 100);
        assert_eq!(report.records[1].stall(), 100);
        assert_eq!(report.conflict_count, 0);
        assert_eq!(report.blocked_attempts, 0);
    }

    #[test]
    #[should_panic(expected = "credit window")]
    fn zero_credit_window_panics_at_construction() {
        let _ = OpenLoopSimulator::with_injection(
            ring16(),
            4,
            rate(),
            dynamic_single(),
            InjectionMode::Credit { window: 0 },
        );
    }

    proptest::proptest! {
        /// Conservation under closed-loop injection: for any credit
        /// window / ECN threshold, every offered message is delivered
        /// exactly once with ordered timestamps — none lost, none stuck.
        #[test]
        fn closed_loop_conserves_traffic(
            seed in 0u64..500,
            window in 1usize..6,
            wavelengths in 1usize..5,
            use_ecn in 0usize..2,
        ) {
            use proptest::prelude::*;
            // A deterministic pseudo-random ordered stream from the seed.
            let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let mut time = 0u64;
            let events: Vec<TrafficEvent> = (0..80)
                .map(|_| {
                    time += next() % 4;
                    let src = (next() % 16) as usize;
                    let dst = (src + 1 + (next() % 15) as usize) % 16;
                    event(time, src, dst, 64.0 + (next() % 512) as f64)
                })
                .collect();
            let injection = if use_ecn == 0 {
                InjectionMode::Credit { window }
            } else {
                InjectionMode::Ecn { threshold: 0.1 + window as f64 * 0.15 }
            };
            let sim = OpenLoopSimulator::with_injection(
                ring16(),
                wavelengths,
                rate(),
                dynamic_single(),
                injection,
            );
            let report = sim.run(events.clone().into_iter()).unwrap();
            prop_assert_eq!(report.records.len(), events.len());
            prop_assert!((report.offered_bits - report.delivered_bits).abs() < 1e-9);
            let last_completion = report.records.iter().map(|r| r.completed).max().unwrap();
            prop_assert_eq!(report.horizon, last_completion);
            for (r, e) in report.records.iter().zip(&events) {
                prop_assert_eq!(r.injected, e.time);
                prop_assert_eq!((r.src, r.dst), (e.src, e.dst));
                prop_assert!(r.injected <= r.admitted);
                prop_assert!(r.admitted <= r.started);
                prop_assert!(r.started < r.completed);
            }
        }
    }

    #[test]
    fn closed_loop_accepted_throughput_plateaus() {
        // Offered load doubles; sustained (credit-gated) accepted
        // throughput stays within a few percent — the finite knee.
        let run_at = |gap: u64| {
            let events: Vec<_> = (0..600)
                .flat_map(|k| {
                    (0..16).filter_map(move |s| {
                        if s % 2 == 0 {
                            Some(event(k * gap, s, (s + 8) % 16, 512.0))
                        } else {
                            None
                        }
                    })
                })
                .collect();
            OpenLoopSimulator::with_injection(
                ring16(),
                2,
                rate(),
                dynamic_single(),
                InjectionMode::Credit { window: 2 },
            )
            .run(events.into_iter())
            .unwrap()
        };
        let saturated = run_at(8); // offered well past capacity
        let doubled = run_at(4); // offered 2× that
        assert!(saturated.offered_load() < doubled.offered_load() * 0.6);
        let ratio = doubled.accepted_throughput() / saturated.accepted_throughput();
        assert!(
            (0.9..=1.1).contains(&ratio),
            "sustained throughput must plateau, got ratio {ratio}"
        );
    }
}
