//! Conservative parallel discrete-event engine for
//! [`OpenLoopSimulator`]: shard the traffic by source ring group, run
//! the unmodified serial event core per shard on its own calendar
//! queue, and deterministically merge the shards' fact streams back
//! into the global serial order.
//!
//! # Sharding scheme
//!
//! Static-mode state is *source-owned*: a flow `(src, dst)` serialises
//! on `flow_free_at[flow]`, its injection gate and go-back-N window
//! live at `src`, and its calendar events (`Offered`, `Started`,
//! `Completed`, `Redo`, `Abandon`, `GateWake`) reference only that
//! state. Partitioning sources into contiguous ring groups
//! (`shard(src) = src · workers / nodes`) therefore partitions the
//! event dependency graph — each worker replays exactly the serial
//! engine restricted to its sources' traffic, over its own
//! [`EventQueue`]. The only *global* inputs, the fault-plan lane
//! timeline and the BER corruption draws, are pure functions of the
//! plan seed (and the global message id, which the tap threads through
//! [`EngineTap::global_id`]), so every worker reproduces them
//! identically.
//!
//! # Conservative synchronization and lookahead
//!
//! Workers stream their probe-visible facts to the merger over bounded
//! SPSC channels, each fact keyed by its *global* merge position
//! `(time, rank, tie, subseq)` — `rank` mirrors the serial
//! `Completed < Started < GateWake < Offered < …` same-cycle tie-break
//! and `tie` the in-rank key (global message id, source, or lane). The
//! k-way merge pops the lane whose *head* keys minimal — head order,
//! not a global key sort, is the serial order, because the serial
//! calendar pops the minimum of the union of the shards' pending sets
//! and a handler can push a same-cycle lower-rank event (an admission
//! starting immediately). Contexts that emit no facts but can push
//! such events (`Redo` retries, lane recoveries) ship barrier facts so
//! their shard's restarts never merge early; lane-event barriers are
//! replicated in every shard and consumed together. The merger
//! advances a lane only when its next fact cannot be undercut: a
//! lane's *floor* (null message) is a sound lower bound on its future
//! keys, advanced by every received fact and by explicit watermarks
//! the worker emits while it processes long fact-free stretches.
//! Lookahead never blocks progress — channels form an acyclic
//! worker → merger pipeline with backpressure, so the protocol is
//! deadlock-free by construction (there is no worker↔worker edge to
//! cycle through, even on an all-cross-shard hotspot flow map).
//!
//! # Determinism guarantee
//!
//! [`OpenLoopSimulator::run_parallel`] is bit-identical to the serial
//! engine for every worker count: the merger replays the merged fact
//! stream into the caller's [`SimProbe`] and the built-in report
//! accumulators in serial order, folding every floating-point sum in
//! the serial fold order. Configurations whose state is *not*
//! source-owned — dynamic arbitration, ECN occupancy feedback, PFC
//! receiver pools — fall back to the serial engine inside
//! `run_parallel`, keeping the API total.

use std::collections::VecDeque;
use std::sync::mpsc::{Receiver, SyncSender, sync_channel};

use onoc_topology::{DirectedSegment, NodeId, segment_count};

use crate::fault::{CorruptionModel, DropFact};
use crate::injection::{InjectionMode, SourceGate};
use crate::openloop::{
    EngineTap, OpenLoopError, OpenLoopSimulator, ReportMode, SimScratch, TrafficEvent,
    TrafficSource, WavelengthMode, flag, sweep_conflicts_flat,
};
use crate::probe::{NullProbe, ReportProbe, SimProbe, TxFact};
use crate::report::{MsgRecord, OpenLoopReport};
use crate::transport::TransportMode;

/// Facts per channel batch (amortises the send syscall-ish cost).
const BATCH_LEN: usize = 1024;
/// Bounded channel depth, in batches (backpressure on a slow merger).
const CHANNEL_DEPTH: usize = 4;
/// Minimum simulated-time advancement between watermarks while a worker
/// produces no facts.
const WATERMARK_STRIDE: u64 = 1024;

/// Global merge position of one fact: `(time, rank, tie, subseq)`.
/// Rank 0 is source-event registration; ranks 1.. mirror the serial
/// same-cycle `Event` tie-break. `subseq` orders facts within one
/// event's processing. Keys are strictly monotone per worker and
/// globally unique (every context is owned by exactly one worker).
type Key = (u64, u8, u64, u32);

/// A sound lower bound on every fact a worker can emit after the fact
/// (or context) keyed `k`. Streams are *not* key-monotone: a context
/// from rank 2 up can push a same-cycle rank-2 `Started` (an admission
/// starting immediately, a recovery restart), which pops later but
/// keys lower. Ranks 0 (registrations, gid-ordered) and 1 (completions,
/// pushed strictly in the future) cannot be undercut at their own rank,
/// so their successor is exact.
fn sound_floor(k: Key) -> Key {
    match k.1 {
        0 | 1 => (k.0, k.1, k.2, k.3 + 1),
        _ => (k.0, 2, 0, 0),
    }
}

/// One probe-visible engine fact, as shipped worker → merger.
enum FactKind {
    Offered {
        time: u64,
        src: NodeId,
        volume: f64,
    },
    Admitted {
        now: u64,
        stall: u64,
        src: NodeId,
    },
    Started {
        fact: TxFact,
        flow: u32,
    },
    Completed {
        fact: TxFact,
        flow: u32,
    },
    Dropped {
        fact: DropFact,
        flow: u32,
    },
    Lost {
        record: MsgRecord,
        volume: f64,
        attempts: u32,
    },
    /// The message resolved (delivered or lost) — fired where the serial
    /// engine retires the window front, carrying the final flag byte for
    /// the merger's global retirement replay.
    Resolved {
        gid: u64,
        record: MsgRecord,
        volume: f64,
        flags: u8,
        hops: u32,
        recovery: u64,
    },
    Lane {
        now: u64,
        lane: u32,
        down: bool,
        /// Every worker replays the identical lane timeline and ships a
        /// copy of this fact (the merger needs each copy as an ordering
        /// barrier for the shard's same-cycle restarts); exactly one —
        /// worker 0's — is `real` and reaches the probe.
        real: bool,
    },
    /// An ordering barrier with no probe-visible effect: marks a `Redo`
    /// context, whose retry can push a same-cycle `Started` that must
    /// not merge ahead of other shards' facts between the two ranks.
    Marker,
}

struct Fact {
    key: Key,
    kind: FactKind,
}

enum WorkerMsg {
    Batch(Vec<Fact>),
    /// Null message: every future fact of this worker has key ≥ the
    /// payload.
    Watermark(Key),
    Done(Box<WorkerDone>),
}

/// Per-worker aggregates that fold commutatively (integers) or in
/// worker-major source order (credit cycles), shipped once at the end.
struct WorkerDone {
    horizon: u64,
    blocked_attempts: usize,
    segment_busy: Vec<(DirectedSegment, u64)>,
    lane_busy: Vec<u64>,
    /// `SourceGate::credit_cycles` for the worker's owned source range,
    /// in source order (concatenating the workers reproduces the serial
    /// gate fold exactly).
    credit_cycles: Vec<f64>,
}

/// The [`EngineTap`] a PDES worker runs under: maps local ids to global
/// ids, keys every fact, and streams batches to the merger.
struct WorkerTap<'a> {
    /// Local message id → global id, in registration order.
    gids: &'a [u64],
    next_local: usize,
    ctx: (u64, u8, u64),
    subseq: u32,
    batch: Vec<Fact>,
    tx: &'a SyncSender<WorkerMsg>,
    /// Lane events are global (every worker replays the identical
    /// timeline); only worker 0 forwards them.
    emit_lanes: bool,
    last_watermark: u64,
}

impl<'a> WorkerTap<'a> {
    fn new(gids: &'a [u64], tx: &'a SyncSender<WorkerMsg>, emit_lanes: bool) -> Self {
        Self {
            gids,
            next_local: 0,
            ctx: (0, 0, 0),
            subseq: 0,
            batch: Vec::with_capacity(BATCH_LEN),
            tx,
            emit_lanes,
            last_watermark: 0,
        }
    }

    fn push(&mut self, kind: FactKind) {
        let key = (self.ctx.0, self.ctx.1, self.ctx.2, self.subseq);
        self.subseq += 1;
        self.batch.push(Fact { key, kind });
        if self.batch.len() >= BATCH_LEN {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if !self.batch.is_empty() {
            // A send error means the merger died (its panic propagates
            // through the thread scope); finish quietly.
            let _ = self
                .tx
                .send(WorkerMsg::Batch(std::mem::take(&mut self.batch)));
            self.batch.reserve(BATCH_LEN);
        }
    }
}

impl EngineTap for WorkerTap<'_> {
    const ACTIVE: bool = true;

    fn context(&mut self, time: u64, rank: u8, tie: u64) {
        self.ctx = (time, rank, tie);
        self.subseq = 0;
        // Null-message advancement: when this worker crosses a long
        // fact-free stretch (e.g. replaying remote shards' lane events),
        // tell the merger its floor moved so the other lanes can drain.
        // The advertised bound must be sound against same-cycle pushes:
        // any context from rank 2 up can still push a rank-2 `Started`
        // at this cycle.
        if self.batch.is_empty() && time >= self.last_watermark + WATERMARK_STRIDE {
            self.last_watermark = time;
            let wm = sound_floor((time, rank, tie, 0));
            let _ = self.tx.send(WorkerMsg::Watermark(wm));
        }
        if rank == 7 {
            // Redo contexts emit no facts of their own but can push a
            // same-cycle, lower-rank Started; ship a barrier so the
            // merger holds this shard's retry behind other shards'
            // facts between the two ranks.
            self.push(FactKind::Marker);
        }
    }

    fn offered(&mut self, time: u64, src: NodeId, volume: f64) {
        // Registrations key themselves: rank 0, tied on the global id —
        // the serial engine registers a source event before processing
        // any same-cycle queue event.
        let gid = self.gids[self.next_local];
        self.next_local += 1;
        self.batch.push(Fact {
            key: (time, 0, gid, 0),
            kind: FactKind::Offered { time, src, volume },
        });
        if self.batch.len() >= BATCH_LEN {
            self.flush();
        }
    }

    fn admitted(&mut self, now: u64, stall: u64, src: NodeId) {
        self.push(FactKind::Admitted { now, stall, src });
    }

    fn started(&mut self, fact: &TxFact, flow: u32) {
        self.push(FactKind::Started { fact: *fact, flow });
    }

    fn completed(&mut self, fact: &TxFact, flow: u32) {
        self.push(FactKind::Completed { fact: *fact, flow });
    }

    fn dropped(&mut self, fact: &DropFact, flow: u32) {
        self.push(FactKind::Dropped { fact: *fact, flow });
    }

    fn lost(&mut self, _id: usize, record: &MsgRecord, volume: f64, attempts: u32) {
        self.push(FactKind::Lost {
            record: *record,
            volume,
            attempts,
        });
    }

    fn resolved(
        &mut self,
        id: usize,
        record: &MsgRecord,
        volume: f64,
        flags: u8,
        hops: usize,
        recovery: u64,
    ) {
        #[allow(clippy::cast_possible_truncation)]
        self.push(FactKind::Resolved {
            gid: self.gids[id],
            record: *record,
            volume,
            flags,
            hops: hops as u32,
            recovery,
        });
    }

    fn lane_event(&mut self, now: u64, lane: usize, down: bool) {
        // Every worker ships its copy (identical key): the merger pops
        // all copies together, so no shard's same-cycle restarts surface
        // before every shard has reached the recovery.
        #[allow(clippy::cast_possible_truncation)]
        self.push(FactKind::Lane {
            now,
            lane: lane as u32,
            down,
            real: self.emit_lanes,
        });
    }

    fn global_id(&self, id: usize) -> u64 {
        self.gids[id]
    }

    fn stranded_sweep(&mut self) {
        // Stranded traffic is swept at the *local* horizon, which need
        // not equal the global one. Unreachable in eligible
        // configurations: every parked message holds a pending lane
        // recovery in its own queue (stochastic outages always schedule
        // their repair), NI queues are dynamic-only, and gate windows
        // are freed synchronously by the resolution that closed them.
        panic!(
            "PDES worker swept stranded traffic; this configuration \
             should have fallen back to the serial engine"
        );
    }
}

/// The validated, sharded trace.
struct Split {
    events: Vec<Vec<TrafficEvent>>,
    gids: Vec<Vec<u64>>,
    /// Owned source range per worker (contiguous, in worker order).
    ranges: Vec<(usize, usize)>,
    total: usize,
    /// Flows that appear in the trace (dense `src·n + dst` indices).
    used_flows: Vec<u32>,
}

/// Drains and validates the whole trace upfront, replicating the serial
/// engine's exact validation order, and routes each event to its
/// source's shard together with its global id.
fn split_source<S: TrafficSource>(
    sim: &OpenLoopSimulator,
    mut source: S,
    workers: usize,
) -> Result<Split, OpenLoopError> {
    let n = sim.ring.node_count();
    let mut events: Vec<Vec<TrafficEvent>> = vec![Vec::new(); workers];
    let mut gids: Vec<Vec<u64>> = vec![Vec::new(); workers];
    let mut used = vec![false; n * n];
    let mut last_time = 0u64;
    let mut next_id = 0usize;
    while let Some(event) = source.next_event() {
        if event.time < last_time {
            return Err(OpenLoopError::UnorderedSource {
                time: event.time,
                previous: last_time,
            });
        }
        last_time = event.time;
        for node in [event.src, event.dst] {
            if !sim.ring.contains(node) {
                return Err(OpenLoopError::ForeignNode { node, nodes: n });
            }
        }
        if event.src == event.dst || event.volume.value() <= 0.0 {
            return Err(OpenLoopError::DegenerateEvent { index: next_id });
        }
        if let WavelengthMode::Static(map) = &sim.mode {
            if map.lanes(event.src, event.dst).is_empty() {
                return Err(OpenLoopError::UnmappedFlow {
                    src: event.src,
                    dst: event.dst,
                });
            }
        }
        let w = event.src.0 * workers / n;
        events[w].push(event);
        gids[w].push(next_id as u64);
        used[event.src.0 * n + event.dst.0] = true;
        next_id += 1;
    }
    let ranges = (0..workers)
        .map(|w| (w * n).div_ceil(workers))
        .chain(std::iter::once(n))
        .collect::<Vec<_>>()
        .windows(2)
        .map(|p| (p[0], p[1]))
        .collect();
    #[allow(clippy::cast_possible_truncation)]
    let used_flows = used
        .iter()
        .enumerate()
        .filter(|&(_, &u)| u)
        .map(|(f, _)| f as u32)
        .collect();
    Ok(Split {
        events,
        gids,
        ranges,
        total: next_id,
        used_flows,
    })
}

/// One worker: the full serial engine over the shard's sub-trace, with
/// the streaming tap attached.
fn run_worker(
    sim: &OpenLoopSimulator,
    events: Vec<TrafficEvent>,
    gids: Vec<u64>,
    range: (usize, usize),
    rows: Vec<u32>,
    emit_lanes: bool,
    tx: &SyncSender<WorkerMsg>,
) {
    let mut scratch = SimScratch::new();
    // Only this shard's trace flows ever admit here, so only their
    // route/mask rows are built — at 256 nodes the full quadratic table
    // build is a meaningful slice of a run, and it would otherwise be
    // repeated per worker.
    scratch.flow_rows = Some(rows);
    let mut tap = WorkerTap::new(&gids, tx, emit_lanes);
    let report = sim
        .run_tapped(
            events.into_iter(),
            &mut scratch,
            ReportMode::Streaming,
            &mut NullProbe,
            &mut tap,
        )
        .expect("the splitter validated the shard's trace");
    tap.flush();
    let credit_cycles = scratch.gates[range.0..range.1]
        .iter()
        .map(SourceGate::credit_cycles)
        .collect();
    let _ = tx.send(WorkerMsg::Done(Box::new(WorkerDone {
        horizon: report.horizon,
        blocked_attempts: report.blocked_attempts,
        segment_busy: report.segment_busy,
        lane_busy: report.lane_busy,
        credit_cycles,
    })));
}

/// One worker's receive lane at the merger.
struct Lane {
    rx: Receiver<WorkerMsg>,
    queue: VecDeque<Fact>,
    /// Greatest lower bound on this lane's future fact keys ("next fact
    /// has key ≥ floor"); `None` until the first message.
    floor: Option<Key>,
    done: Option<Box<WorkerDone>>,
}

impl Lane {
    fn recv_one(&mut self) {
        match self.rx.recv() {
            Ok(WorkerMsg::Batch(facts)) => self.queue.extend(facts),
            Ok(WorkerMsg::Watermark(k)) => self.floor = Some(k),
            Ok(WorkerMsg::Done(d)) => self.done = Some(d),
            Err(_) => panic!("PDES worker disconnected before reporting completion"),
        }
    }
}

/// Pending retirement inputs for one resolved message.
struct Retire {
    record: MsgRecord,
    volume: f64,
    hops: u32,
    recovery: u64,
}

/// The deterministic merger: replays the merged fact stream into the
/// caller's probe and the built-in report accumulators, reproducing the
/// serial engine's fold order exactly.
struct Merger<'a, P: SimProbe> {
    probe: &'a mut P,
    report: ReportProbe,
    n: usize,
    wavelengths: usize,
    full_static: bool,
    /// Streaming static mode: live-transmission counts per
    /// `segment_index · wavelengths + lane`, replayed from Started /
    /// Completed / Dropped facts. Skipped entirely when no two trace
    /// flows share a `(segment, lane)` slot.
    track_conflicts: bool,
    online_conflicts: usize,
    /// Retirement window, indexed by `gid - base`.
    base: u64,
    registered: u64,
    retired: u64,
    flags: VecDeque<u8>,
    pending: VecDeque<Option<Retire>>,
    peak_in_flight: usize,
    offered_bits: f64,
    last_injection: u64,
    failed_attempts: usize,
    retransmitted_bits: f64,
    lost_messages: usize,
    lost_bits: f64,
    /// Path/lane tables (and the active-count + span buffers) on the
    /// merger's own scratch.
    s: SimScratch,
}

impl<'a, P: SimProbe> Merger<'a, P> {
    fn new(
        sim: &OpenLoopSimulator,
        mode: ReportMode,
        used_flows: &[u32],
        probe: &'a mut P,
    ) -> Self {
        let n = sim.ring.node_count();
        let mut s = SimScratch::new();
        s.prepare(n, sim.wavelengths, true, mode == ReportMode::Streaming);
        // The merger only ever walks trace flows (the contention scan
        // below, streaming active counts, full-mode span synthesis), so
        // only their rows are built.
        s.flow_rows = Some(used_flows.to_vec());
        s.build_flow_tables(sim);
        // A slot touched by a single flow never counts a conflict: the
        // flow's own messages serialise on `flow_free_at`, and the
        // `Completed < Started` tie-break releases before re-claiming at
        // equal times. Only replay active counts when two trace flows
        // actually share a slot.
        let track_conflicts = mode == ReportMode::Streaming && {
            let w = sim.wavelengths;
            let mut owner = vec![u32::MAX; segment_count(n) * w];
            let mut contended = false;
            'scan: for &flow in used_flows {
                let (lo, hi) = (
                    s.path_offsets[flow as usize] as usize,
                    s.path_offsets[flow as usize + 1] as usize,
                );
                let mask = s.flow_lane_masks[flow as usize];
                for i in lo..hi {
                    let row = s.path_segs[i] as usize * w;
                    let mut rest = mask;
                    while rest != 0 {
                        let lane = rest.trailing_zeros() as usize;
                        rest &= rest - 1;
                        let slot = row + lane;
                        if owner[slot] != u32::MAX && owner[slot] != flow {
                            contended = true;
                            break 'scan;
                        }
                        owner[slot] = flow;
                    }
                }
            }
            contended
        };
        Self {
            probe,
            report: ReportProbe::new(mode == ReportMode::Full),
            n,
            wavelengths: sim.wavelengths,
            full_static: mode == ReportMode::Full,
            track_conflicts,
            online_conflicts: 0,
            base: 0,
            registered: 0,
            retired: 0,
            flags: VecDeque::new(),
            pending: VecDeque::new(),
            peak_in_flight: 0,
            offered_bits: 0.0,
            last_injection: 0,
            failed_attempts: 0,
            retransmitted_bits: 0.0,
            lost_messages: 0,
            lost_bits: 0.0,
            s,
        }
    }

    /// Walks `flow`'s path rows over `mask`, adjusting the live count on
    /// every slot (`inc` mirrors the serial conflict accumulation).
    fn walk_active(&mut self, flow: u32, mask: u128, inc: bool) {
        let (lo, hi) = (
            self.s.path_offsets[flow as usize] as usize,
            self.s.path_offsets[flow as usize + 1] as usize,
        );
        let w = self.wavelengths;
        for i in lo..hi {
            let row = self.s.path_segs[i] as usize * w;
            let mut rest = mask;
            while rest != 0 {
                let lane = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                let slot = row + lane;
                if inc {
                    self.online_conflicts += self.s.active_per_lane_seg[slot] as usize;
                    self.s.active_per_lane_seg[slot] += 1;
                } else {
                    self.s.active_per_lane_seg[slot] -= 1;
                }
            }
        }
    }

    fn replay(&mut self, fact: Fact) {
        match fact.kind {
            FactKind::Offered { time, src, volume } => {
                debug_assert_eq!(
                    fact.key.2, self.registered,
                    "registrations merge in global-id order"
                );
                self.probe.offered(time, src);
                self.registered += 1;
                self.flags.push_back(0);
                self.pending.push_back(None);
                #[allow(clippy::cast_possible_truncation)]
                let in_flight = (self.registered - self.retired) as usize;
                self.peak_in_flight = self.peak_in_flight.max(in_flight);
                self.offered_bits += volume;
                self.last_injection = self.last_injection.max(time);
            }
            FactKind::Admitted { now, stall, src } => self.probe.admitted(now, stall, src),
            FactKind::Started { fact, flow } => {
                if self.track_conflicts {
                    self.walk_active(flow, fact.lanes, true);
                }
                self.probe.started(fact);
            }
            FactKind::Completed { fact, flow } => {
                if self.track_conflicts {
                    self.walk_active(flow, fact.lanes, false);
                }
                self.probe.completed(fact);
            }
            FactKind::Dropped { fact, flow } => {
                if self.track_conflicts {
                    self.walk_active(flow, fact.lanes, false);
                }
                self.probe.dropped(fact);
                self.failed_attempts += 1;
                self.retransmitted_bits += fact.bits;
            }
            FactKind::Lost {
                record,
                volume,
                attempts,
            } => {
                self.lost_messages += 1;
                self.lost_bits += volume;
                self.probe.lost(&record, volume, attempts);
            }
            FactKind::Resolved {
                gid,
                record,
                volume,
                flags,
                hops,
                recovery,
            } => {
                let idx = (gid - self.base) as usize;
                self.flags[idx] = flags;
                self.pending[idx] = Some(Retire {
                    record,
                    volume,
                    hops,
                    recovery,
                });
                self.retire_front();
            }
            FactKind::Lane {
                now,
                lane,
                down,
                real,
            } => {
                if real {
                    self.probe.lane_event(now, lane as usize, down);
                }
            }
            FactKind::Marker => {}
        }
    }

    /// The merger's mirror of the serial `retire_front`: folds the
    /// resolved prefix of the global message window, in global id order.
    fn retire_front(&mut self) {
        while let Some(&bits) = self.flags.front() {
            if bits & flag::DONE == 0 {
                break;
            }
            self.flags.pop_front();
            let r = self
                .pending
                .pop_front()
                .expect("pending parallels flags")
                .expect("a DONE message carries its resolution");
            self.base += 1;
            self.retired += 1;
            if bits & flag::LOST != 0 {
                continue;
            }
            let record = r.record;
            if bits & flag::FAILED != 0 {
                self.probe.recovered(&record, record.attempts, r.recovery);
            }
            self.report.retired(&record, r.volume, r.hops as usize);
            self.probe.retired(&record, r.volume, r.hops as usize);
            if self.full_static {
                let w = self.wavelengths as u64;
                #[allow(clippy::cast_possible_truncation)]
                let id = (self.base - 1) as usize;
                let flow = record.src.0 * self.n + record.dst.0;
                let mask = self.s.flow_lane_masks[flow];
                let (lo, hi) = (
                    self.s.path_offsets[flow] as usize,
                    self.s.path_offsets[flow + 1] as usize,
                );
                for i in lo..hi {
                    let row = u64::from(self.s.path_segs[i]) * w;
                    let mut rest = mask;
                    while rest != 0 {
                        let lane = u64::from(rest.trailing_zeros());
                        rest &= rest - 1;
                        self.s
                            .spans
                            .push((row + lane, record.started, record.completed, id));
                    }
                }
            }
        }
    }
}

/// Whether the configuration's run state is fully source-owned, i.e.
/// genuinely shardable. Dynamic arbitration (global lane claims), ECN
/// (global occupancy feedback), and PFC (receiver-side pools drained
/// across all sources) are not; `run_parallel` falls back to the serial
/// engine for them. Self-healing configurations that can actually act —
/// a re-pack policy or a quarantine threshold — mutate the global flow
/// map (and lane timeline) mid-run, and Gilbert–Elliott corruption
/// consults a lazily-drawn per-lane state machine; both run serially
/// until the merger learns to replicate them (see ROADMAP).
fn shardable(sim: &OpenLoopSimulator) -> bool {
    matches!(sim.mode, WavelengthMode::Static(_))
        && matches!(
            sim.injection,
            InjectionMode::Open | InjectionMode::Credit { .. } | InjectionMode::CreditPerDst { .. }
        )
        && matches!(
            sim.transport,
            TransportMode::None | TransportMode::GoBackN { .. }
        )
        && sim
            .healing
            .is_none_or(|h| h.policy == onoc_wa::HealPolicy::Park && h.ber_threshold.is_none())
        && !matches!(
            sim.faults,
            Some(crate::fault::FaultPlan {
                corruption: CorruptionModel::GilbertElliott { .. },
                ..
            })
        )
}

pub(crate) fn run<S: TrafficSource, P: SimProbe>(
    sim: &OpenLoopSimulator,
    source: S,
    workers: usize,
    mode: ReportMode,
    probe: &mut P,
) -> Result<OpenLoopReport, OpenLoopError> {
    let n = sim.ring.node_count();
    let workers = workers.clamp(1, n);
    if workers == 1 || !shardable(sim) {
        return sim.run_with_scratch_probed(source, &mut SimScratch::new(), mode, probe);
    }
    let mut split = split_source(sim, source, workers)?;
    std::thread::scope(|scope| {
        let mut lanes: Vec<Lane> = Vec::with_capacity(workers);
        for w in 0..workers {
            let (tx, rx) = sync_channel::<WorkerMsg>(CHANNEL_DEPTH);
            let events = std::mem::take(&mut split.events[w]);
            let gids = std::mem::take(&mut split.gids[w]);
            let range = split.ranges[w];
            #[allow(clippy::cast_possible_truncation)]
            let rows: Vec<u32> = split
                .used_flows
                .iter()
                .copied()
                .filter(|&f| (f as usize / n) >= range.0 && (f as usize / n) < range.1)
                .collect();
            scope.spawn(move || run_worker(sim, events, gids, range, rows, w == 0, &tx));
            lanes.push(Lane {
                rx,
                queue: VecDeque::new(),
                floor: None,
                done: None,
            });
        }

        // Overlaps with the workers' warm-up: the merger's own path
        // tables and the contention scan.
        let mut merger = Merger::new(sim, mode, &split.used_flows, probe);

        // Conservative k-way merge: pop the lane whose *head* fact keys
        // globally minimal, receiving (blocking) from any lane that
        // could still undercut the candidate. Head order — not a global
        // key sort — is the serial order: the serial calendar pops the
        // minimum of the union of the shards' pending sets, and each
        // shard's stream head is exactly its local next pop.
        loop {
            let mut min: Option<(Key, usize)> = None;
            for (i, lane) in lanes.iter().enumerate() {
                if let Some(f) = lane.queue.front() {
                    if min.is_none_or(|(k, _)| f.key < k) {
                        min = Some((f.key, i));
                    }
                }
            }
            let needs_recv = lanes.iter().position(|lane| {
                lane.queue.is_empty()
                    && lane.done.is_none()
                    && match (lane.floor, min) {
                        (Some(floor), Some((mk, _))) => floor <= mk,
                        _ => true,
                    }
            });
            if let Some(i) = needs_recv {
                lanes[i].recv_one();
                continue;
            }
            let Some((key, i)) = min else {
                break;
            };
            let fact = lanes[i].queue.pop_front().expect("min came from this lane");
            let raise = |floor: &mut Option<Key>, to: Key| {
                *floor = Some(floor.map_or(to, |f| f.max(to)));
            };
            raise(&mut lanes[i].floor, sound_floor(key));
            let is_lane = matches!(fact.kind, FactKind::Lane { .. });
            merger.replay(fact);
            if is_lane {
                // Lane facts are replicated with identical keys across
                // every shard, and each copy is the barrier holding back
                // its own shard's same-cycle restarts. At this point all
                // copies have arrived (an absent copy would have kept
                // its lane's floor at or below `key`): pop them together
                // so no shard's restarts merge ahead of another's.
                for (j, lane) in lanes.iter_mut().enumerate() {
                    if j == i {
                        continue;
                    }
                    let dup = lane
                        .queue
                        .pop_front()
                        .expect("every shard replays every lane event");
                    debug_assert!(
                        dup.key == key && matches!(dup.kind, FactKind::Lane { .. }),
                        "lane-event copies merge as one"
                    );
                    raise(&mut lane.floor, sound_floor(key));
                    merger.replay(dup);
                }
            }
        }

        let dones: Vec<Box<WorkerDone>> = lanes
            .into_iter()
            .map(|l| l.done.expect("every lane finished with a Done"))
            .collect();
        Ok(assemble(sim, mode, &split, merger, &dones))
    })
}

/// Mirrors the serial `finish()`: assembles the global report from the
/// merged replay state and the workers' aggregates.
fn assemble<P: SimProbe>(
    sim: &OpenLoopSimulator,
    mode: ReportMode,
    split: &Split,
    mut merger: Merger<'_, P>,
    dones: &[Box<WorkerDone>],
) -> OpenLoopReport {
    let n = sim.ring.node_count();
    debug_assert_eq!(
        merger.registered as usize, split.total,
        "every registration replayed"
    );
    debug_assert_eq!(
        merger.retired, merger.registered,
        "every message resolved once the workers drained"
    );
    let horizon = dones.iter().map(|d| d.horizon).max().unwrap_or(0);
    merger.probe.finished(horizon, merger.last_injection);

    let (conflict_count, conflict_examples) = match mode {
        ReportMode::Full => sweep_conflicts_flat(&mut merger.s.spans, sim.wavelengths),
        ReportMode::Streaming => (merger.online_conflicts, Vec::new()),
    };
    let mut segment_dense = vec![0u64; segment_count(n)];
    let mut lane_busy = vec![0u64; sim.wavelengths];
    let mut blocked_attempts = 0usize;
    for d in dones {
        for &(seg, busy) in &d.segment_busy {
            segment_dense[seg.segment_index()] += busy;
        }
        for (acc, &busy) in lane_busy.iter_mut().zip(&d.lane_busy) {
            *acc += busy;
        }
        blocked_attempts += d.blocked_attempts;
    }
    let segment_busy: Vec<(DirectedSegment, u64)> = segment_dense
        .iter()
        .enumerate()
        .filter(|&(_, &busy)| busy > 0)
        .map(|(dense, &busy)| (DirectedSegment::from_segment_index(dense), busy))
        .collect();
    let credit_occupancy = match sim.injection {
        InjectionMode::Credit { window } if horizon > 0 => {
            let used: f64 = dones.iter().flat_map(|d| d.credit_cycles.iter()).sum();
            #[allow(clippy::cast_precision_loss)]
            {
                used / (horizon as f64 * n as f64 * window as f64)
            }
        }
        InjectionMode::CreditPerDst { window } if horizon > 0 => {
            let used: f64 = dones.iter().flat_map(|d| d.credit_cycles.iter()).sum();
            #[allow(clippy::cast_precision_loss)]
            {
                used / (horizon as f64 * (n * (n - 1) * window) as f64)
            }
        }
        _ => 0.0,
    };
    OpenLoopReport {
        nodes: n,
        wavelengths: sim.wavelengths,
        injection: sim.injection,
        horizon,
        last_injection: merger.last_injection,
        message_count: split.total - merger.lost_messages,
        records: merger.report.records,
        latency_hist: merger.report.latency_hist,
        stall_hist: merger.report.stall_hist,
        peak_in_flight: merger.peak_in_flight,
        offered_bits: merger.offered_bits,
        delivered_bits: merger.report.delivered_bits,
        blocked_attempts,
        conflict_count,
        conflict_examples,
        segment_busy,
        lane_busy,
        credit_occupancy,
        failed_attempts: merger.failed_attempts,
        retransmitted_bits: merger.retransmitted_bits,
        lost_messages: merger.lost_messages,
        lost_bits: merger.lost_bits,
    }
}

impl OpenLoopSimulator {
    /// Runs the engine sharded over `workers` conservative PDES workers.
    ///
    /// Bit-identical to [`OpenLoopSimulator::run`] /
    /// [`run_streaming`](OpenLoopSimulator::run_streaming) for every
    /// worker count: sources are partitioned into contiguous ring
    /// groups, each worker replays the serial event core over its own
    /// calendar queue, and a deterministic merger reassembles the
    /// report in the exact serial fact order (see the
    /// [module docs](self) for the sharding and synchronization
    /// scheme). `workers` is clamped to `1..=nodes`; configurations
    /// whose state is not source-owned (dynamic arbitration, ECN, PFC)
    /// run serially regardless of `workers`.
    ///
    /// # Errors
    ///
    /// As for [`OpenLoopSimulator::run`]. The trace is validated
    /// upfront, before any worker starts.
    pub fn run_parallel<S: TrafficSource>(
        &self,
        source: S,
        workers: usize,
        mode: ReportMode,
    ) -> Result<OpenLoopReport, OpenLoopError> {
        self.run_parallel_probed(source, workers, mode, &mut NullProbe)
    }

    /// [`run_parallel`](OpenLoopSimulator::run_parallel) with an
    /// attached [`SimProbe`]: the merger replays the merged fact stream
    /// into the probe in the exact serial order, so energy, telemetry,
    /// and reliability probes compose unchanged.
    ///
    /// # Errors
    ///
    /// As for [`OpenLoopSimulator::run`]. On a validation error the
    /// probe observes no facts (the serial engine reports the facts
    /// preceding the failure).
    pub fn run_parallel_probed<S: TrafficSource, P: SimProbe>(
        &self,
        source: S,
        workers: usize,
        mode: ReportMode,
        probe: &mut P,
    ) -> Result<OpenLoopReport, OpenLoopError> {
        run(self, source, workers, mode, probe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{
        CorruptionModel, FaultCause, FaultPlan, LaneFault, ReliabilityProbe, StochasticFaults,
    };
    use crate::openloop::StaticFlowMap;
    use onoc_topology::RingTopology;
    use onoc_units::{Bits, BitsPerCycle};
    use proptest::prelude::*;

    fn event(time: u64, src: usize, dst: usize, bits: f64) -> TrafficEvent {
        TrafficEvent {
            time,
            src: NodeId(src),
            dst: NodeId(dst),
            volume: Bits::new(bits),
        }
    }

    /// Deterministic mixed trace over `nodes` sources.
    fn mixed_trace(nodes: usize, count: usize, seed: u64) -> Vec<TrafficEvent> {
        let mut state = seed | 1;
        let mut t = 0u64;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1);
            let r = state >> 33;
            t += r % 7;
            let src = (r / 7) as usize % nodes;
            let dst = (src + 1 + (r / 7 / nodes as u64) as usize % (nodes - 1)) % nodes;
            let bits = 64.0 + (r % 5) as f64 * 32.0;
            out.push(event(t, src, dst, bits));
        }
        out
    }

    fn sim_static(nodes: usize, wavelengths: usize, injection: InjectionMode) -> OpenLoopSimulator {
        OpenLoopSimulator::with_injection(
            RingTopology::new(nodes),
            wavelengths,
            BitsPerCycle::new(1.0),
            WavelengthMode::Static(StaticFlowMap::striped(nodes, wavelengths, 1)),
            injection,
        )
    }

    /// A probe that records every fact verbatim, to pin the *stream*
    /// (not just the report) between serial and parallel runs.
    #[derive(Default, Debug, PartialEq)]
    struct TapeProbe(Vec<String>);

    impl SimProbe for TapeProbe {
        fn offered(&mut self, time: u64, src: NodeId) {
            self.0.push(format!("off {time} {src:?}"));
        }
        fn admitted(&mut self, now: u64, stall: u64, src: NodeId) {
            self.0.push(format!("adm {now} {stall} {src:?}"));
        }
        fn started(&mut self, fact: TxFact) {
            self.0.push(format!("sta {fact:?}"));
        }
        fn completed(&mut self, fact: TxFact) {
            self.0.push(format!("com {fact:?}"));
        }
        fn retired(&mut self, record: &MsgRecord, volume_bits: f64, hops: usize) {
            self.0
                .push(format!("ret {record:?} {volume_bits:?} {hops}"));
        }
        fn dropped(&mut self, fact: DropFact) {
            self.0.push(format!("drp {fact:?}"));
        }
        fn lost(&mut self, record: &MsgRecord, volume_bits: f64, attempts: u32) {
            self.0
                .push(format!("los {record:?} {volume_bits:?} {attempts}"));
        }
        fn recovered(&mut self, record: &MsgRecord, attempts: u32, recovery_cycles: u64) {
            self.0
                .push(format!("rec {record:?} {attempts} {recovery_cycles}"));
        }
        fn lane_event(&mut self, now: u64, lane: usize, down: bool) {
            self.0.push(format!("lan {now} {lane} {down}"));
        }
        fn finished(&mut self, horizon: u64, last_injection: u64) {
            self.0.push(format!("fin {horizon} {last_injection}"));
        }
    }

    fn assert_parallel_matches(sim: &OpenLoopSimulator, trace: &[TrafficEvent], workers: usize) {
        for mode in [ReportMode::Full, ReportMode::Streaming] {
            let mut serial_tape = TapeProbe::default();
            let serial = sim
                .run_with_scratch_probed(
                    trace.iter().copied(),
                    &mut SimScratch::new(),
                    mode,
                    &mut serial_tape,
                )
                .unwrap();
            let mut par_tape = TapeProbe::default();
            let parallel = sim
                .run_parallel_probed(trace.iter().copied(), workers, mode, &mut par_tape)
                .unwrap();
            assert_eq!(serial, parallel, "{mode:?} report at {workers} workers");
            assert_eq!(
                serial_tape.0, par_tape.0,
                "{mode:?} fact stream at {workers} workers"
            );
        }
    }

    #[test]
    fn parallel_report_and_fact_stream_match_serial() {
        let trace = mixed_trace(16, 600, 0xC0FFEE);
        for injection in [
            InjectionMode::Open,
            InjectionMode::Credit { window: 2 },
            InjectionMode::CreditPerDst { window: 1 },
        ] {
            let sim = sim_static(16, 8, injection);
            for workers in [1, 2, 3, 4, 7, 16, 64] {
                assert_parallel_matches(&sim, &trace, workers);
            }
        }
    }

    #[test]
    fn parallel_matches_serial_under_faults_and_transport() {
        let trace = mixed_trace(16, 400, 0xFA57);
        let plan = FaultPlan {
            seed: 7,
            scheduled: vec![LaneFault {
                lane: 1,
                at: 40,
                duration: 300,
            }],
            stochastic: Some(StochasticFaults {
                mean_up: 700.0,
                mean_down: 90.0,
                horizon: 3_000,
            }),
            corruption: CorruptionModel::Uniform { ber: 2e-4 },
        };
        let sim = sim_static(16, 8, InjectionMode::Credit { window: 3 })
            .with_faults(plan)
            .with_transport(TransportMode::go_back_n());
        for workers in [2, 3, 4, 16] {
            assert_parallel_matches(&sim, &trace, workers);
        }
    }

    #[test]
    fn reliability_probe_composes_identically() {
        let trace = mixed_trace(12, 300, 0xBEEF);
        let plan = FaultPlan {
            seed: 3,
            scheduled: Vec::new(),
            stochastic: None,
            corruption: CorruptionModel::Uniform { ber: 1e-3 },
        };
        let sim = sim_static(12, 6, InjectionMode::Open)
            .with_faults(plan)
            .with_transport(TransportMode::go_back_n());
        let mut serial_probe = ReliabilityProbe::new(6);
        let serial = sim
            .run_with_scratch_probed(
                trace.iter().copied(),
                &mut SimScratch::new(),
                ReportMode::Streaming,
                &mut serial_probe,
            )
            .unwrap();
        let mut par_probe = ReliabilityProbe::new(6);
        let parallel = sim
            .run_parallel_probed(
                trace.iter().copied(),
                3,
                ReportMode::Streaming,
                &mut par_probe,
            )
            .unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(serial_probe.report(), par_probe.report());
        assert!(serial.failed_attempts > 0, "the BER actually bites");
        let _ = FaultCause::Corrupt;
    }

    #[test]
    fn all_cross_shard_hotspot_terminates_and_matches() {
        // Every source hammers node 0 (all flows cross shard boundaries
        // by destination); the acyclic worker → merger pipeline cannot
        // deadlock, and the result stays bit-identical.
        let nodes = 32;
        let mut trace = Vec::new();
        for round in 0..40u64 {
            for src in 1..nodes {
                trace.push(event(round * 3, src, 0, 96.0));
            }
        }
        trace.sort_by_key(|e| e.time);
        let sim = sim_static(nodes, 8, InjectionMode::Credit { window: 2 });
        for workers in [2, 4, 5] {
            assert_parallel_matches(&sim, &trace, workers);
        }
    }

    #[test]
    fn ineligible_configurations_fall_back_to_serial() {
        // ECN is globally coupled; run_parallel must still agree (it
        // runs the serial engine internally).
        let trace = mixed_trace(16, 200, 0xE01);
        let sim = sim_static(16, 8, InjectionMode::Ecn { threshold: 0.4 });
        let serial = sim.run_streaming(trace.iter().copied()).unwrap();
        let parallel = sim
            .run_parallel(trace.iter().copied(), 4, ReportMode::Streaming)
            .unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_trace_parallel_is_a_clean_zero_report() {
        let sim = sim_static(8, 4, InjectionMode::Open);
        let serial = sim.run(std::iter::empty()).unwrap();
        let parallel = sim
            .run_parallel(std::iter::empty(), 4, ReportMode::Full)
            .unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(parallel.message_count, 0);
    }

    #[test]
    fn validation_errors_match_serial_semantics() {
        let sim = sim_static(8, 4, InjectionMode::Open);
        let bad = [event(5, 0, 1, 64.0), event(3, 1, 2, 64.0)];
        let serial = sim.run(bad.iter().copied()).unwrap_err();
        let parallel = sim
            .run_parallel(bad.iter().copied(), 2, ReportMode::Full)
            .unwrap_err();
        assert_eq!(format!("{serial:?}"), format!("{parallel:?}"));
    }

    proptest! {
        #[test]
        fn parallel_is_bit_identical_across_worker_counts(
            seed in 0u64..1_000,
            count in 50usize..250,
            injection_pick in 0usize..3,
            faulty in any::<bool>(),
            workers in 2usize..5,
        ) {
            let injection = match injection_pick {
                0 => InjectionMode::Open,
                1 => InjectionMode::Credit { window: 2 },
                _ => InjectionMode::Ecn { threshold: 0.5 },
            };
            let trace = mixed_trace(16, count, seed * 2 + 1);
            let mut sim = sim_static(16, 8, injection);
            if faulty {
                sim = sim
                    .with_faults(FaultPlan {
                        seed,
                        scheduled: vec![LaneFault { lane: 0, at: 25, duration: 120 }],
                        stochastic: None,
                        corruption: CorruptionModel::Uniform { ber: 5e-4 },
                    })
                    .with_transport(TransportMode::go_back_n());
            }
            for mode in [ReportMode::Full, ReportMode::Streaming] {
                let serial = sim
                    .run_with_scratch_probed(
                        trace.iter().copied(),
                        &mut SimScratch::new(),
                        mode,
                        &mut NullProbe,
                    )
                    .unwrap();
                let one = sim.run_parallel(trace.iter().copied(), 1, mode).unwrap();
                let many = sim.run_parallel(trace.iter().copied(), workers, mode).unwrap();
                prop_assert_eq!(&serial, &one);
                prop_assert_eq!(&serial, &many);
            }
        }
    }
}
