//! Simulation outputs: the closed task-graph report ([`SimReport`]) and
//! the open/closed-loop traffic report ([`OpenLoopReport`]) with its
//! latency, throughput, stall and credit-occupancy metrics.

use std::collections::HashMap;

use onoc_app::CommId;
use onoc_photonics::WavelengthId;
use onoc_topology::{DirectedSegment, NodeId};

use crate::injection::InjectionMode;

/// Two communications holding the same wavelength on the same directed
/// waveguide segment during overlapping cycle intervals.
///
/// For §III-D-valid allocations this never happens; for invalid ones the
/// list shows which static violations actually materialise at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelConflict {
    /// Where the collision happens.
    pub segment: DirectedSegment,
    /// The contested wavelength.
    pub channel: WavelengthId,
    /// The first (earlier-starting) communication.
    pub first: CommId,
    /// The second communication.
    pub second: CommId,
    /// The overlapping cycle interval `[start, end)`.
    pub overlap: (u64, u64),
}

impl core::fmt::Display for ChannelConflict {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} and {} both drive {} on {} during cycles {}..{}",
            self.first, self.second, self.channel, self.segment, self.overlap.0, self.overlap.1
        )
    }
}

/// The outcome of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Cycle at which the last task completed (the measured makespan).
    pub makespan: u64,
    /// Per task: `[start, end)` of its execution, task id order.
    pub task_spans: Vec<(u64, u64)>,
    /// Per communication: `[start, end)` of its transmission, comm id order.
    pub comm_spans: Vec<(u64, u64)>,
    /// Runtime wavelength collisions (empty for §III-D-valid allocations).
    pub conflicts: Vec<ChannelConflict>,
    /// Busy cycles accumulated per directed segment (summed over
    /// wavelengths), for utilisation studies.
    pub segment_busy: Vec<(DirectedSegment, u64)>,
}

impl SimReport {
    /// Fraction of `[0, makespan)` during which `segment` carried at least
    /// one busy wavelength-cycle, normalised per wavelength.
    ///
    /// Returns 0 for segments that never carried traffic.
    #[must_use]
    pub fn segment_utilization(&self, segment: DirectedSegment, wavelengths: usize) -> f64 {
        if self.makespan == 0 || wavelengths == 0 {
            return 0.0;
        }
        let busy = self
            .segment_busy
            .iter()
            .find(|(s, _)| *s == segment)
            .map_or(0, |&(_, b)| b);
        busy as f64 / (self.makespan as f64 * wavelengths as f64)
    }
}

/// Message index within one open-loop run (injection order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MsgId(pub usize);

impl core::fmt::Display for MsgId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Two messages driving the same wavelength on the same directed segment
/// during overlapping cycles (static mode only; dynamic runs are
/// conflict-free by construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenLoopConflict {
    /// Where the collision happens.
    pub segment: DirectedSegment,
    /// The contested wavelength.
    pub channel: WavelengthId,
    /// The earlier-starting message.
    pub first: MsgId,
    /// The later-starting message.
    pub second: MsgId,
    /// The overlapping cycle interval `[start, end)`.
    pub overlap: (u64, u64),
}

/// Summary statistics over a latency (or any nonnegative) sample set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (linear interpolation between ranks).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Largest sample.
    pub max: u64,
}

impl LatencyStats {
    /// Computes the statistics, consuming and sorting the samples.
    /// Returns an all-zero record for an empty set.
    #[must_use]
    pub fn from_samples(mut samples: Vec<u64>) -> Self {
        if samples.is_empty() {
            return Self {
                count: 0,
                mean: 0.0,
                p50: 0.0,
                p95: 0.0,
                p99: 0.0,
                max: 0,
            };
        }
        samples.sort_unstable();
        let count = samples.len();
        let mean = samples.iter().map(|&s| s as f64).sum::<f64>() / count as f64;
        let pct = |q: f64| -> f64 {
            let rank = q * (count - 1) as f64;
            let lo = rank.floor() as usize;
            let hi = rank.ceil() as usize;
            let frac = rank - lo as f64;
            samples[lo] as f64 * (1.0 - frac) + samples[hi] as f64 * frac
        };
        Self {
            count,
            mean,
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
            max: *samples.last().expect("non-empty"),
        }
    }
}

/// Everything recorded about one delivered message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MsgRecord {
    /// Producing ONI.
    pub src: NodeId,
    /// Consuming ONI.
    pub dst: NodeId,
    /// Offered (injection) cycle: when the source wanted to send.
    pub injected: u64,
    /// Cycle the injection gate admitted the message into the network
    /// interface (equals `injected` in open-loop mode).
    pub admitted: u64,
    /// Cycle the transmission actually started (after any queueing).
    pub started: u64,
    /// Cycle the last bit arrived.
    pub completed: u64,
    /// Wavelength count the message transmitted on.
    pub lanes: usize,
}

impl MsgRecord {
    /// End-to-end latency: offered time to last-bit arrival.
    #[must_use]
    pub fn latency(&self) -> u64 {
        self.completed - self.injected
    }

    /// Cycles the closed-loop gate held the message at the source
    /// (0 in open-loop mode).
    #[must_use]
    pub fn stall(&self) -> u64 {
        self.admitted - self.injected
    }

    /// Cycles spent waiting for wavelengths at the network interface
    /// after admission.
    #[must_use]
    pub fn queueing(&self) -> u64 {
        self.started - self.admitted
    }
}

/// Outcome of one open/closed-loop run.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenLoopReport {
    /// Ring size the run used.
    pub nodes: usize,
    /// Comb size the run used.
    pub wavelengths: usize,
    /// Injection policy the run used.
    pub injection: InjectionMode,
    /// Cycle of the last message completion (0 for an empty source).
    pub horizon: u64,
    /// Last offered injection cycle seen from the source.
    pub last_injection: u64,
    /// Per message, injection order.
    pub records: Vec<MsgRecord>,
    /// Total bits offered by the source.
    pub offered_bits: f64,
    /// Total bits delivered (the engine delivers everything eventually;
    /// kept separate so truncated variants stay honest).
    pub delivered_bits: f64,
    /// Messages that could not start transmitting at their admission
    /// cycle: no free wavelength on the path, or an earlier message from
    /// the same ONI still queued (dynamic mode); flow lanes busy
    /// (static mode).
    pub blocked_attempts: usize,
    /// Total wavelength collisions (static mode; 0 in dynamic mode).
    pub conflict_count: usize,
    /// The first few collisions, for diagnostics.
    pub conflict_examples: Vec<OpenLoopConflict>,
    /// Busy wavelength-cycles per directed segment.
    pub segment_busy: Vec<(DirectedSegment, u64)>,
    /// Busy wavelength-cycles per wavelength, summed over segments.
    pub lane_busy: Vec<u64>,
    /// Time-averaged fraction of the per-source credit windows in use
    /// over the run (0 outside credit mode).
    pub credit_occupancy: f64,
}

impl OpenLoopReport {
    /// Latency statistics over every delivered message.
    #[must_use]
    pub fn latency(&self) -> LatencyStats {
        LatencyStats::from_samples(self.records.iter().map(MsgRecord::latency).collect())
    }

    /// Stall-time statistics: cycles the closed-loop gate held messages
    /// at their source (all-zero in open-loop mode).
    #[must_use]
    pub fn stall(&self) -> LatencyStats {
        LatencyStats::from_samples(self.records.iter().map(MsgRecord::stall).collect())
    }

    /// Messages the gate stalled for at least one cycle.
    #[must_use]
    pub fn stalled_count(&self) -> usize {
        self.records.iter().filter(|r| r.stall() > 0).count()
    }

    /// Latency statistics per ordered `(src, dst)` flow, sorted by flow.
    #[must_use]
    pub fn latency_by_flow(&self) -> Vec<((NodeId, NodeId), LatencyStats)> {
        let mut per_flow: HashMap<(NodeId, NodeId), Vec<u64>> = HashMap::new();
        for r in &self.records {
            per_flow
                .entry((r.src, r.dst))
                .or_default()
                .push(r.latency());
        }
        let mut out: Vec<_> = per_flow
            .into_iter()
            .map(|(flow, samples)| (flow, LatencyStats::from_samples(samples)))
            .collect();
        out.sort_by_key(|&((s, d), _)| (s, d));
        out
    }

    /// Offered load in bits per cycle over the offered window
    /// `[0, last_injection]` (a burst entirely at cycle 0 is a 1-cycle
    /// window, not a division by zero).
    #[must_use]
    pub fn offered_load(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.offered_bits / (self.last_injection + 1) as f64
    }

    /// Accepted throughput in bits per cycle over the whole run (the
    /// saturation-curve y-axis companion). Under closed-loop injection
    /// the run stretches past the offered window when sources throttle,
    /// so this plateaus at the sustained knee instead of growing with
    /// queue depth.
    #[must_use]
    pub fn accepted_throughput(&self) -> f64 {
        if self.horizon == 0 {
            return 0.0;
        }
        self.delivered_bits / self.horizon as f64
    }

    /// Mean occupancy of the comb: busy wavelength-cycles over
    /// `horizon × 2·nodes segments × wavelengths` capacity.
    #[must_use]
    pub fn mean_wavelength_occupancy(&self) -> f64 {
        if self.horizon == 0 || self.wavelengths == 0 {
            return 0.0;
        }
        let busy: u64 = self.segment_busy.iter().map(|&(_, b)| b).sum();
        let capacity = self.horizon as f64 * (2 * self.nodes) as f64 * self.wavelengths as f64;
        busy as f64 / capacity
    }

    /// Occupancy of one wavelength across the whole ring.
    #[must_use]
    pub fn lane_occupancy(&self, lane: WavelengthId) -> f64 {
        if self.horizon == 0 {
            return 0.0;
        }
        let busy = self.lane_busy.get(lane.index()).copied().unwrap_or(0);
        busy as f64 / (self.horizon as f64 * (2 * self.nodes) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onoc_topology::Direction;

    fn seg(i: usize) -> DirectedSegment {
        DirectedSegment {
            index: i,
            direction: Direction::Clockwise,
        }
    }

    #[test]
    fn conflict_display_names_everything() {
        let c = ChannelConflict {
            segment: seg(3),
            channel: WavelengthId(1),
            first: CommId(0),
            second: CommId(4),
            overlap: (10, 20),
        };
        let msg = c.to_string();
        assert!(msg.contains("c0") && msg.contains("c4") && msg.contains("λ2"));
        assert!(msg.contains("10..20"));
    }

    #[test]
    fn utilization_arithmetic() {
        let report = SimReport {
            makespan: 100,
            task_spans: vec![],
            comm_spans: vec![],
            conflicts: vec![],
            segment_busy: vec![(seg(0), 50), (seg(1), 200)],
        };
        assert!((report.segment_utilization(seg(0), 1) - 0.5).abs() < 1e-12);
        assert!((report.segment_utilization(seg(1), 4) - 0.5).abs() < 1e-12);
        assert_eq!(report.segment_utilization(seg(2), 4), 0.0);
    }

    #[test]
    fn latency_stats_percentiles() {
        let stats = LatencyStats::from_samples((1..=100).collect());
        assert_eq!(stats.count, 100);
        assert!((stats.mean - 50.5).abs() < 1e-12);
        assert!((stats.p50 - 50.5).abs() < 1e-9);
        assert!((stats.p99 - 99.01).abs() < 1e-9);
        assert_eq!(stats.max, 100);
        let empty = LatencyStats::from_samples(Vec::new());
        assert_eq!(empty.count, 0);
        assert_eq!(empty.max, 0);
    }

    #[test]
    fn record_splits_stall_queueing_and_latency() {
        let r = MsgRecord {
            src: NodeId(0),
            dst: NodeId(3),
            injected: 10,
            admitted: 25,
            started: 40,
            completed: 140,
            lanes: 1,
        };
        assert_eq!(r.stall(), 15);
        assert_eq!(r.queueing(), 15);
        assert_eq!(r.latency(), 130);
    }

    #[test]
    fn utilization_degenerate_cases() {
        let report = SimReport {
            makespan: 0,
            task_spans: vec![],
            comm_spans: vec![],
            conflicts: vec![],
            segment_busy: vec![],
        };
        assert_eq!(report.segment_utilization(seg(0), 4), 0.0);
    }
}
