//! Simulation outputs.

use onoc_app::CommId;
use onoc_photonics::WavelengthId;
use onoc_topology::DirectedSegment;

/// Two communications holding the same wavelength on the same directed
/// waveguide segment during overlapping cycle intervals.
///
/// For §III-D-valid allocations this never happens; for invalid ones the
/// list shows which static violations actually materialise at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelConflict {
    /// Where the collision happens.
    pub segment: DirectedSegment,
    /// The contested wavelength.
    pub channel: WavelengthId,
    /// The first (earlier-starting) communication.
    pub first: CommId,
    /// The second communication.
    pub second: CommId,
    /// The overlapping cycle interval `[start, end)`.
    pub overlap: (u64, u64),
}

impl core::fmt::Display for ChannelConflict {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} and {} both drive {} on {} during cycles {}..{}",
            self.first, self.second, self.channel, self.segment, self.overlap.0, self.overlap.1
        )
    }
}

/// The outcome of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Cycle at which the last task completed (the measured makespan).
    pub makespan: u64,
    /// Per task: `[start, end)` of its execution, task id order.
    pub task_spans: Vec<(u64, u64)>,
    /// Per communication: `[start, end)` of its transmission, comm id order.
    pub comm_spans: Vec<(u64, u64)>,
    /// Runtime wavelength collisions (empty for §III-D-valid allocations).
    pub conflicts: Vec<ChannelConflict>,
    /// Busy cycles accumulated per directed segment (summed over
    /// wavelengths), for utilisation studies.
    pub segment_busy: Vec<(DirectedSegment, u64)>,
}

impl SimReport {
    /// Fraction of `[0, makespan)` during which `segment` carried at least
    /// one busy wavelength-cycle, normalised per wavelength.
    ///
    /// Returns 0 for segments that never carried traffic.
    #[must_use]
    pub fn segment_utilization(&self, segment: DirectedSegment, wavelengths: usize) -> f64 {
        if self.makespan == 0 || wavelengths == 0 {
            return 0.0;
        }
        let busy = self
            .segment_busy
            .iter()
            .find(|(s, _)| *s == segment)
            .map_or(0, |&(_, b)| b);
        busy as f64 / (self.makespan as f64 * wavelengths as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onoc_topology::Direction;

    fn seg(i: usize) -> DirectedSegment {
        DirectedSegment {
            index: i,
            direction: Direction::Clockwise,
        }
    }

    #[test]
    fn conflict_display_names_everything() {
        let c = ChannelConflict {
            segment: seg(3),
            channel: WavelengthId(1),
            first: CommId(0),
            second: CommId(4),
            overlap: (10, 20),
        };
        let msg = c.to_string();
        assert!(msg.contains("c0") && msg.contains("c4") && msg.contains("λ2"));
        assert!(msg.contains("10..20"));
    }

    #[test]
    fn utilization_arithmetic() {
        let report = SimReport {
            makespan: 100,
            task_spans: vec![],
            comm_spans: vec![],
            conflicts: vec![],
            segment_busy: vec![(seg(0), 50), (seg(1), 200)],
        };
        assert!((report.segment_utilization(seg(0), 1) - 0.5).abs() < 1e-12);
        assert!((report.segment_utilization(seg(1), 4) - 0.5).abs() < 1e-12);
        assert_eq!(report.segment_utilization(seg(2), 4), 0.0);
    }

    #[test]
    fn utilization_degenerate_cases() {
        let report = SimReport {
            makespan: 0,
            task_spans: vec![],
            comm_spans: vec![],
            conflicts: vec![],
            segment_busy: vec![],
        };
        assert_eq!(report.segment_utilization(seg(0), 4), 0.0);
    }
}
