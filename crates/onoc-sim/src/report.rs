//! Simulation outputs: the closed task-graph report ([`SimReport`]) and
//! the open/closed-loop traffic report ([`OpenLoopReport`]) with its
//! latency, throughput, stall and credit-occupancy metrics.

use std::collections::HashMap;

use onoc_app::CommId;
use onoc_photonics::WavelengthId;
use onoc_topology::{DirectedSegment, NodeId};

use crate::injection::InjectionMode;

/// Two communications holding the same wavelength on the same directed
/// waveguide segment during overlapping cycle intervals.
///
/// For §III-D-valid allocations this never happens; for invalid ones the
/// list shows which static violations actually materialise at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelConflict {
    /// Where the collision happens.
    pub segment: DirectedSegment,
    /// The contested wavelength.
    pub channel: WavelengthId,
    /// The first (earlier-starting) communication.
    pub first: CommId,
    /// The second communication.
    pub second: CommId,
    /// The overlapping cycle interval `[start, end)`.
    pub overlap: (u64, u64),
}

impl core::fmt::Display for ChannelConflict {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} and {} both drive {} on {} during cycles {}..{}",
            self.first, self.second, self.channel, self.segment, self.overlap.0, self.overlap.1
        )
    }
}

/// The outcome of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Cycle at which the last task completed (the measured makespan).
    pub makespan: u64,
    /// Per task: `[start, end)` of its execution, task id order.
    pub task_spans: Vec<(u64, u64)>,
    /// Per communication: `[start, end)` of its transmission, comm id order.
    pub comm_spans: Vec<(u64, u64)>,
    /// Runtime wavelength collisions (empty for §III-D-valid allocations).
    pub conflicts: Vec<ChannelConflict>,
    /// Busy cycles accumulated per directed segment (summed over
    /// wavelengths), for utilisation studies.
    pub segment_busy: Vec<(DirectedSegment, u64)>,
}

impl SimReport {
    /// Fraction of `[0, makespan)` during which `segment` carried at least
    /// one busy wavelength-cycle, normalised per wavelength.
    ///
    /// Returns 0 for segments that never carried traffic.
    #[must_use]
    pub fn segment_utilization(&self, segment: DirectedSegment, wavelengths: usize) -> f64 {
        if self.makespan == 0 || wavelengths == 0 {
            return 0.0;
        }
        let busy = self
            .segment_busy
            .iter()
            .find(|(s, _)| *s == segment)
            .map_or(0, |&(_, b)| b);
        busy as f64 / (self.makespan as f64 * wavelengths as f64)
    }
}

/// Message index within one open-loop run (injection order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MsgId(pub usize);

impl core::fmt::Display for MsgId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Two messages driving the same wavelength on the same directed segment
/// during overlapping cycles (static mode only; dynamic runs are
/// conflict-free by construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenLoopConflict {
    /// Where the collision happens.
    pub segment: DirectedSegment,
    /// The contested wavelength.
    pub channel: WavelengthId,
    /// The earlier-starting message.
    pub first: MsgId,
    /// The later-starting message.
    pub second: MsgId,
    /// The overlapping cycle interval `[start, end)`.
    pub overlap: (u64, u64),
}

/// Summary statistics over a latency (or any nonnegative) sample set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (linear interpolation between ranks).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Largest sample.
    pub max: u64,
}

impl LatencyStats {
    /// Computes the statistics, consuming and sorting the samples.
    /// Returns an all-zero record for an empty set.
    #[must_use]
    pub fn from_samples(mut samples: Vec<u64>) -> Self {
        if samples.is_empty() {
            return Self {
                count: 0,
                mean: 0.0,
                p50: 0.0,
                p95: 0.0,
                p99: 0.0,
                max: 0,
            };
        }
        samples.sort_unstable();
        let count = samples.len();
        let mean = samples.iter().map(|&s| s as f64).sum::<f64>() / count as f64;
        let pct = |q: f64| -> f64 {
            let rank = q * (count - 1) as f64;
            let lo = rank.floor() as usize;
            let hi = rank.ceil() as usize;
            let frac = rank - lo as f64;
            samples[lo] as f64 * (1.0 - frac) + samples[hi] as f64 * frac
        };
        Self {
            count,
            mean,
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
            max: *samples.last().expect("non-empty"),
        }
    }
}

/// Number of bins in a [`LatencyHistogram`]: one zero bin plus 8 log-scale
/// sub-bins per power of two across the whole `u64` range.
const HIST_BINS: usize = 1 + 64 * 8;

/// A fixed-size log-scale histogram over nonnegative cycle counts — the
/// streaming replacement for retaining every sample.
///
/// Values bucket into 8 sub-bins per octave (plus an exact zero bin), so
/// every bin spans at most a 9/8 ratio: any quantile read from the
/// histogram is the lower edge of the bin holding the exact nearest-rank
/// sample, i.e. within one bin (≤ 12.5% relative) of it. Values below 16
/// are exact. Count, sum (hence mean) and max are tracked exactly.
///
/// Memory is `O(bins)` — one fixed 513-slot table — independent of the
/// sample count, which is what lets sweep workers run millions of
/// messages without retaining [`MsgRecord`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Sub-bin resolution: `2^3 = 8` bins per octave.
    const SUB_BITS: u32 = 3;

    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            counts: vec![0; HIST_BINS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// The bin index of `value`.
    fn bin_of(value: u64) -> usize {
        if value == 0 {
            return 0;
        }
        let e = 63 - value.leading_zeros();
        let sub = if e >= Self::SUB_BITS {
            (value >> (e - Self::SUB_BITS)) & 7
        } else {
            (value << (Self::SUB_BITS - e)) & 7
        };
        1 + (e as usize) * 8 + sub as usize
    }

    /// The smallest value mapping to bin `idx` (the bin's representative).
    fn bin_lower(idx: usize) -> u64 {
        if idx == 0 {
            return 0;
        }
        let k = idx - 1;
        let (e, sub) = ((k / 8) as u32, (k % 8) as u64);
        if e >= Self::SUB_BITS {
            (8 + sub) << (e - Self::SUB_BITS)
        } else {
            (8 + sub) >> (Self::SUB_BITS - e)
        }
    }

    /// Adds one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bin_of(value)] += 1;
        self.count += 1;
        self.sum += u128::from(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of samples strictly greater than zero.
    #[must_use]
    pub fn nonzero_count(&self) -> u64 {
        self.count - self.counts[0]
    }

    /// Exact largest sample.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact arithmetic mean (sum and count are tracked exactly).
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The nearest-rank `q`-quantile, reported as the lower edge of the
    /// bin holding that rank's sample — within one bin of the exact
    /// nearest-rank value (see the type docs for the error bound).
    #[must_use]
    #[allow(
        clippy::cast_precision_loss,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q * (self.count - 1) as f64).round() as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen > rank {
                return Self::bin_lower(idx) as f64;
            }
        }
        self.max as f64
    }

    /// Summary statistics in the same shape the exact path produces.
    /// Quantiles follow the nearest-rank convention (no interpolation).
    #[must_use]
    #[allow(clippy::cast_possible_truncation)]
    pub fn stats(&self) -> LatencyStats {
        LatencyStats {
            count: self.count as usize,
            mean: self.mean(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            max: self.max,
        }
    }
}

/// Everything recorded about one delivered message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MsgRecord {
    /// Producing ONI.
    pub src: NodeId,
    /// Consuming ONI.
    pub dst: NodeId,
    /// Offered (injection) cycle: when the source wanted to send.
    pub injected: u64,
    /// Cycle the injection gate admitted the message into the network
    /// interface (equals `injected` in open-loop mode).
    pub admitted: u64,
    /// Cycle the transmission actually started (after any queueing).
    pub started: u64,
    /// Cycle the last bit arrived.
    pub completed: u64,
    /// Wavelength count the message transmitted on.
    pub lanes: usize,
    /// Transmission attempts the message took (1 on the fault-free
    /// path; greater after transport-layer retransmissions).
    pub attempts: u32,
}

impl MsgRecord {
    /// End-to-end latency: offered time to last-bit arrival.
    #[must_use]
    pub fn latency(&self) -> u64 {
        self.completed - self.injected
    }

    /// Cycles the closed-loop gate held the message at the source
    /// (0 in open-loop mode).
    #[must_use]
    pub fn stall(&self) -> u64 {
        self.admitted - self.injected
    }

    /// Cycles spent waiting for wavelengths at the network interface
    /// after admission.
    #[must_use]
    pub fn queueing(&self) -> u64 {
        self.started - self.admitted
    }
}

/// Outcome of one open/closed-loop run.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenLoopReport {
    /// Ring size the run used.
    pub nodes: usize,
    /// Comb size the run used.
    pub wavelengths: usize,
    /// Injection policy the run used.
    pub injection: InjectionMode,
    /// Cycle of the last message completion (0 for an empty source).
    pub horizon: u64,
    /// Last offered injection cycle seen from the source.
    pub last_injection: u64,
    /// Messages the run delivered (always exact, in both report modes).
    pub message_count: usize,
    /// Per message, injection order. Populated by the record-retaining
    /// mode ([`ReportMode::Full`](crate::ReportMode)); empty in streaming
    /// mode, where only the histograms below are kept.
    pub records: Vec<MsgRecord>,
    /// Log-scale end-to-end latency histogram (always populated; the
    /// streaming mode's only latency state).
    pub latency_hist: LatencyHistogram,
    /// Log-scale source-stall histogram (always populated).
    pub stall_hist: LatencyHistogram,
    /// Largest number of messages simultaneously in flight through the
    /// engine (offered-but-unretired window) — the streaming mode's
    /// actual memory high-water in message slots.
    pub peak_in_flight: usize,
    /// Total bits offered by the source.
    pub offered_bits: f64,
    /// Total bits delivered (the engine delivers everything eventually;
    /// kept separate so truncated variants stay honest).
    pub delivered_bits: f64,
    /// Messages that could not start transmitting at their admission
    /// cycle: no free wavelength on the path, or an earlier message from
    /// the same ONI still queued (dynamic mode); flow lanes busy
    /// (static mode).
    pub blocked_attempts: usize,
    /// Total wavelength collisions (static mode; 0 in dynamic mode).
    pub conflict_count: usize,
    /// The first few collisions, for diagnostics.
    pub conflict_examples: Vec<OpenLoopConflict>,
    /// Busy wavelength-cycles per directed segment.
    pub segment_busy: Vec<(DirectedSegment, u64)>,
    /// Busy wavelength-cycles per wavelength, summed over segments.
    pub lane_busy: Vec<u64>,
    /// Time-averaged fraction of the per-source credit windows in use
    /// over the run (0 outside credit mode). Under per-destination
    /// credit pools the denominator is the full
    /// `window × (nodes − 1)` pool per source.
    pub credit_occupancy: f64,
    /// Transmission attempts that failed (lane outage, corruption, or a
    /// go-back-N out-of-order discard). 0 on the fault-free path.
    pub failed_attempts: usize,
    /// Bits spent on those failed attempts (they drove lanes and burned
    /// energy without delivering).
    pub retransmitted_bits: f64,
    /// Messages permanently lost (never retired; excluded from
    /// `delivered_bits` and every latency statistic).
    pub lost_messages: usize,
    /// Bits of the lost messages.
    pub lost_bits: f64,
}

impl OpenLoopReport {
    /// Latency statistics over every delivered message: exact
    /// (interpolated quantiles) when [`OpenLoopReport::records`] are
    /// retained, histogram-based (nearest-rank quantiles, within one log
    /// bin of exact) in streaming mode.
    #[must_use]
    pub fn latency(&self) -> LatencyStats {
        if self.records.is_empty() {
            self.latency_hist.stats()
        } else {
            LatencyStats::from_samples(self.records.iter().map(MsgRecord::latency).collect())
        }
    }

    /// Stall-time statistics: cycles the closed-loop gate held messages
    /// at their source (all-zero in open-loop mode). Exact with retained
    /// records, histogram-based in streaming mode.
    #[must_use]
    pub fn stall(&self) -> LatencyStats {
        if self.records.is_empty() {
            self.stall_hist.stats()
        } else {
            LatencyStats::from_samples(self.records.iter().map(MsgRecord::stall).collect())
        }
    }

    /// Messages the gate stalled for at least one cycle (exact in both
    /// modes — the zero bin is exact).
    #[must_use]
    #[allow(clippy::cast_possible_truncation)]
    pub fn stalled_count(&self) -> usize {
        if self.records.is_empty() {
            self.stall_hist.nonzero_count() as usize
        } else {
            self.records.iter().filter(|r| r.stall() > 0).count()
        }
    }

    /// Latency statistics per ordered `(src, dst)` flow, sorted by flow.
    ///
    /// Requires retained records; the streaming mode returns an empty
    /// vector (per-flow distributions are exactly the per-message state
    /// it exists to drop).
    #[must_use]
    pub fn latency_by_flow(&self) -> Vec<((NodeId, NodeId), LatencyStats)> {
        let mut per_flow: HashMap<(NodeId, NodeId), Vec<u64>> = HashMap::new();
        for r in &self.records {
            per_flow
                .entry((r.src, r.dst))
                .or_default()
                .push(r.latency());
        }
        let mut out: Vec<_> = per_flow
            .into_iter()
            .map(|(flow, samples)| (flow, LatencyStats::from_samples(samples)))
            .collect();
        out.sort_by_key(|&((s, d), _)| (s, d));
        out
    }

    /// Offered load in bits per cycle over the offered window
    /// `[0, last_injection]` (a burst entirely at cycle 0 is a 1-cycle
    /// window, not a division by zero).
    #[must_use]
    pub fn offered_load(&self) -> f64 {
        if self.message_count == 0 {
            return 0.0;
        }
        self.offered_bits / (self.last_injection + 1) as f64
    }

    /// Accepted throughput in bits per cycle over the whole run (the
    /// saturation-curve y-axis companion). Under closed-loop injection
    /// the run stretches past the offered window when sources throttle,
    /// so this plateaus at the sustained knee instead of growing with
    /// queue depth.
    #[must_use]
    pub fn accepted_throughput(&self) -> f64 {
        if self.horizon == 0 {
            return 0.0;
        }
        self.delivered_bits / self.horizon as f64
    }

    /// Mean occupancy of the comb: busy wavelength-cycles over
    /// `horizon × 2·nodes segments × wavelengths` capacity.
    #[must_use]
    pub fn mean_wavelength_occupancy(&self) -> f64 {
        if self.horizon == 0 || self.wavelengths == 0 {
            return 0.0;
        }
        let busy: u64 = self.segment_busy.iter().map(|&(_, b)| b).sum();
        let capacity = self.horizon as f64 * (2 * self.nodes) as f64 * self.wavelengths as f64;
        busy as f64 / capacity
    }

    /// Occupancy of one wavelength across the whole ring.
    #[must_use]
    pub fn lane_occupancy(&self, lane: WavelengthId) -> f64 {
        if self.horizon == 0 {
            return 0.0;
        }
        let busy = self.lane_busy.get(lane.index()).copied().unwrap_or(0);
        busy as f64 / (self.horizon as f64 * (2 * self.nodes) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onoc_topology::Direction;

    fn seg(i: usize) -> DirectedSegment {
        DirectedSegment {
            index: i,
            direction: Direction::Clockwise,
        }
    }

    #[test]
    fn conflict_display_names_everything() {
        let c = ChannelConflict {
            segment: seg(3),
            channel: WavelengthId(1),
            first: CommId(0),
            second: CommId(4),
            overlap: (10, 20),
        };
        let msg = c.to_string();
        assert!(msg.contains("c0") && msg.contains("c4") && msg.contains("λ2"));
        assert!(msg.contains("10..20"));
    }

    #[test]
    fn utilization_arithmetic() {
        let report = SimReport {
            makespan: 100,
            task_spans: vec![],
            comm_spans: vec![],
            conflicts: vec![],
            segment_busy: vec![(seg(0), 50), (seg(1), 200)],
        };
        assert!((report.segment_utilization(seg(0), 1) - 0.5).abs() < 1e-12);
        assert!((report.segment_utilization(seg(1), 4) - 0.5).abs() < 1e-12);
        assert_eq!(report.segment_utilization(seg(2), 4), 0.0);
    }

    #[test]
    fn latency_stats_percentiles() {
        let stats = LatencyStats::from_samples((1..=100).collect());
        assert_eq!(stats.count, 100);
        assert!((stats.mean - 50.5).abs() < 1e-12);
        assert!((stats.p50 - 50.5).abs() < 1e-9);
        assert!((stats.p99 - 99.01).abs() < 1e-9);
        assert_eq!(stats.max, 100);
        let empty = LatencyStats::from_samples(Vec::new());
        assert_eq!(empty.count, 0);
        assert_eq!(empty.max, 0);
    }

    #[test]
    fn histogram_is_exact_for_small_values() {
        let mut h = LatencyHistogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 16);
        assert_eq!(h.max(), 15);
        assert_eq!(h.nonzero_count(), 15);
        // Values below 16 land in exact single-value bins.
        for v in 0..16u64 {
            assert_eq!(
                LatencyHistogram::bin_lower(LatencyHistogram::bin_of(v)),
                v,
                "value {v}"
            );
        }
        assert!((h.mean() - 7.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_bins_bound_relative_error() {
        // Every value's bin lower edge is within 12.5% below the value.
        for v in [
            1u64,
            17,
            100,
            513,
            4_095,
            1 << 20,
            (1 << 40) + 12345,
            u64::MAX,
        ] {
            let lower = LatencyHistogram::bin_lower(LatencyHistogram::bin_of(v));
            assert!(lower <= v, "lower {lower} > value {v}");
            assert!(
                (v - lower) as f64 <= v as f64 / 8.0,
                "value {v} lower {lower}"
            );
        }
    }

    #[test]
    fn histogram_quantiles_match_nearest_rank_bins() {
        let samples: Vec<u64> = (0..1000).map(|k| k * k % 7919).collect();
        let mut h = LatencyHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
            let exact = sorted[(q * (sorted.len() - 1) as f64).round() as usize];
            let approx = h.quantile(q);
            let lower = LatencyHistogram::bin_lower(LatencyHistogram::bin_of(exact)) as f64;
            assert!(
                (approx - lower).abs() < 1e-9,
                "q {q}: got {approx}, exact nearest-rank {exact} (bin lower {lower})"
            );
        }
        let empty = LatencyHistogram::new();
        assert_eq!(empty.quantile(0.5), 0.0);
        assert_eq!(empty.stats().count, 0);
    }

    #[test]
    fn record_splits_stall_queueing_and_latency() {
        let r = MsgRecord {
            src: NodeId(0),
            dst: NodeId(3),
            injected: 10,
            admitted: 25,
            started: 40,
            completed: 140,
            lanes: 1,
            attempts: 1,
        };
        assert_eq!(r.stall(), 15);
        assert_eq!(r.queueing(), 15);
        assert_eq!(r.latency(), 130);
    }

    #[test]
    fn utilization_degenerate_cases() {
        let report = SimReport {
            makespan: 0,
            task_spans: vec![],
            comm_spans: vec![],
            conflicts: vec![],
            segment_busy: vec![],
        };
        assert_eq!(report.segment_utilization(seg(0), 4), 0.0);
    }
}
