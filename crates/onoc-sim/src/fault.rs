//! Fault injection for the open/closed-loop engine: lane (wavelength)
//! failures and BER-driven message corruption, plus the
//! [`ReliabilityProbe`] folding the extended fact stream into a
//! reliability report.
//!
//! The paper's ring-WDM fabric is exactly where perfect-delivery
//! assumptions break: micro-ring resonators drift off resonance with
//! temperature (knocking a *lane* — one wavelength, ring-wide — out of
//! service until re-tuned) and high-loss paths run at SNRs where
//! transient bit errors are expected (the `onoc-photonics` BER/SNR
//! models quantify exactly this). A [`FaultPlan`] describes both:
//!
//! * **Lane failures** — [`LaneFault`] schedules deterministic
//!   `[at, at + duration)` outages; [`StochasticFaults`] draws
//!   exponential up/down times per lane from the plan's seed, so fault
//!   runs replay exactly.
//! * **Corruption** — [`CorruptionModel`] gives each flow a bit-error
//!   rate; an attempt transmitting `B` bits is corrupted with
//!   probability `1 − (1 − BER)^B`, drawn from a counter-based hash of
//!   `(seed, message id, attempt)` so the draw is independent of event
//!   interleaving.
//!
//! What happens to a failed attempt is the transport layer's decision
//! ([`TransportMode`](crate::TransportMode)): retransmit (go-back-N /
//! PFC) or drop. Either way the engine emits [`DropFact`]s, `lost`,
//! `recovered` and `lane_event` facts through
//! [`SimProbe`](crate::SimProbe), and the [`ReliabilityProbe`] folds
//! them into delivered-vs-retransmitted bits, goodput, recovery latency
//! and per-lane downtime.

use std::collections::HashMap;

use onoc_topology::NodeId;
use onoc_wa::HealPolicy;

use crate::probe::SimProbe;
use crate::report::{LatencyHistogram, LatencyStats, MsgRecord};

/// One scheduled lane outage: lane `lane` is down during
/// `[at, at + duration)` (`duration == u64::MAX` means permanent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneFault {
    /// The failed wavelength (ring-wide: an MR drifting off resonance
    /// takes the channel out on every segment).
    pub lane: usize,
    /// First down cycle.
    pub at: u64,
    /// Outage length in cycles; `u64::MAX` never recovers.
    pub duration: u64,
}

/// A stochastic MR-failure process: every lane alternates exponential
/// up/down periods, drawn deterministically from the plan seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StochasticFaults {
    /// Mean cycles between failures of one lane (MTBF).
    pub mean_up: f64,
    /// Mean outage length in cycles (MTTR).
    pub mean_down: f64,
    /// No new failures are scheduled at or past this cycle (outages in
    /// progress still recover), bounding the process for finite runs.
    pub horizon: u64,
}

/// Per-flow transient-corruption probability, expressed as a bit-error
/// rate.
#[derive(Debug, Clone, PartialEq)]
pub enum CorruptionModel {
    /// No corruption.
    None,
    /// One BER for every flow.
    Uniform {
        /// Bit-error rate in `[0, 1)`.
        ber: f64,
    },
    /// A BER per ordered flow (`src × nodes + dst`), e.g. derived from
    /// each path's worst-case loss through the photonics SNR → BER
    /// chain.
    PerFlow(Vec<f64>),
    /// A per-lane two-state Gilbert–Elliott burst-error channel: each
    /// lane alternates *good* and *bad* sojourns (mean lengths
    /// `1 / p_gb` and `1 / p_bg` cycles, drawn from the plan seed like
    /// every other stochastic decision, so runs replay exactly), and an
    /// attempt sees the bad-state BER whenever any lane of its mask was
    /// bad during the transmission span. This models the correlated
    /// error bursts of a thermally drifting micro-ring — errors cluster
    /// while the resonance is off-peak instead of arriving i.i.d.
    GilbertElliott {
        /// Per-cycle good → bad transition probability in `(0, 1]`
        /// (mean good sojourn `1 / p_gb` cycles).
        p_gb: f64,
        /// Per-cycle bad → good transition probability in `(0, 1]`
        /// (mean bad sojourn `1 / p_bg` cycles).
        p_bg: f64,
        /// Bit-error rate while every lane of the attempt is good.
        ber_good: f64,
        /// Bit-error rate while any lane of the attempt is bad.
        ber_bad: f64,
    },
}

impl CorruptionModel {
    /// The bit-error rate applied to `flow`. For the time-varying
    /// [`CorruptionModel::GilbertElliott`] channel this is the
    /// good-state (baseline) rate; the engine swaps in `ber_bad` per
    /// attempt from the lane timelines.
    #[must_use]
    pub fn ber(&self, flow: usize) -> f64 {
        match self {
            CorruptionModel::None => 0.0,
            CorruptionModel::Uniform { ber } => *ber,
            CorruptionModel::PerFlow(bers) => bers[flow],
            CorruptionModel::GilbertElliott { ber_good, .. } => *ber_good,
        }
    }

    fn validate(&self, nodes: usize) {
        let check = |ber: f64| {
            assert!(
                ber.is_finite() && (0.0..1.0).contains(&ber),
                "a bit-error rate must be in [0, 1), got {ber}"
            );
        };
        match self {
            CorruptionModel::None => {}
            CorruptionModel::Uniform { ber } => check(*ber),
            CorruptionModel::PerFlow(bers) => {
                assert_eq!(
                    bers.len(),
                    nodes * nodes,
                    "per-flow BER table needs one entry per ordered (src, dst)"
                );
                bers.iter().copied().for_each(check);
            }
            CorruptionModel::GilbertElliott {
                p_gb,
                p_bg,
                ber_good,
                ber_bad,
            } => {
                for (name, p) in [("p_gb", *p_gb), ("p_bg", *p_bg)] {
                    assert!(
                        p.is_finite() && p > 0.0 && p <= 1.0,
                        "Gilbert–Elliott {name} must be in (0, 1], got {p}"
                    );
                }
                check(*ber_good);
                check(*ber_bad);
                assert!(
                    ber_bad >= ber_good,
                    "Gilbert–Elliott bad-state BER {ber_bad} below good-state BER {ber_good}"
                );
            }
        }
    }
}

/// A deterministic, replayable fault schedule for one engine run.
///
/// Attach with
/// [`OpenLoopSimulator::with_faults`](crate::OpenLoopSimulator::with_faults).
/// A plan with no scheduled faults, no stochastic process and
/// [`CorruptionModel::None`] (or an all-zero BER) routes every message
/// through the fault code path but changes nothing — reports stay
/// bit-identical to the fault-free engine (proptested).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of every stochastic draw (outage times, corruption).
    pub seed: u64,
    /// Deterministic lane outages.
    pub scheduled: Vec<LaneFault>,
    /// Stochastic per-lane failure process.
    pub stochastic: Option<StochasticFaults>,
    /// Transient message corruption.
    pub corruption: CorruptionModel,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given draw seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            scheduled: Vec::new(),
            stochastic: None,
            corruption: CorruptionModel::None,
        }
    }

    /// Sets a uniform bit-error rate.
    #[must_use]
    pub fn with_ber(mut self, ber: f64) -> Self {
        self.corruption = CorruptionModel::Uniform { ber };
        self
    }

    /// Sets a per-flow BER table (`src × nodes + dst`).
    #[must_use]
    pub fn with_per_flow_ber(mut self, bers: Vec<f64>) -> Self {
        self.corruption = CorruptionModel::PerFlow(bers);
        self
    }

    /// Sets a per-lane Gilbert–Elliott burst-error channel.
    #[must_use]
    pub fn with_gilbert_elliott(
        mut self,
        p_gb: f64,
        p_bg: f64,
        ber_good: f64,
        ber_bad: f64,
    ) -> Self {
        self.corruption = CorruptionModel::GilbertElliott {
            p_gb,
            p_bg,
            ber_good,
            ber_bad,
        };
        self
    }

    /// Adds one scheduled lane outage.
    #[must_use]
    pub fn with_scheduled(mut self, fault: LaneFault) -> Self {
        self.scheduled.push(fault);
        self
    }

    /// Sets the stochastic failure process.
    #[must_use]
    pub fn with_stochastic(mut self, process: StochasticFaults) -> Self {
        self.stochastic = Some(process);
        self
    }

    /// Whether the plan can actually perturb a run.
    #[must_use]
    pub fn is_vacuous(&self) -> bool {
        self.scheduled.is_empty()
            && self.stochastic.is_none()
            && matches!(self.corruption, CorruptionModel::None)
    }

    /// Validates the plan against a run geometry.
    ///
    /// # Panics
    ///
    /// Panics on a lane outside the comb, a zero-length outage, a
    /// non-positive stochastic mean, a BER outside `[0, 1)`, or a
    /// per-flow table of the wrong shape.
    pub fn validate(&self, nodes: usize, wavelengths: usize) {
        for f in &self.scheduled {
            assert!(
                f.lane < wavelengths,
                "scheduled fault on lane {} outside a {wavelengths}-λ comb",
                f.lane
            );
            assert!(f.duration >= 1, "a lane outage must last at least 1 cycle");
        }
        if let Some(st) = &self.stochastic {
            assert!(
                st.mean_up.is_finite() && st.mean_up > 0.0,
                "stochastic mean up-time must be positive, got {}",
                st.mean_up
            );
            assert!(
                st.mean_down.is_finite() && st.mean_down > 0.0,
                "stochastic mean down-time must be positive, got {}",
                st.mean_down
            );
        }
        self.corruption.validate(nodes);
    }
}

/// A counter-based splitmix-style hash: uniform 64-bit output for
/// `(seed, stream, counter)`. Corruption draws key on
/// `(message id, attempt)` and outage draws on `(lane, draw index)`, so
/// every stochastic decision is independent of event interleaving and
/// fault runs replay exactly.
#[must_use]
pub fn hash64(seed: u64, stream: u64, counter: u64) -> u64 {
    let mut z = seed
        .wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(counter.wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a hash to the unit interval `[0, 1)` (53-bit mantissa).
#[must_use]
#[allow(clippy::cast_precision_loss)]
pub fn unit_interval(hash: u64) -> f64 {
    (hash >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// An exponential draw with the given mean, in whole cycles (at least
/// 1), via inverse-transform sampling of `hash64(seed, stream, counter)`.
#[must_use]
#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
pub fn exp_draw(seed: u64, stream: u64, counter: u64, mean: f64) -> u64 {
    let u = unit_interval(hash64(seed, stream, counter));
    let cycles = -mean * (1.0 - u).ln();
    (cycles.ceil() as u64).max(1)
}

/// Probability that a `bits`-bit message transmits with at least one bit
/// error at bit-error rate `ber`: `1 − (1 − BER)^bits`, computed in log
/// space so tiny BERs stay accurate.
#[must_use]
pub fn message_error_probability(ber: f64, bits: f64) -> f64 {
    if ber <= 0.0 || bits <= 0.0 {
        return 0.0;
    }
    if ber >= 1.0 {
        return 1.0;
    }
    -(bits * (-ber).ln_1p()).exp_m1()
}

/// Hash-stream namespace of the Gilbert–Elliott sojourn draws, disjoint
/// from both the per-message corruption streams (message ids) and the
/// stochastic-outage lane streams (`LANE_STREAM = 1 << 63` in the
/// engine).
pub(crate) const GE_STREAM: u64 = 3 << 62;

/// The deterministic per-lane good/bad state timeline of a
/// [`CorruptionModel::GilbertElliott`] channel.
///
/// Sojourn lengths are drawn lazily by inverse transform from
/// `hash64(seed, GE_STREAM | lane, k)` (the `k`-th sojourn of the lane,
/// mean `1 / p` cycles), so the timeline is a pure function of the plan
/// seed — independent of event interleaving and identical across
/// replays. Every lane starts in the *good* state at cycle 0; the
/// boundary list per lane holds cumulative sojourn end cycles, even
/// indices ending good sojourns.
#[derive(Debug, Clone)]
pub(crate) struct GeTimeline {
    seed: u64,
    p_gb: f64,
    p_bg: f64,
    bounds: Vec<Vec<u64>>,
}

impl GeTimeline {
    pub(crate) fn new(seed: u64, p_gb: f64, p_bg: f64, wavelengths: usize) -> Self {
        Self {
            seed,
            p_gb,
            p_bg,
            bounds: vec![Vec::new(); wavelengths],
        }
    }

    /// Extends lane `lane`'s boundary list until it covers cycle `t`.
    fn extend(&mut self, lane: usize, t: u64) {
        let bounds = &mut self.bounds[lane];
        while bounds.last().is_none_or(|&b| b <= t) {
            let k = bounds.len() as u64;
            // Even sojourn index = good state (mean 1 / p_gb).
            let mean = if k.is_multiple_of(2) {
                1.0 / self.p_gb
            } else {
                1.0 / self.p_bg
            };
            let len = exp_draw(self.seed, GE_STREAM | lane as u64, k, mean);
            let end = bounds.last().copied().unwrap_or(0).saturating_add(len);
            bounds.push(end);
        }
    }

    /// Whether lane `lane` is in the bad state at cycle `t`.
    pub(crate) fn is_bad(&mut self, lane: usize, t: u64) -> bool {
        self.extend(lane, t);
        self.bounds[lane].partition_point(|&b| b <= t) % 2 == 1
    }

    /// Whether lane `lane` spends any cycle of `[start, end)` in the bad
    /// state. Sojourns alternate, so either `start` already sits in a
    /// bad sojourn or the good sojourn containing `start` must end
    /// before `end`.
    pub(crate) fn bad_over(&mut self, lane: usize, start: u64, end: u64) -> bool {
        self.extend(lane, end.max(start));
        let idx = self.bounds[lane].partition_point(|&b| b <= start);
        idx % 2 == 1 || self.bounds[lane][idx] < end
    }

    /// End cycle of the bad sojourn containing `t` (the first cycle the
    /// lane is good again). Falls back to `t` if the lane is good at `t`.
    pub(crate) fn bad_until(&mut self, lane: usize, t: u64) -> u64 {
        if self.is_bad(lane, t) {
            let idx = self.bounds[lane].partition_point(|&b| b <= t);
            self.bounds[lane][idx]
        } else {
            t
        }
    }
}

/// Why a transmission attempt failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultCause {
    /// The BER draw corrupted the payload (receiver CRC fails).
    Corrupt,
    /// A lane of the attempt was down during the transmission.
    LaneDown,
    /// Go-back-N receiver discarded an out-of-order frame (an earlier
    /// sequence number is still outstanding).
    OutOfOrder,
}

impl FaultCause {
    /// The machine-friendly name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultCause::Corrupt => "corrupt",
            FaultCause::LaneDown => "lane-down",
            FaultCause::OutOfOrder => "out-of-order",
        }
    }
}

impl core::fmt::Display for FaultCause {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// A failed transmission attempt: the busy interval it still drove, the
/// bits it wasted, and why it failed. Mirrors
/// [`TxFact`](crate::TxFact) for the drop path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DropFact {
    /// Cycle the attempt started.
    pub start: u64,
    /// Cycle the attempt would have delivered (the failure is detected
    /// at the receiver, so lanes were held for the whole span).
    pub end: u64,
    /// Bitmask of the wavelengths driven.
    pub lanes: u128,
    /// Directed segments the path crosses.
    pub hops: usize,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Message volume in bits (spent by this attempt without being
    /// delivered).
    pub bits: f64,
    /// Failure classification.
    pub cause: FaultCause,
    /// 1-based attempt number that failed.
    pub attempt: u32,
}

impl DropFact {
    /// Number of wavelengths driven.
    #[must_use]
    pub fn lane_count(&self) -> usize {
        self.lanes.count_ones() as usize
    }

    /// Attempt duration in cycles.
    #[must_use]
    pub fn span(&self) -> u64 {
        self.end - self.start
    }
}

/// One self-healing re-allocation attempt, emitted through
/// [`SimProbe::heal`] when a lane loss (or a Gilbert–Elliott channel
/// degrading past the configured BER threshold) triggers the
/// incremental re-allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealFact {
    /// Trigger cycle (the quiesce point the new map was swapped in at).
    pub at: u64,
    /// The lane whose outage triggered the heal.
    pub lane: usize,
    /// Heal policy that ran.
    pub policy: HealPolicy,
    /// Flows whose masks intersected a dark lane (the re-pack set).
    pub affected: usize,
    /// Flows whose lane mask actually changed.
    pub moved: usize,
    /// Lane-sharing pairs the relaxed policy accepted.
    pub shared: usize,
    /// Parked messages restarted by the swap.
    pub restarted: usize,
    /// Admission stall incurred: cycles the restarted messages had
    /// already spent parked (sum of `at − admitted`).
    pub stall_cycles: u64,
    /// Whether a new map was swapped in (`false` when the strict policy
    /// found the surviving comb infeasible, or the policy is
    /// [`HealPolicy::Park`] — the old map stays and flows park).
    pub feasible: bool,
}

/// One lane outage as seen by the [`ReliabilityProbe`]: when it
/// started, which flows it blocked, and when goodput was restored.
#[derive(Debug, Clone)]
struct OutageTrack {
    start: u64,
    /// Cycle goodput was restored: a feasible heal swapped a new map
    /// in, a blocked flow delivered again, or (when nothing was ever
    /// blocked) the outage itself. `None` until then — censored at the
    /// horizon.
    resolved: Option<u64>,
    /// Flows that lost an attempt to this outage.
    blocked: u32,
}

/// A [`SimProbe`] folding the fault/transport fact stream into a
/// [`ReliabilityReport`]: delivered vs retransmitted bits, goodput,
/// recovery latency, per-outage recovery, loss, and per-lane downtime.
#[derive(Debug, Clone)]
pub struct ReliabilityProbe {
    delivered_messages: u64,
    delivered_bits: f64,
    corrupt_attempts: u64,
    lane_down_attempts: u64,
    out_of_order_attempts: u64,
    retransmitted_bits: f64,
    lost_messages: u64,
    lost_bits: f64,
    recovered_messages: u64,
    recovery_hist: LatencyHistogram,
    lane_down_since: Vec<Option<u64>>,
    lane_downtime: Vec<u64>,
    outages: Vec<OutageTrack>,
    /// Index into `outages` of the open outage per lane.
    open_outage: Vec<Option<usize>>,
    /// Flow → outage it is currently blocked on (first drop wins).
    blocked_flows: HashMap<(NodeId, NodeId), usize>,
    heals: u64,
    flows_moved: u64,
    horizon: u64,
}

impl ReliabilityProbe {
    /// A probe for runs on a `wavelengths`-channel comb.
    #[must_use]
    pub fn new(wavelengths: usize) -> Self {
        Self {
            delivered_messages: 0,
            delivered_bits: 0.0,
            corrupt_attempts: 0,
            lane_down_attempts: 0,
            out_of_order_attempts: 0,
            retransmitted_bits: 0.0,
            lost_messages: 0,
            lost_bits: 0.0,
            recovered_messages: 0,
            recovery_hist: LatencyHistogram::new(),
            lane_down_since: vec![None; wavelengths],
            lane_downtime: vec![0; wavelengths],
            outages: Vec::new(),
            open_outage: vec![None; wavelengths],
            blocked_flows: HashMap::new(),
            heals: 0,
            flows_moved: 0,
            horizon: 0,
        }
    }

    /// Clears the folded state so the probe can observe another run.
    pub fn reset(&mut self) {
        let wavelengths = self.lane_downtime.len();
        *self = Self::new(wavelengths);
    }

    /// Assembles the reliability report of the observed run.
    #[must_use]
    pub fn report(&self) -> ReliabilityReport {
        let recovery = self
            .outages
            .iter()
            .map(|o| o.resolved.unwrap_or(self.horizon.max(o.start)) - o.start)
            .collect();
        ReliabilityReport {
            delivered_messages: self.delivered_messages,
            delivered_bits: self.delivered_bits,
            corrupt_attempts: self.corrupt_attempts,
            lane_down_attempts: self.lane_down_attempts,
            out_of_order_attempts: self.out_of_order_attempts,
            retransmitted_bits: self.retransmitted_bits,
            lost_messages: self.lost_messages,
            lost_bits: self.lost_bits,
            recovered_messages: self.recovered_messages,
            recovery_latency: self.recovery_hist.stats(),
            outages: self.outages.len() as u64,
            outage_recovery: LatencyStats::from_samples(recovery),
            heals: self.heals,
            flows_moved: self.flows_moved,
            lane_downtime: self.lane_downtime.clone(),
            horizon: self.horizon,
        }
    }
}

impl SimProbe for ReliabilityProbe {
    #[inline]
    fn retired(&mut self, record: &MsgRecord, volume_bits: f64, _hops: usize) {
        self.delivered_messages += 1;
        self.delivered_bits += volume_bits;
        // A delivery by a flow blocked on an outage restores goodput.
        // Retirement facts can trail their completion cycle (the engine
        // retires the message deque head-first, in id order), so a
        // record that completed *before* the outage opened is stale
        // evidence and resolves nothing.
        if let std::collections::hash_map::Entry::Occupied(e) =
            self.blocked_flows.entry((record.src, record.dst))
        {
            let outage = &mut self.outages[*e.get()];
            if record.completed >= outage.start {
                e.remove();
                if outage.resolved.is_none() {
                    outage.resolved = Some(record.completed);
                }
            }
        }
    }

    #[inline]
    fn dropped(&mut self, fact: DropFact) {
        match fact.cause {
            FaultCause::Corrupt => self.corrupt_attempts += 1,
            FaultCause::LaneDown => {
                self.lane_down_attempts += 1;
                // Attribute the flow to the open outage on a lane of the
                // attempt (lowest lane wins when several are down).
                let hit = (0..self.open_outage.len())
                    .filter(|&l| fact.lanes & (1 << l) != 0)
                    .find_map(|l| self.open_outage[l]);
                if let Some(idx) = hit
                    && let std::collections::hash_map::Entry::Vacant(e) =
                        self.blocked_flows.entry((fact.src, fact.dst))
                {
                    e.insert(idx);
                    self.outages[idx].blocked += 1;
                }
            }
            FaultCause::OutOfOrder => self.out_of_order_attempts += 1,
        }
        self.retransmitted_bits += fact.bits;
    }

    #[inline]
    fn lost(&mut self, _record: &MsgRecord, volume_bits: f64, _attempts: u32) {
        self.lost_messages += 1;
        self.lost_bits += volume_bits;
    }

    #[inline]
    fn recovered(&mut self, _record: &MsgRecord, _attempts: u32, recovery_cycles: u64) {
        self.recovered_messages += 1;
        self.recovery_hist.record(recovery_cycles);
    }

    #[inline]
    fn lane_event(&mut self, now: u64, lane: usize, down: bool) {
        if down {
            self.lane_down_since[lane] = Some(now);
            self.open_outage[lane] = Some(self.outages.len());
            self.outages.push(OutageTrack {
                start: now,
                resolved: None,
                blocked: 0,
            });
        } else if let Some(since) = self.lane_down_since[lane].take() {
            self.lane_downtime[lane] += now - since;
            if let Some(idx) = self.open_outage[lane].take() {
                let outage = &mut self.outages[idx];
                // Nothing ever lost an attempt to this outage: goodput
                // never dipped, so recovery is instantaneous.
                if outage.resolved.is_none() && outage.blocked == 0 {
                    outage.resolved = Some(outage.start);
                }
            }
        }
    }

    #[inline]
    fn heal(&mut self, fact: HealFact) {
        self.heals += u64::from(fact.feasible);
        self.flows_moved += fact.moved as u64;
        // A feasible heal re-packs the flows of *every* dark lane, so it
        // restores goodput for all open outages at once.
        if fact.feasible {
            for idx in self.open_outage.iter().flatten() {
                let outage = &mut self.outages[*idx];
                if outage.resolved.is_none() {
                    outage.resolved = Some(fact.at);
                }
            }
        }
    }

    #[inline]
    fn finished(&mut self, horizon: u64, _last_injection: u64) {
        self.horizon = horizon;
        // Close outages still open at the end of the run; unresolved
        // recoveries stay censored at the horizon (see `report`).
        for lane in 0..self.lane_down_since.len() {
            if let Some(since) = self.lane_down_since[lane].take() {
                self.lane_downtime[lane] += horizon.saturating_sub(since);
            }
        }
    }
}

/// The folded reliability outcome of one engine run.
#[derive(Debug, Clone, PartialEq)]
pub struct ReliabilityReport {
    /// Messages delivered (retired) by the run.
    pub delivered_messages: u64,
    /// Bits delivered; retransmitted bits are *not* in here — every
    /// message counts once, on its final successful attempt.
    pub delivered_bits: f64,
    /// Attempts failed by BER corruption.
    pub corrupt_attempts: u64,
    /// Attempts failed by a lane outage.
    pub lane_down_attempts: u64,
    /// Attempts discarded by the go-back-N receiver as out of order.
    pub out_of_order_attempts: u64,
    /// Bits spent on failed attempts (wasted fabric traffic).
    pub retransmitted_bits: f64,
    /// Messages permanently lost (retries exhausted, or no transport).
    pub lost_messages: u64,
    /// Bits of the lost messages.
    pub lost_bits: f64,
    /// Messages delivered after at least one failed attempt.
    pub recovered_messages: u64,
    /// Cycles from a message's first failure to its final delivery,
    /// over the recovered messages.
    pub recovery_latency: LatencyStats,
    /// Lane outages observed (one per lane-down event).
    pub outages: u64,
    /// Per-outage recovery latency — cycles from lane-down to goodput
    /// restored (a feasible heal, or the first delivery of a flow the
    /// outage had blocked; 0 when nothing was blocked, censored at the
    /// horizon when goodput never came back). The p50/p95/p99 here are
    /// the recovery-latency SLO numbers.
    pub outage_recovery: LatencyStats,
    /// Feasible self-healing map swaps performed.
    pub heals: u64,
    /// Flows moved to new lanes across all heals.
    pub flows_moved: u64,
    /// Down cycles per lane over the run.
    pub lane_downtime: Vec<u64>,
    /// Cycle of the last completion.
    pub horizon: u64,
}

impl ReliabilityReport {
    /// Total failed attempts across every cause.
    #[must_use]
    pub fn failed_attempts(&self) -> u64 {
        self.corrupt_attempts + self.lane_down_attempts + self.out_of_order_attempts
    }

    /// Goodput in delivered bits per cycle — retransmitted bits count
    /// zero here (0 for an empty run).
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn goodput(&self) -> f64 {
        if self.horizon == 0 {
            0.0
        } else {
            self.delivered_bits / self.horizon as f64
        }
    }

    /// Fraction of offered messages delivered
    /// (`delivered / (delivered + lost)`, 1.0 for an empty run).
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn delivery_ratio(&self) -> f64 {
        let total = self.delivered_messages + self.lost_messages;
        if total == 0 {
            1.0
        } else {
            self.delivered_messages as f64 / total as f64
        }
    }

    /// Fraction of transmitted bits that were wasted on failed attempts
    /// (`retransmitted / (delivered + retransmitted)`, 0 when idle).
    #[must_use]
    pub fn waste_fraction(&self) -> f64 {
        let total = self.delivered_bits + self.retransmitted_bits;
        if total <= 0.0 {
            0.0
        } else {
            self.retransmitted_bits / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic_and_spreads() {
        assert_eq!(hash64(1, 2, 3), hash64(1, 2, 3));
        assert_ne!(hash64(1, 2, 3), hash64(1, 2, 4));
        assert_ne!(hash64(1, 2, 3), hash64(2, 2, 3));
        // Unit-interval draws cover [0, 1) reasonably uniformly.
        let mean: f64 = (0..1000)
            .map(|k| unit_interval(hash64(42, 7, k)))
            .sum::<f64>()
            / 1000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
        for k in 0..1000 {
            let u = unit_interval(hash64(42, 7, k));
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn exp_draws_have_the_requested_mean() {
        let mean = 100.0;
        let draws: f64 = (0..4000)
            .map(|k| exp_draw(9, 1, k, mean) as f64)
            .sum::<f64>()
            / 4000.0;
        assert!(
            (draws - mean).abs() < mean * 0.1,
            "empirical mean {draws} for requested {mean}"
        );
        assert!(exp_draw(9, 1, 0, 1e-9) >= 1, "draws are at least 1 cycle");
    }

    #[test]
    fn message_error_probability_is_calibrated() {
        assert_eq!(message_error_probability(0.0, 512.0), 0.0);
        assert_eq!(message_error_probability(1.0, 512.0), 1.0);
        // Small-p regime: p ≈ bits × ber.
        let p = message_error_probability(1e-9, 1000.0);
        assert!((p - 1e-6).abs() < 1e-9, "p {p}");
        // Exact check against the direct formula at a moderate BER.
        let exact = 1.0 - (1.0f64 - 1e-3).powi(512);
        let log = message_error_probability(1e-3, 512.0);
        assert!((log - exact).abs() < 1e-12);
    }

    #[test]
    fn plan_validation_rejects_bad_parameters() {
        let plan = FaultPlan::new(1).with_scheduled(LaneFault {
            lane: 8,
            at: 0,
            duration: 10,
        });
        assert!(std::panic::catch_unwind(|| plan.validate(4, 8)).is_err());
        let plan = FaultPlan::new(1).with_ber(1.5);
        assert!(std::panic::catch_unwind(|| plan.validate(4, 8)).is_err());
        let plan = FaultPlan::new(1).with_per_flow_ber(vec![0.0; 3]);
        assert!(std::panic::catch_unwind(|| plan.validate(4, 8)).is_err());
        FaultPlan::new(1)
            .with_ber(1e-6)
            .with_scheduled(LaneFault {
                lane: 0,
                at: 5,
                duration: u64::MAX,
            })
            .with_stochastic(StochasticFaults {
                mean_up: 1000.0,
                mean_down: 50.0,
                horizon: 10_000,
            })
            .validate(4, 8);
        assert!(FaultPlan::new(0).is_vacuous());
        assert!(!FaultPlan::new(0).with_ber(1e-9).is_vacuous());
    }

    #[test]
    fn reliability_probe_folds_hand_computed_facts() {
        let mut probe = ReliabilityProbe::new(4);
        let record = MsgRecord {
            src: NodeId(0),
            dst: NodeId(2),
            injected: 0,
            admitted: 0,
            started: 0,
            completed: 100,
            lanes: 1,
            attempts: 2,
        };
        probe.dropped(DropFact {
            start: 0,
            end: 50,
            lanes: 0b1,
            hops: 2,
            src: NodeId(0),
            dst: NodeId(2),
            bits: 128.0,
            cause: FaultCause::Corrupt,
            attempt: 1,
        });
        probe.recovered(&record, 2, 50);
        probe.retired(&record, 128.0, 2);
        probe.lost(&record, 64.0, 3);
        probe.lane_event(10, 1, true);
        probe.lane_event(30, 1, false);
        probe.lane_event(90, 3, true); // still down at the horizon
        probe.finished(100, 0);
        let r = probe.report();
        assert_eq!(r.corrupt_attempts, 1);
        assert_eq!(r.failed_attempts(), 1);
        assert_eq!((r.delivered_messages, r.lost_messages), (1, 1));
        assert!((r.delivered_bits - 128.0).abs() < 1e-12);
        assert!((r.retransmitted_bits - 128.0).abs() < 1e-12);
        assert!((r.lost_bits - 64.0).abs() < 1e-12);
        assert_eq!(r.recovered_messages, 1);
        assert_eq!(r.recovery_latency.max, 50);
        assert_eq!(r.lane_downtime, vec![0, 20, 0, 10]);
        assert!((r.goodput() - 1.28).abs() < 1e-12);
        assert!((r.delivery_ratio() - 0.5).abs() < 1e-12);
        assert!((r.waste_fraction() - 0.5).abs() < 1e-12);
    }

    /// A pinned seeded Gilbert–Elliott schedule: the first state
    /// boundaries of two lanes, plus point and interval queries against
    /// them. Any change to the sojourn-draw arithmetic (stream split,
    /// hash, inverse transform) shows up here first.
    #[test]
    fn golden_seeded_gilbert_elliott_schedule() {
        let mut ge = GeTimeline::new(42, 0.01, 0.1, 2);
        // Force both lanes out to cycle 2000 and snapshot the bounds.
        let summary = (0..2)
            .map(|lane| {
                ge.extend(lane, 2000);
                let bounds = &ge.bounds[lane];
                let shown = bounds.len().min(4);
                format!("lane{lane}={:?}", &bounds[..shown])
            })
            .collect::<Vec<_>>()
            .join(" ");
        assert_eq!(
            summary, "lane0=[74, 75, 125, 128] lane1=[3, 9, 21, 40]",
            "seeded Gilbert–Elliott schedule drifted"
        );
        // Point queries: cycle 0 is always good, the first boundary
        // flips to bad, the second back to good.
        assert!(!ge.is_bad(0, 0));
        assert!(ge.is_bad(0, 74) && !ge.is_bad(0, 75));
        // Interval queries: an attempt wholly inside the first good
        // sojourn is clean; one crossing its end sees the bad state.
        assert!(!ge.bad_over(0, 0, 74));
        assert!(ge.bad_over(0, 60, 80));
        assert!(ge.bad_over(0, 74, 75));
        // Quarantine horizon: the bad sojourn containing cycle 74 ends
        // at the next boundary; a good cycle maps to itself.
        assert_eq!(ge.bad_until(0, 74), 75);
        assert_eq!(ge.bad_until(0, 10), 10);
    }

    #[test]
    fn empty_probe_reports_clean_zeroes() {
        let r = ReliabilityProbe::new(2).report();
        assert_eq!(r.failed_attempts(), 0);
        assert_eq!(r.goodput(), 0.0);
        assert_eq!(r.delivery_ratio(), 1.0);
        assert_eq!(r.waste_fraction(), 0.0);
    }
}
