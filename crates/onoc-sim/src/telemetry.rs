//! Windowed time-series and attribution telemetry over the
//! [`SimProbe`] fact stream.
//!
//! The engine's observer API (admissions with stall and source,
//! transmission starts/completions with lanes × hops × endpoints × ECN
//! mark, retirements with the full [`MsgRecord`]) carries everything a
//! time-resolved view needs, so telemetry is pure fold state:
//!
//! * [`TimeSeriesProbe`] — fixed-window series of offered/accepted
//!   throughput, gate/queue/in-flight occupancy, stall cycles, ECN
//!   marks, lane and segment utilization, and a windowed Jain's
//!   fairness index over per-source accepted bits; plus per-source
//!   latency histograms (the 513-bin [`LatencyHistogram`]) and
//!   per-flow retired-bit totals.
//! * [`StreamingTimeSeriesProbe`] — the same windowed fold, but bins
//!   are emitted through a callback as soon as no in-flight
//!   transmission can still write into them, so memory is `O(open
//!   windows)` instead of `O(horizon / window)`.
//! * [`ChromeTraceProbe`] — retirements as Chrome trace-event
//!   ("Perfetto") duration events, one track per source, loadable in
//!   `ui.perfetto.dev`; fault runs additionally carry drop instants,
//!   lane-outage spans and retry counts.
//!
//! Both compose with any other probe through the `(A, B)` pair impl:
//!
//! ```
//! use onoc_sim::{
//!     DynamicPolicy, EnergyModel, EnergyProbe, OpenLoopSimulator, TimeSeriesProbe,
//!     TrafficEvent, WavelengthMode,
//! };
//! use onoc_topology::{NodeId, RingTopology};
//! use onoc_units::{Bits, BitsPerCycle};
//!
//! let sim = OpenLoopSimulator::new(
//!     RingTopology::new(16),
//!     8,
//!     BitsPerCycle::new(1.0),
//!     WavelengthMode::Dynamic(DynamicPolicy::Single),
//! );
//! let mut energy = EnergyProbe::new(EnergyModel::paper(16, 8), 16, 8);
//! let mut telemetry = TimeSeriesProbe::new(64, 16, 8);
//! let events = (0..32u64).map(|k| TrafficEvent {
//!     time: k,
//!     src: NodeId((k % 16) as usize),
//!     dst: NodeId(((k + 3) % 16) as usize),
//!     volume: Bits::new(128.0),
//! });
//! sim.run_probed(events, &mut (&mut energy, &mut telemetry)).unwrap();
//! let series = telemetry.report();
//! assert_eq!(series.total_retired(), 32);
//! ```
//!
//! All buffers are sized per source/flow at construction and the window
//! vector grows only past its reserved capacity
//! ([`TimeSeriesProbe::with_horizon_hint`]), so a hinted probe keeps the
//! zero-alloc admit path allocation-free (the counting-allocator
//! regression test runs with one attached).

use std::collections::VecDeque;

use onoc_topology::NodeId;

use crate::fault::{DropFact, HealFact};
use crate::probe::{SimProbe, TxFact};
use crate::report::{LatencyHistogram, LatencyStats, MsgRecord};

/// One window's folded counters (internal accumulation form of
/// [`WindowStats`] — cumulative occupancies are derived at fold time).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct WindowBin {
    offered: u64,
    admitted: u64,
    started: u64,
    completed: u64,
    retired: u64,
    retired_bits: f64,
    stall_cycles: u64,
    ecn_marks: u64,
    lane_cycles: u64,
    seg_cycles: u64,
    failed: u64,
    retransmitted_bits: f64,
    lost: u64,
}

/// One window of a [`TimeSeries`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowStats {
    /// First cycle of the window (`index × window`).
    pub start: u64,
    /// Messages offered (injection attempts) in the window.
    pub offered: u64,
    /// Messages passing their injection gate in the window.
    pub admitted: u64,
    /// Transmissions starting in the window.
    pub started: u64,
    /// Transmissions delivering their last bit in the window.
    pub completed: u64,
    /// Messages retiring (completion cycle) in the window.
    pub retired: u64,
    /// Bits retired in the window — accepted throughput × window.
    pub retired_bits: f64,
    /// Source-stall cycles of messages admitted in the window.
    pub stall_cycles: u64,
    /// ECN congestion marks set by starts in the window.
    pub ecn_marks: u64,
    /// Lane-on cycles overlapping the window (Σ lanes × overlap).
    pub lane_cycles: u64,
    /// Segment-busy cycles overlapping the window (Σ lanes × hops ×
    /// overlap).
    pub seg_cycles: u64,
    /// Transmission attempts failing (lane outage, corruption or
    /// go-back-N reorder) in the window.
    pub failed: u64,
    /// Bits of failed attempts ending in the window — the wasted
    /// transmission volume retransmissions must make up.
    pub retransmitted_bits: f64,
    /// Messages declared permanently lost in the window.
    pub lost: u64,
    /// Messages held at their source gate at the window's end
    /// (offered but not yet admitted — credit/ECN backpressure).
    /// Residual fault losses that never pass a gate keep this gauge
    /// non-zero through the tail of the run.
    pub gate_held: u64,
    /// Messages admitted but not yet transmitting at the window's end
    /// (approximate under fault retransmissions, where one admission
    /// spawns several starts; the engine clamps it at zero).
    pub queue_depth: u64,
    /// Transmissions in flight at the window's end.
    pub in_flight: u64,
    /// Jain's fairness index over per-source bits retired in the
    /// window: `(Σx)² / (n·Σx²)`, 1.0 for an idle window.
    pub fairness: f64,
    /// Jain's fairness index over per-flow (`src → dst`) bits retired
    /// in the window. Unlike [`fairness`](Self::fairness), whose
    /// population is the fixed set of sources, the flow population is
    /// sparse (at most `nodes² − nodes` directed pairs, most idle), so
    /// the index runs over the flows *active in the window* only:
    /// `(Σx)² / (k·Σx²)` with `k` the number of flows retiring bits.
    /// 1.0 for an idle window.
    pub flow_fairness: f64,
}

/// Jain's index over the active (nonzero) entries of `xs`: 1.0 when no
/// entry is active.
fn jain_over_active(xs: &[f64]) -> f64 {
    let sum: f64 = xs.iter().sum();
    if sum <= 0.0 {
        return 1.0;
    }
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    #[allow(clippy::cast_precision_loss)]
    let active = xs.iter().filter(|&&x| x > 0.0).count() as f64;
    sum * sum / (active * sq)
}

/// The folded time-series outcome of one engine run, from
/// [`TimeSeriesProbe::report`].
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    /// Window length in cycles.
    pub window: u64,
    /// Ring size.
    pub nodes: usize,
    /// Comb size.
    pub wavelengths: usize,
    /// Cycle of the last completion.
    pub horizon: u64,
    /// Last offered cycle.
    pub last_injection: u64,
    /// The per-window series, index `i` covering cycles
    /// `[i·window, (i+1)·window)`.
    pub windows: Vec<WindowStats>,
    /// Per-source end-to-end latency statistics (nearest-rank
    /// histogram quantiles, ≤ 12.5% relative).
    pub source_latency: Vec<LatencyStats>,
    /// Messages retired per source.
    pub source_retired: Vec<u64>,
    /// Bits retired per source.
    pub source_retired_bits: Vec<f64>,
    /// Bits retired per flow (`src × nodes + dst`).
    pub flow_bits: Vec<f64>,
    /// Messages retired per flow.
    pub flow_messages: Vec<u64>,
}

impl TimeSeries {
    /// Total messages offered across every window.
    #[must_use]
    pub fn total_offered(&self) -> u64 {
        self.windows.iter().map(|w| w.offered).sum()
    }

    /// Total messages admitted across every window.
    #[must_use]
    pub fn total_admitted(&self) -> u64 {
        self.windows.iter().map(|w| w.admitted).sum()
    }

    /// Total messages retired across every window.
    #[must_use]
    pub fn total_retired(&self) -> u64 {
        self.windows.iter().map(|w| w.retired).sum()
    }

    /// Total bits retired across every window.
    #[must_use]
    pub fn total_retired_bits(&self) -> f64 {
        self.windows.iter().map(|w| w.retired_bits).sum()
    }

    /// Total source-stall cycles across every window.
    #[must_use]
    pub fn total_stall_cycles(&self) -> u64 {
        self.windows.iter().map(|w| w.stall_cycles).sum()
    }

    /// Total ECN marks across every window.
    #[must_use]
    pub fn total_ecn_marks(&self) -> u64 {
        self.windows.iter().map(|w| w.ecn_marks).sum()
    }

    /// Total segment-busy (lane × hop) cycles across every window.
    #[must_use]
    pub fn total_seg_cycles(&self) -> u64 {
        self.windows.iter().map(|w| w.seg_cycles).sum()
    }

    /// Total failed transmission attempts across every window.
    #[must_use]
    pub fn total_failed(&self) -> u64 {
        self.windows.iter().map(|w| w.failed).sum()
    }

    /// Total wasted (failed-attempt) bits across every window.
    #[must_use]
    pub fn total_retransmitted_bits(&self) -> f64 {
        self.windows.iter().map(|w| w.retransmitted_bits).sum()
    }

    /// Total messages lost across every window.
    #[must_use]
    pub fn total_lost(&self) -> u64 {
        self.windows.iter().map(|w| w.lost).sum()
    }

    /// Accepted throughput of window `i` in bits/cycle.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn accepted_bits_per_cycle(&self, i: usize) -> f64 {
        self.windows[i].retired_bits / self.window as f64
    }

    /// Mean active-lane utilization of window `i`: lane-on cycles over
    /// the window's `wavelengths × window` lane-cycles.
    ///
    /// A lane carries spatially disjoint transmissions concurrently, so
    /// spatial reuse on the ring pushes this above 1.0; for a
    /// capacity-bounded view use
    /// [`segment_utilization`](Self::segment_utilization).
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn lane_utilization(&self, i: usize) -> f64 {
        self.windows[i].lane_cycles as f64 / (self.window * self.wavelengths as u64) as f64
    }

    /// Mean directed-segment utilization of window `i`: segment-busy
    /// cycles over the window's `2·nodes × wavelengths × window`
    /// segment-lane-cycles.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn segment_utilization(&self, i: usize) -> f64 {
        let capacity = self.window * 2 * self.nodes as u64 * self.wavelengths as u64;
        self.windows[i].seg_cycles as f64 / capacity as f64
    }

    /// Fraction of window `i`'s source-cycles spent gate-stalled
    /// (stall cycles over `nodes × window`).
    ///
    /// A message's full stall is booked to the window that finally
    /// admits it, so deep closed-loop backlogs push individual windows
    /// above 1.0 while the run total stays conserved.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn stall_fraction(&self, i: usize) -> f64 {
        self.windows[i].stall_cycles as f64 / (self.window * self.nodes as u64) as f64
    }
}

/// A [`SimProbe`] folding the fact stream into a [`TimeSeries`].
///
/// Per-source and per-flow buffers are sized at construction; the
/// window vector grows on demand, allocation-free up to the capacity
/// reserved with [`with_horizon_hint`](Self::with_horizon_hint).
#[derive(Debug, Clone)]
pub struct TimeSeriesProbe {
    window: u64,
    nodes: usize,
    wavelengths: usize,
    bins: Vec<WindowBin>,
    /// Flat `bins.len() × nodes` matrix of per-source retired bits.
    src_window_bits: Vec<f64>,
    /// Flat `bins.len() × nodes²` matrix of per-flow retired bits
    /// (`src × nodes + dst` within each bin's row).
    flow_window_bits: Vec<f64>,
    src_hists: Vec<LatencyHistogram>,
    src_retired: Vec<u64>,
    src_retired_bits: Vec<f64>,
    flow_bits: Vec<f64>,
    flow_messages: Vec<u64>,
    horizon: u64,
    last_injection: u64,
}

impl TimeSeriesProbe {
    /// A probe with `window`-cycle bins for runs on a `nodes`-core ring
    /// with a `wavelengths`-channel comb.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    #[must_use]
    pub fn new(window: u64, nodes: usize, wavelengths: usize) -> Self {
        assert!(window > 0, "the telemetry window must be at least 1 cycle");
        Self {
            window,
            nodes,
            wavelengths,
            bins: Vec::new(),
            src_window_bits: Vec::new(),
            flow_window_bits: Vec::new(),
            src_hists: vec![LatencyHistogram::new(); nodes],
            src_retired: vec![0; nodes],
            src_retired_bits: vec![0.0; nodes],
            flow_bits: vec![0.0; nodes * nodes],
            flow_messages: vec![0; nodes * nodes],
            horizon: 0,
            last_injection: 0,
        }
    }

    /// Reserves window capacity for a run expected to span `horizon`
    /// cycles, so folding it allocates nothing.
    #[must_use]
    pub fn with_horizon_hint(mut self, horizon: u64) -> Self {
        #[allow(clippy::cast_possible_truncation)]
        let bins = (horizon / self.window + 2) as usize;
        self.bins.reserve(bins);
        self.src_window_bits.reserve(bins * self.nodes);
        self.flow_window_bits
            .reserve(bins * self.nodes * self.nodes);
        self
    }

    /// The window length in cycles.
    #[must_use]
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Clears the folded state so the probe can observe another run
    /// (buffers keep their capacity).
    pub fn reset(&mut self) {
        self.bins.clear();
        self.src_window_bits.clear();
        self.flow_window_bits.clear();
        for h in &mut self.src_hists {
            *h = LatencyHistogram::new();
        }
        self.src_retired.fill(0);
        self.src_retired_bits.fill(0.0);
        self.flow_bits.fill(0.0);
        self.flow_messages.fill(0);
        self.horizon = 0;
        self.last_injection = 0;
    }

    #[allow(clippy::cast_possible_truncation)]
    fn bin_index(&self, cycle: u64) -> usize {
        (cycle / self.window) as usize
    }

    /// Grows the window vector (and the per-source matrix in lockstep)
    /// to cover bin `idx`.
    fn ensure_bin(&mut self, idx: usize) -> &mut WindowBin {
        while self.bins.len() <= idx {
            self.bins.push(WindowBin::default());
            self.src_window_bits
                .resize(self.bins.len() * self.nodes, 0.0);
            self.flow_window_bits
                .resize(self.bins.len() * self.nodes * self.nodes, 0.0);
        }
        &mut self.bins[idx]
    }

    /// Assembles the time series of the observed run.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn report(&self) -> TimeSeries {
        let (mut offered, mut admitted, mut started, mut completed, mut failed) =
            (0u64, 0u64, 0u64, 0u64, 0u64);
        let windows = self
            .bins
            .iter()
            .enumerate()
            .map(|(i, bin)| {
                offered += bin.offered;
                admitted += bin.admitted;
                started += bin.started;
                completed += bin.completed;
                failed += bin.failed;
                let xs = &self.src_window_bits[i * self.nodes..(i + 1) * self.nodes];
                let sum: f64 = xs.iter().sum();
                let sq: f64 = xs.iter().map(|x| x * x).sum();
                let fairness = if sum > 0.0 {
                    sum * sum / (self.nodes as f64 * sq)
                } else {
                    1.0
                };
                let flows = self.nodes * self.nodes;
                let flow_fairness =
                    jain_over_active(&self.flow_window_bits[i * flows..(i + 1) * flows]);
                WindowStats {
                    start: i as u64 * self.window,
                    offered: bin.offered,
                    admitted: bin.admitted,
                    started: bin.started,
                    completed: bin.completed,
                    retired: bin.retired,
                    retired_bits: bin.retired_bits,
                    stall_cycles: bin.stall_cycles,
                    ecn_marks: bin.ecn_marks,
                    lane_cycles: bin.lane_cycles,
                    seg_cycles: bin.seg_cycles,
                    failed: bin.failed,
                    retransmitted_bits: bin.retransmitted_bits,
                    lost: bin.lost,
                    // Saturating: a full engine stream keeps these
                    // ordered (offered ≥ admitted ≥ started ≥
                    // completed + failed), but partial hand-fed streams
                    // may not.
                    gate_held: offered.saturating_sub(admitted),
                    queue_depth: admitted.saturating_sub(started),
                    in_flight: started.saturating_sub(completed + failed),
                    fairness,
                    flow_fairness,
                }
            })
            .collect();
        TimeSeries {
            window: self.window,
            nodes: self.nodes,
            wavelengths: self.wavelengths,
            horizon: self.horizon,
            last_injection: self.last_injection,
            windows,
            source_latency: self.src_hists.iter().map(LatencyHistogram::stats).collect(),
            source_retired: self.src_retired.clone(),
            source_retired_bits: self.src_retired_bits.clone(),
            flow_bits: self.flow_bits.clone(),
            flow_messages: self.flow_messages.clone(),
        }
    }
}

impl SimProbe for TimeSeriesProbe {
    #[inline]
    fn offered(&mut self, time: u64, _src: NodeId) {
        // Booked from the engine's offer fact rather than derived from
        // `admitted − stall`, so messages a fault run loses before they
        // ever pass a gate still count as offered load.
        self.ensure_bin(self.bin_index(time)).offered += 1;
        self.last_injection = self.last_injection.max(time);
    }

    #[inline]
    fn admitted(&mut self, now: u64, stall: u64, _src: NodeId) {
        let bin = self.bin_index(now);
        let b = self.ensure_bin(bin);
        b.admitted += 1;
        b.stall_cycles += stall;
    }

    #[inline]
    fn started(&mut self, fact: TxFact) {
        let b = self.ensure_bin(self.bin_index(fact.start));
        b.started += 1;
        if fact.marked {
            b.ecn_marks += 1;
        }
    }

    #[inline]
    fn completed(&mut self, fact: TxFact) {
        let end_bin = self.bin_index(fact.end);
        self.ensure_bin(end_bin).completed += 1;
        if fact.end == fact.start {
            return;
        }
        // Spread the busy interval over every window it overlaps.
        let lanes = fact.lane_count() as u64;
        let hops = fact.hops as u64;
        let last = self.bin_index(fact.end - 1);
        for idx in self.bin_index(fact.start)..=last {
            let w_start = idx as u64 * self.window;
            let w_end = w_start + self.window;
            let overlap = fact.end.min(w_end) - fact.start.max(w_start);
            let b = self.ensure_bin(idx);
            b.lane_cycles += overlap * lanes;
            b.seg_cycles += overlap * lanes * hops;
        }
    }

    #[inline]
    fn dropped(&mut self, fact: DropFact) {
        let b = self.ensure_bin(self.bin_index(fact.end));
        b.failed += 1;
        b.retransmitted_bits += fact.bits;
        // The failed attempt drove its lanes for the full span: spread
        // the busy interval exactly as a completion would.
        if fact.end > fact.start {
            let lanes = fact.lane_count() as u64;
            let hops = fact.hops as u64;
            let last = self.bin_index(fact.end - 1);
            for idx in self.bin_index(fact.start)..=last {
                let w_start = idx as u64 * self.window;
                let w_end = w_start + self.window;
                let overlap = fact.end.min(w_end) - fact.start.max(w_start);
                let b = self.ensure_bin(idx);
                b.lane_cycles += overlap * lanes;
                b.seg_cycles += overlap * lanes * hops;
            }
        }
    }

    #[inline]
    fn lost(&mut self, record: &MsgRecord, _volume_bits: f64, _attempts: u32) {
        self.ensure_bin(self.bin_index(record.completed)).lost += 1;
    }

    #[inline]
    fn retired(&mut self, record: &MsgRecord, volume_bits: f64, _hops: usize) {
        let idx = self.bin_index(record.completed);
        let nodes = self.nodes;
        let b = self.ensure_bin(idx);
        b.retired += 1;
        b.retired_bits += volume_bits;
        self.src_window_bits[idx * nodes + record.src.0] += volume_bits;
        self.src_hists[record.src.0].record(record.latency());
        self.src_retired[record.src.0] += 1;
        self.src_retired_bits[record.src.0] += volume_bits;
        let flow = record.src.0 * nodes + record.dst.0;
        self.flow_window_bits[idx * nodes * nodes + flow] += volume_bits;
        self.flow_bits[flow] += volume_bits;
        self.flow_messages[flow] += 1;
    }

    #[inline]
    fn finished(&mut self, horizon: u64, last_injection: u64) {
        self.horizon = horizon;
        self.last_injection = last_injection;
        // Materialise the trailing idle windows up to the horizon so the
        // series always covers the whole run.
        if horizon > 0 {
            let last = self.bin_index(horizon - 1);
            self.ensure_bin(last);
        }
    }
}

/// One open window of a [`StreamingTimeSeriesProbe`]: the fold bin, the
/// per-source retired-bit row (fairness), and the number of
/// transmissions started in the window that have not yet completed or
/// dropped (they may still write lane cycles back into it).
#[derive(Debug)]
struct BinSlot {
    bin: WindowBin,
    src_bits: Vec<f64>,
    /// Per-flow (`src × nodes + dst`) retired bits (flow fairness).
    flow_bits: Vec<f64>,
    open_starts: u32,
}

/// The emit-on-window-close variant of [`TimeSeriesProbe`]: every
/// [`WindowStats`] is pushed through a callback as soon as the run has
/// moved past the window *and* no transmission that started in it is
/// still in flight (an open span writes its lane cycles back at
/// completion). Memory is `O(open windows × nodes)` regardless of the
/// horizon, so day-long traces fold in constant space.
///
/// The emitted stats are bin-for-bin identical to the batch probe's
/// [`TimeSeriesProbe::report`] windows (proptested), minus the
/// per-source/per-flow aggregate vectors, which a constant-space fold
/// cannot retain per window.
pub struct StreamingTimeSeriesProbe<F: FnMut(&WindowStats)> {
    window: u64,
    nodes: usize,
    wavelengths: usize,
    emit: F,
    /// Open bins; the front is absolute bin index `emitted`.
    slots: VecDeque<BinSlot>,
    /// Recycled slots (their buffers keep capacity).
    free: Vec<BinSlot>,
    /// Windows already emitted (= absolute index of the front slot).
    emitted: u64,
    /// Running cumulative counts over emitted *and* open bins are not
    /// enough for the end-of-window gauges — these cover emitted bins
    /// only, and each emission folds its own bin in before deriving
    /// the gauges.
    cum_offered: u64,
    cum_admitted: u64,
    cum_started: u64,
    cum_completed: u64,
    cum_failed: u64,
    horizon: u64,
    last_injection: u64,
}

impl<F: FnMut(&WindowStats)> core::fmt::Debug for StreamingTimeSeriesProbe<F> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("StreamingTimeSeriesProbe")
            .field("window", &self.window)
            .field("emitted", &self.emitted)
            .field("open", &self.slots.len())
            .finish()
    }
}

impl<F: FnMut(&WindowStats)> StreamingTimeSeriesProbe<F> {
    /// A streaming probe with `window`-cycle bins; `emit` receives each
    /// closed window in order.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    #[must_use]
    pub fn new(window: u64, nodes: usize, wavelengths: usize, emit: F) -> Self {
        assert!(window > 0, "the telemetry window must be at least 1 cycle");
        Self {
            window,
            nodes,
            wavelengths,
            emit,
            slots: VecDeque::new(),
            free: Vec::new(),
            emitted: 0,
            cum_offered: 0,
            cum_admitted: 0,
            cum_started: 0,
            cum_completed: 0,
            cum_failed: 0,
            horizon: 0,
            last_injection: 0,
        }
    }

    /// Windows emitted so far.
    #[must_use]
    pub fn windows_emitted(&self) -> u64 {
        self.emitted
    }

    /// Comb size the probe was built for.
    #[must_use]
    pub fn wavelengths(&self) -> usize {
        self.wavelengths
    }

    /// Open (not yet emitted) windows currently held.
    #[must_use]
    pub fn open_windows(&self) -> usize {
        self.slots.len()
    }

    #[allow(clippy::cast_possible_truncation)]
    fn bin_index(&self, cycle: u64) -> u64 {
        cycle / self.window
    }

    /// The slot of absolute bin `idx`, growing the open deque.
    fn slot_mut(&mut self, idx: u64) -> &mut BinSlot {
        debug_assert!(idx >= self.emitted, "bin already emitted");
        #[allow(clippy::cast_possible_truncation)]
        let off = (idx - self.emitted) as usize;
        while self.slots.len() <= off {
            let mut slot = self.free.pop().unwrap_or_else(|| BinSlot {
                bin: WindowBin::default(),
                src_bits: vec![0.0; self.nodes],
                flow_bits: vec![0.0; self.nodes * self.nodes],
                open_starts: 0,
            });
            slot.bin = WindowBin::default();
            slot.src_bits.fill(0.0);
            slot.src_bits.resize(self.nodes, 0.0);
            slot.flow_bits.fill(0.0);
            slot.flow_bits.resize(self.nodes * self.nodes, 0.0);
            slot.open_starts = 0;
            self.slots.push_back(slot);
        }
        &mut self.slots[off]
    }

    /// Emits every leading window the run has fully moved past
    /// (`now ≥` its end) with no open transmission left inside it.
    fn drain_closed(&mut self, now: u64) {
        while let Some(front) = self.slots.front() {
            let end = (self.emitted + 1) * self.window;
            if now < end || front.open_starts > 0 {
                break;
            }
            self.emit_front();
        }
    }

    /// Folds and emits the front slot unconditionally.
    #[allow(clippy::cast_precision_loss)]
    fn emit_front(&mut self) {
        let slot = self.slots.pop_front().expect("caller checked front");
        let bin = &slot.bin;
        self.cum_offered += bin.offered;
        self.cum_admitted += bin.admitted;
        self.cum_started += bin.started;
        self.cum_completed += bin.completed;
        self.cum_failed += bin.failed;
        let sum: f64 = slot.src_bits.iter().sum();
        let sq: f64 = slot.src_bits.iter().map(|x| x * x).sum();
        let fairness = if sum > 0.0 {
            sum * sum / (self.nodes as f64 * sq)
        } else {
            1.0
        };
        let flow_fairness = jain_over_active(&slot.flow_bits);
        let stats = WindowStats {
            start: self.emitted * self.window,
            offered: bin.offered,
            admitted: bin.admitted,
            started: bin.started,
            completed: bin.completed,
            retired: bin.retired,
            retired_bits: bin.retired_bits,
            stall_cycles: bin.stall_cycles,
            ecn_marks: bin.ecn_marks,
            lane_cycles: bin.lane_cycles,
            seg_cycles: bin.seg_cycles,
            failed: bin.failed,
            retransmitted_bits: bin.retransmitted_bits,
            lost: bin.lost,
            gate_held: self.cum_offered.saturating_sub(self.cum_admitted),
            queue_depth: self.cum_admitted.saturating_sub(self.cum_started),
            in_flight: self
                .cum_started
                .saturating_sub(self.cum_completed + self.cum_failed),
            fairness,
            flow_fairness,
        };
        (self.emit)(&stats);
        self.emitted += 1;
        self.free.push(slot);
    }

    /// Spreads a span's lane/segment cycles over the windows it
    /// overlaps.
    fn spread(&mut self, start: u64, end: u64, lanes: u64, hops: u64) {
        if end == start {
            return;
        }
        let window = self.window;
        let last = self.bin_index(end - 1);
        for idx in self.bin_index(start).max(self.emitted)..=last {
            let w_start = idx * window;
            let w_end = w_start + window;
            let overlap = end.min(w_end) - start.max(w_start);
            let b = &mut self.slot_mut(idx).bin;
            b.lane_cycles += overlap * lanes;
            b.seg_cycles += overlap * lanes * hops;
        }
    }
}

impl<F: FnMut(&WindowStats)> SimProbe for StreamingTimeSeriesProbe<F> {
    #[inline]
    fn offered(&mut self, time: u64, _src: NodeId) {
        // Offers can arrive ahead of the event clock (the engine pulls
        // due source events in batches), so they only book — emission is
        // driven by the processed-event hooks below.
        self.slot_mut(self.bin_index(time)).bin.offered += 1;
        self.last_injection = self.last_injection.max(time);
    }

    #[inline]
    fn admitted(&mut self, now: u64, stall: u64, _src: NodeId) {
        let b = &mut self.slot_mut(self.bin_index(now)).bin;
        b.admitted += 1;
        b.stall_cycles += stall;
        self.drain_closed(now);
    }

    #[inline]
    fn started(&mut self, fact: TxFact) {
        let slot = self.slot_mut(self.bin_index(fact.start));
        slot.bin.started += 1;
        if fact.marked {
            slot.bin.ecn_marks += 1;
        }
        slot.open_starts += 1;
        self.drain_closed(fact.start);
    }

    #[inline]
    fn completed(&mut self, fact: TxFact) {
        self.slot_mut(self.bin_index(fact.end)).bin.completed += 1;
        self.spread(
            fact.start,
            fact.end,
            fact.lane_count() as u64,
            fact.hops as u64,
        );
        let start_slot = self.slot_mut(self.bin_index(fact.start));
        debug_assert!(start_slot.open_starts > 0, "completion without start");
        start_slot.open_starts -= 1;
        self.drain_closed(fact.end);
    }

    #[inline]
    fn dropped(&mut self, fact: DropFact) {
        {
            let b = &mut self.slot_mut(self.bin_index(fact.end)).bin;
            b.failed += 1;
            b.retransmitted_bits += fact.bits;
        }
        self.spread(
            fact.start,
            fact.end,
            fact.lane_count() as u64,
            fact.hops as u64,
        );
        let start_slot = self.slot_mut(self.bin_index(fact.start));
        debug_assert!(start_slot.open_starts > 0, "drop without start");
        start_slot.open_starts -= 1;
        self.drain_closed(fact.end);
    }

    #[inline]
    fn lost(&mut self, record: &MsgRecord, _volume_bits: f64, _attempts: u32) {
        self.slot_mut(self.bin_index(record.completed)).bin.lost += 1;
        self.drain_closed(record.completed);
    }

    #[inline]
    fn retired(&mut self, record: &MsgRecord, volume_bits: f64, _hops: usize) {
        let src = record.src.0;
        let flow = src * self.nodes + record.dst.0;
        let slot = self.slot_mut(self.bin_index(record.completed));
        slot.bin.retired += 1;
        slot.bin.retired_bits += volume_bits;
        slot.src_bits[src] += volume_bits;
        slot.flow_bits[flow] += volume_bits;
        self.drain_closed(record.completed);
    }

    #[inline]
    fn lane_event(&mut self, now: u64, _lane: usize, _down: bool) {
        self.drain_closed(now);
    }

    #[inline]
    fn finished(&mut self, horizon: u64, last_injection: u64) {
        self.horizon = horizon;
        self.last_injection = last_injection;
        // Materialise trailing idle windows, then flush everything —
        // nothing can write into any bin after the final horizon.
        if horizon > 0 {
            self.slot_mut(self.bin_index(horizon - 1));
        }
        while !self.slots.is_empty() {
            self.emit_front();
        }
    }
}

/// A [`SimProbe`] exporting every retirement as a Chrome trace-event
/// duration ("X") event — the JSON the Perfetto UI and
/// `chrome://tracing` load directly.
///
/// The trace timeline is in engine cycles, written as the format's
/// microsecond `ts`/`dur` fields (1 cycle = 1 µs on screen). Each
/// source is one track (`tid`), and every event carries the message's
/// destination, bits, hops, lane count, gate stall and NI queueing as
/// `args`. Under fault injection the trace is enriched: retirements
/// that needed retransmission carry an `attempts` arg, every dropped
/// attempt renders as an instant ("i") event on its source track, lane
/// outages render as duration spans on a separate `pid:1` process with
/// one track per lane, and every mid-run heal as a process-scoped
/// instant on the healed lane's track of that process. Fault-free runs
/// produce exactly the pre-fault document.
#[derive(Debug, Clone, Default)]
pub struct ChromeTraceProbe {
    events: Vec<(MsgRecord, f64, usize)>,
    drops: Vec<DropFact>,
    /// Closed lane outages as `(lane, down, up)`.
    lane_spans: Vec<(usize, u64, u64)>,
    /// Lanes currently down: `(lane, since)`.
    lane_open: Vec<(usize, u64)>,
    /// Mid-run heals, rendered as instants on the fault process.
    heals: Vec<HealFact>,
    horizon: u64,
}

impl ChromeTraceProbe {
    /// An empty exporter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An exporter with room for `messages` retirements.
    #[must_use]
    pub fn with_capacity(messages: usize) -> Self {
        Self {
            events: Vec::with_capacity(messages),
            ..Self::default()
        }
    }

    /// Number of events captured.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were captured.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders the captured run as Chrome trace-event JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(
            64 + self.events.len() * 160 + self.drops.len() * 120 + self.lane_spans.len() * 96,
        );
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        for (r, bits, hops) in &self.events {
            if !core::mem::take(&mut first) {
                out.push(',');
            }
            let attempts = if r.attempts > 1 {
                format!(",\"attempts\":{}", r.attempts)
            } else {
                String::new()
            };
            out.push_str(&format!(
                "{{\"name\":\"{src}->{dst}\",\"cat\":\"tx\",\"ph\":\"X\",\
                 \"ts\":{ts},\"dur\":{dur},\"pid\":0,\"tid\":{src},\
                 \"args\":{{\"dst\":{dst},\"bits\":{bits},\"hops\":{hops},\
                 \"lanes\":{lanes},\"stall\":{stall},\"queueing\":{queueing}{attempts}}}}}",
                src = r.src.0,
                dst = r.dst.0,
                ts = r.started,
                dur = r.completed - r.started,
                bits = bits,
                hops = hops,
                lanes = r.lanes,
                stall = r.stall(),
                queueing = r.queueing(),
            ));
        }
        for d in &self.drops {
            if !core::mem::take(&mut first) {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{name}\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"t\",\
                 \"ts\":{ts},\"pid\":0,\"tid\":{src},\
                 \"args\":{{\"dst\":{dst},\"bits\":{bits},\"attempt\":{attempt}}}}}",
                name = d.cause.name(),
                ts = d.end,
                src = d.src.0,
                dst = d.dst.0,
                bits = d.bits,
                attempt = d.attempt,
            ));
        }
        let opens = self
            .lane_open
            .iter()
            .map(|&(lane, since)| (lane, since, self.horizon.max(since)));
        for (lane, down, up) in self.lane_spans.iter().copied().chain(opens) {
            if !core::mem::take(&mut first) {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"\\u03bb{lane} down\",\"cat\":\"fault\",\"ph\":\"X\",\
                 \"ts\":{down},\"dur\":{dur},\"pid\":1,\"tid\":{lane}}}",
                dur = up - down,
            ));
        }
        for h in &self.heals {
            if !core::mem::take(&mut first) {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"heal {policy}\",\"cat\":\"heal\",\"ph\":\"i\",\"s\":\"p\",\
                 \"ts\":{ts},\"pid\":1,\"tid\":{lane},\
                 \"args\":{{\"affected\":{affected},\"moved\":{moved},\"shared\":{shared},\
                 \"restarted\":{restarted},\"stall_cycles\":{stall},\"feasible\":{feasible}}}}}",
                policy = h.policy,
                ts = h.at,
                lane = h.lane,
                affected = h.affected,
                moved = h.moved,
                shared = h.shared,
                restarted = h.restarted,
                stall = h.stall_cycles,
                feasible = h.feasible,
            ));
        }
        out.push_str("]}");
        out
    }
}

impl SimProbe for ChromeTraceProbe {
    #[inline]
    fn retired(&mut self, record: &MsgRecord, volume_bits: f64, hops: usize) {
        self.events.push((*record, volume_bits, hops));
    }

    #[inline]
    fn dropped(&mut self, fact: DropFact) {
        self.drops.push(fact);
    }

    #[inline]
    fn lane_event(&mut self, now: u64, lane: usize, down: bool) {
        if down {
            self.lane_open.push((lane, now));
        } else if let Some(pos) = self.lane_open.iter().position(|&(l, _)| l == lane) {
            let (_, since) = self.lane_open.swap_remove(pos);
            self.lane_spans.push((lane, since, now));
        }
    }

    #[inline]
    fn heal(&mut self, fact: HealFact) {
        self.heals.push(fact);
    }

    #[inline]
    fn finished(&mut self, horizon: u64, _last_injection: u64) {
        self.horizon = horizon;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultCause;

    fn fact(start: u64, end: u64, lanes: u128, hops: usize, src: usize, dst: usize) -> TxFact {
        TxFact {
            start,
            end,
            lanes,
            hops,
            src: NodeId(src),
            dst: NodeId(dst),
            marked: false,
        }
    }

    fn record(src: usize, dst: usize, injected: u64, completed: u64) -> MsgRecord {
        MsgRecord {
            src: NodeId(src),
            dst: NodeId(dst),
            injected,
            admitted: injected,
            started: injected,
            completed,
            lanes: 1,
            attempts: 1,
        }
    }

    #[test]
    fn windows_fold_hand_computed_counts() {
        let mut probe = TimeSeriesProbe::new(10, 4, 2);
        // Offered at 2, admitted at 3 after a 1-cycle stall: window 0.
        probe.offered(2, NodeId(0));
        probe.admitted(3, 1, NodeId(0));
        // A 2-lane transmission spanning windows 0..2 (cycles 5..25).
        probe.started(fact(5, 25, 0b11, 2, 0, 2));
        probe.completed(fact(5, 25, 0b11, 2, 0, 2));
        probe.retired(&record(0, 2, 2, 25), 40.0, 2);
        probe.finished(25, 2);
        let series = probe.report();
        assert_eq!(series.windows.len(), 3);
        let w0 = &series.windows[0];
        assert_eq!((w0.offered, w0.admitted, w0.started), (1, 1, 1));
        assert_eq!(w0.stall_cycles, 1);
        // Overlaps: window 0 holds cycles 5..10 → 5 × 2 lanes = 10.
        assert_eq!(w0.lane_cycles, 10);
        assert_eq!(series.windows[1].lane_cycles, 20);
        assert_eq!(series.windows[2].lane_cycles, 10);
        assert_eq!(w0.seg_cycles, 20);
        // The transmission completes and retires in window 2.
        assert_eq!(series.windows[2].completed, 1);
        assert_eq!(series.windows[2].retired, 1);
        assert!((series.windows[2].retired_bits - 40.0).abs() < 1e-12);
        // Occupancy at window ends: in flight through windows 0 and 1.
        assert_eq!(w0.in_flight, 1);
        assert_eq!(series.windows[1].in_flight, 1);
        assert_eq!(series.windows[2].in_flight, 0);
        assert_eq!(series.total_retired(), 1);
        assert!((series.total_retired_bits() - 40.0).abs() < 1e-12);
        // Only source 0 retired bits in window 2: J = 1/4 on 4 nodes.
        assert!((series.windows[2].fairness - 0.25).abs() < 1e-12);
        // Idle window 1 reports the trivially fair 1.0.
        assert!((series.windows[1].fairness - 1.0).abs() < 1e-12);
    }

    #[test]
    fn flow_fairness_runs_over_active_flows_only() {
        let mut probe = TimeSeriesProbe::new(100, 4, 1);
        // One source feeding two destinations unevenly: the per-source
        // index sees a single busy source (J = 1/4 over 4 nodes) while
        // the per-flow index sees two active flows at 300 vs 100 bits.
        probe.retired(&record(0, 1, 0, 50), 300.0, 1);
        probe.retired(&record(0, 2, 0, 60), 100.0, 1);
        probe.finished(70, 0);
        let series = probe.report();
        let w = &series.windows[0];
        assert!((w.fairness - 0.25).abs() < 1e-12);
        // J = (400)² / (2 · (300² + 100²)) = 160000 / 200000 = 0.8.
        assert!((w.flow_fairness - 0.8).abs() < 1e-12);
        // Two equal flows from different sources are perfectly fair on
        // both indices.
        let mut even = TimeSeriesProbe::new(100, 2, 1);
        even.retired(&record(0, 1, 0, 10), 64.0, 1);
        even.retired(&record(1, 0, 0, 20), 64.0, 1);
        even.finished(30, 0);
        let w = even.report().windows[0];
        assert!((w.fairness - 1.0).abs() < 1e-12);
        assert!((w.flow_fairness - 1.0).abs() < 1e-12);
        // Idle windows report the trivially fair 1.0.
        let mut idle = TimeSeriesProbe::new(10, 2, 1);
        idle.finished(9, 0);
        assert!((idle.report().windows[0].flow_fairness - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fairness_is_one_when_sources_are_equal() {
        let mut probe = TimeSeriesProbe::new(100, 4, 1);
        for src in 0..4 {
            probe.retired(&record(src, (src + 1) % 4, 0, 50), 64.0, 1);
        }
        probe.finished(50, 0);
        let series = probe.report();
        assert!((series.windows[0].fairness - 1.0).abs() < 1e-12);
        assert_eq!(series.source_retired, vec![1, 1, 1, 1]);
        assert_eq!(series.source_latency[0].count, 1);
        assert_eq!(series.source_latency[0].max, 50);
    }

    #[test]
    fn finished_materialises_trailing_idle_windows() {
        let mut probe = TimeSeriesProbe::new(10, 2, 1);
        probe.retired(&record(0, 1, 0, 5), 8.0, 1);
        probe.finished(95, 0);
        let series = probe.report();
        assert_eq!(series.windows.len(), 10);
        assert_eq!(series.windows[9].retired, 0);
        assert_eq!(series.horizon, 95);
    }

    #[test]
    fn horizon_hint_presizes_all_window_growth() {
        let mut probe = TimeSeriesProbe::new(8, 4, 2).with_horizon_hint(800);
        let bins_cap = probe.bins.capacity();
        let src_cap = probe.src_window_bits.capacity();
        let flow_cap = probe.flow_window_bits.capacity();
        for k in 0..100u64 {
            probe.offered(k * 8, NodeId(0));
            probe.admitted(k * 8, 0, NodeId(0));
            probe.retired(&record(0, 1, k * 8, k * 8 + 7), 8.0, 1);
        }
        probe.finished(799, 792);
        assert_eq!(probe.bins.capacity(), bins_cap, "bins reallocated");
        assert_eq!(
            probe.src_window_bits.capacity(),
            src_cap,
            "per-source matrix reallocated"
        );
        assert_eq!(
            probe.flow_window_bits.capacity(),
            flow_cap,
            "per-flow matrix reallocated"
        );
    }

    #[test]
    fn ecn_marks_count_marked_starts_only() {
        let mut probe = TimeSeriesProbe::new(10, 4, 1);
        let mut marked = fact(1, 5, 1, 1, 0, 1);
        marked.marked = true;
        probe.started(marked);
        probe.started(fact(2, 6, 1, 1, 1, 2));
        let series = probe.report();
        assert_eq!(series.windows[0].ecn_marks, 1);
        assert_eq!(series.windows[0].started, 2);
        assert_eq!(series.total_ecn_marks(), 1);
    }

    #[test]
    fn chrome_trace_renders_duration_events() {
        let mut probe = ChromeTraceProbe::with_capacity(2);
        let mut r = record(3, 7, 10, 25);
        r.started = 12;
        r.admitted = 11;
        probe.retired(&r, 128.0, 4);
        assert_eq!(probe.len(), 1);
        let json = probe.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"3->7\""));
        assert!(json.contains("\"ts\":12"));
        assert!(json.contains("\"dur\":13"));
        assert!(json.contains("\"tid\":3"));
        assert!(json.contains("\"stall\":1"));
        assert!(json.contains("\"queueing\":1"));
        // An empty capture still renders a valid document.
        assert_eq!(
            ChromeTraceProbe::new().to_json(),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}"
        );
    }

    #[test]
    #[should_panic(expected = "window must be at least 1")]
    fn zero_window_panics() {
        let _ = TimeSeriesProbe::new(0, 4, 1);
    }

    /// Replays the same fact stream into the batch and streaming probes
    /// and checks every emitted window field-for-field.
    fn assert_streaming_matches_batch(feed: impl Fn(&mut dyn SimProbe)) {
        let mut batch = TimeSeriesProbe::new(10, 4, 2);
        feed(&mut batch);
        let series = batch.report();
        let mut emitted: Vec<WindowStats> = Vec::new();
        let mut streaming = StreamingTimeSeriesProbe::new(10, 4, 2, |w: &WindowStats| {
            emitted.push(*w);
        });
        feed(&mut streaming);
        drop(streaming);
        assert_eq!(emitted.len(), series.windows.len());
        for (got, want) in emitted.iter().zip(&series.windows) {
            assert_eq!(got, want, "window at {}", want.start);
        }
    }

    #[test]
    fn streaming_windows_match_batch_report() {
        assert_streaming_matches_batch(|p| {
            p.offered(2, NodeId(0));
            p.admitted(3, 1, NodeId(0));
            p.started(fact(5, 25, 0b11, 2, 0, 2));
            p.completed(fact(5, 25, 0b11, 2, 0, 2));
            p.retired(&record(0, 2, 2, 25), 40.0, 2);
            p.finished(25, 2);
        });
        // Overlapping spans, a drop, a loss, and trailing idle windows.
        assert_streaming_matches_batch(|p| {
            p.offered(0, NodeId(1));
            p.admitted(0, 0, NodeId(1));
            p.started(fact(0, 14, 0b1, 3, 1, 0));
            p.offered(4, NodeId(2));
            p.admitted(6, 2, NodeId(2));
            p.started(fact(6, 9, 0b10, 1, 2, 3));
            p.dropped(DropFact {
                start: 6,
                end: 9,
                lanes: 0b10,
                hops: 1,
                src: NodeId(2),
                dst: NodeId(3),
                bits: 16.0,
                cause: FaultCause::Corrupt,
                attempt: 1,
            });
            p.completed(fact(0, 14, 0b1, 3, 1, 0));
            p.retired(&record(1, 0, 0, 14), 14.0, 3);
            p.lost(&record(2, 3, 4, 31), 16.0, 2);
            p.finished(55, 4);
        });
    }

    #[test]
    fn streaming_emits_window_only_after_open_span_closes() {
        let mut closed = Vec::new();
        let mut probe = StreamingTimeSeriesProbe::new(10, 2, 1, |w: &WindowStats| {
            closed.push(w.start);
        });
        probe.started(fact(5, 35, 1, 1, 0, 1));
        // A retirement deep in window 3 cannot flush window 0 while the
        // span that started there is still open.
        probe.retired(&record(1, 0, 30, 34), 8.0, 1);
        assert_eq!(probe.windows_emitted(), 0);
        probe.completed(fact(5, 35, 1, 1, 0, 1));
        assert_eq!(probe.windows_emitted(), 3);
        probe.finished(35, 5);
        drop(probe);
        assert_eq!(closed, vec![0, 10, 20, 30]);
    }

    #[test]
    fn chrome_trace_renders_fault_events() {
        let mut probe = ChromeTraceProbe::new();
        let mut r = record(1, 2, 0, 9);
        r.attempts = 3;
        probe.retired(&r, 8.0, 1);
        probe.dropped(DropFact {
            start: 0,
            end: 4,
            lanes: 1,
            hops: 1,
            src: NodeId(1),
            dst: NodeId(2),
            bits: 8.0,
            cause: FaultCause::LaneDown,
            attempt: 1,
        });
        probe.lane_event(2, 0, true);
        probe.lane_event(7, 0, false);
        probe.lane_event(8, 1, true); // still down at the horizon
        probe.finished(12, 0);
        let json = probe.to_json();
        assert!(json.contains("\"attempts\":3"));
        assert!(json.contains("\"cat\":\"fault\",\"ph\":\"i\""));
        assert!(json.contains("\"name\":\"lane-down\""));
        assert!(json.contains("\\u03bb0 down"));
        assert!(json.contains("\"ts\":2,\"dur\":5,\"pid\":1,\"tid\":0"));
        // The open outage on lane 1 is closed at the horizon.
        assert!(json.contains("\"ts\":8,\"dur\":4,\"pid\":1,\"tid\":1"));
        // A fault-free capture renders the pre-fault document shape.
        let mut clean = ChromeTraceProbe::new();
        clean.retired(&record(0, 1, 0, 5), 8.0, 1);
        clean.finished(10, 0);
        assert!(!clean.to_json().contains("fault"));
        assert!(!clean.to_json().contains("attempts"));
    }
}
