//! Windowed time-series and attribution telemetry over the
//! [`SimProbe`] fact stream.
//!
//! The engine's observer API (admissions with stall and source,
//! transmission starts/completions with lanes × hops × endpoints × ECN
//! mark, retirements with the full [`MsgRecord`]) carries everything a
//! time-resolved view needs, so telemetry is pure fold state:
//!
//! * [`TimeSeriesProbe`] — fixed-window series of offered/accepted
//!   throughput, gate/queue/in-flight occupancy, stall cycles, ECN
//!   marks, lane and segment utilization, and a windowed Jain's
//!   fairness index over per-source accepted bits; plus per-source
//!   latency histograms (the 513-bin [`LatencyHistogram`]) and
//!   per-flow retired-bit totals.
//! * [`ChromeTraceProbe`] — retirements as Chrome trace-event
//!   ("Perfetto") duration events, one track per source, loadable in
//!   `ui.perfetto.dev`.
//!
//! Both compose with any other probe through the `(A, B)` pair impl:
//!
//! ```
//! use onoc_sim::{
//!     DynamicPolicy, EnergyModel, EnergyProbe, OpenLoopSimulator, TimeSeriesProbe,
//!     TrafficEvent, WavelengthMode,
//! };
//! use onoc_topology::{NodeId, RingTopology};
//! use onoc_units::{Bits, BitsPerCycle};
//!
//! let sim = OpenLoopSimulator::new(
//!     RingTopology::new(16),
//!     8,
//!     BitsPerCycle::new(1.0),
//!     WavelengthMode::Dynamic(DynamicPolicy::Single),
//! );
//! let mut energy = EnergyProbe::new(EnergyModel::paper(16, 8), 16, 8);
//! let mut telemetry = TimeSeriesProbe::new(64, 16, 8);
//! let events = (0..32u64).map(|k| TrafficEvent {
//!     time: k,
//!     src: NodeId((k % 16) as usize),
//!     dst: NodeId(((k + 3) % 16) as usize),
//!     volume: Bits::new(128.0),
//! });
//! sim.run_probed(events, &mut (&mut energy, &mut telemetry)).unwrap();
//! let series = telemetry.report();
//! assert_eq!(series.total_retired(), 32);
//! ```
//!
//! All buffers are sized per source/flow at construction and the window
//! vector grows only past its reserved capacity
//! ([`TimeSeriesProbe::with_horizon_hint`]), so a hinted probe keeps the
//! zero-alloc admit path allocation-free (the counting-allocator
//! regression test runs with one attached).

use onoc_topology::NodeId;

use crate::probe::{SimProbe, TxFact};
use crate::report::{LatencyHistogram, LatencyStats, MsgRecord};

/// One window's folded counters (internal accumulation form of
/// [`WindowStats`] — cumulative occupancies are derived at fold time).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct WindowBin {
    offered: u64,
    admitted: u64,
    started: u64,
    completed: u64,
    retired: u64,
    retired_bits: f64,
    stall_cycles: u64,
    ecn_marks: u64,
    lane_cycles: u64,
    seg_cycles: u64,
}

/// One window of a [`TimeSeries`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowStats {
    /// First cycle of the window (`index × window`).
    pub start: u64,
    /// Messages offered (injection attempts) in the window.
    pub offered: u64,
    /// Messages passing their injection gate in the window.
    pub admitted: u64,
    /// Transmissions starting in the window.
    pub started: u64,
    /// Transmissions delivering their last bit in the window.
    pub completed: u64,
    /// Messages retiring (completion cycle) in the window.
    pub retired: u64,
    /// Bits retired in the window — accepted throughput × window.
    pub retired_bits: f64,
    /// Source-stall cycles of messages admitted in the window.
    pub stall_cycles: u64,
    /// ECN congestion marks set by starts in the window.
    pub ecn_marks: u64,
    /// Lane-on cycles overlapping the window (Σ lanes × overlap).
    pub lane_cycles: u64,
    /// Segment-busy cycles overlapping the window (Σ lanes × hops ×
    /// overlap).
    pub seg_cycles: u64,
    /// Messages held at their source gate at the window's end
    /// (offered but not yet admitted — credit/ECN backpressure).
    pub gate_held: u64,
    /// Messages admitted but not yet transmitting at the window's end.
    pub queue_depth: u64,
    /// Transmissions in flight at the window's end.
    pub in_flight: u64,
    /// Jain's fairness index over per-source bits retired in the
    /// window: `(Σx)² / (n·Σx²)`, 1.0 for an idle window.
    pub fairness: f64,
}

/// The folded time-series outcome of one engine run, from
/// [`TimeSeriesProbe::report`].
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    /// Window length in cycles.
    pub window: u64,
    /// Ring size.
    pub nodes: usize,
    /// Comb size.
    pub wavelengths: usize,
    /// Cycle of the last completion.
    pub horizon: u64,
    /// Last offered cycle.
    pub last_injection: u64,
    /// The per-window series, index `i` covering cycles
    /// `[i·window, (i+1)·window)`.
    pub windows: Vec<WindowStats>,
    /// Per-source end-to-end latency statistics (nearest-rank
    /// histogram quantiles, ≤ 12.5% relative).
    pub source_latency: Vec<LatencyStats>,
    /// Messages retired per source.
    pub source_retired: Vec<u64>,
    /// Bits retired per source.
    pub source_retired_bits: Vec<f64>,
    /// Bits retired per flow (`src × nodes + dst`).
    pub flow_bits: Vec<f64>,
    /// Messages retired per flow.
    pub flow_messages: Vec<u64>,
}

impl TimeSeries {
    /// Total messages offered across every window.
    #[must_use]
    pub fn total_offered(&self) -> u64 {
        self.windows.iter().map(|w| w.offered).sum()
    }

    /// Total messages admitted across every window.
    #[must_use]
    pub fn total_admitted(&self) -> u64 {
        self.windows.iter().map(|w| w.admitted).sum()
    }

    /// Total messages retired across every window.
    #[must_use]
    pub fn total_retired(&self) -> u64 {
        self.windows.iter().map(|w| w.retired).sum()
    }

    /// Total bits retired across every window.
    #[must_use]
    pub fn total_retired_bits(&self) -> f64 {
        self.windows.iter().map(|w| w.retired_bits).sum()
    }

    /// Total source-stall cycles across every window.
    #[must_use]
    pub fn total_stall_cycles(&self) -> u64 {
        self.windows.iter().map(|w| w.stall_cycles).sum()
    }

    /// Total ECN marks across every window.
    #[must_use]
    pub fn total_ecn_marks(&self) -> u64 {
        self.windows.iter().map(|w| w.ecn_marks).sum()
    }

    /// Total segment-busy (lane × hop) cycles across every window.
    #[must_use]
    pub fn total_seg_cycles(&self) -> u64 {
        self.windows.iter().map(|w| w.seg_cycles).sum()
    }

    /// Accepted throughput of window `i` in bits/cycle.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn accepted_bits_per_cycle(&self, i: usize) -> f64 {
        self.windows[i].retired_bits / self.window as f64
    }

    /// Mean active-lane utilization of window `i`: lane-on cycles over
    /// the window's `wavelengths × window` lane-cycles.
    ///
    /// A lane carries spatially disjoint transmissions concurrently, so
    /// spatial reuse on the ring pushes this above 1.0; for a
    /// capacity-bounded view use
    /// [`segment_utilization`](Self::segment_utilization).
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn lane_utilization(&self, i: usize) -> f64 {
        self.windows[i].lane_cycles as f64 / (self.window * self.wavelengths as u64) as f64
    }

    /// Mean directed-segment utilization of window `i`: segment-busy
    /// cycles over the window's `2·nodes × wavelengths × window`
    /// segment-lane-cycles.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn segment_utilization(&self, i: usize) -> f64 {
        let capacity = self.window * 2 * self.nodes as u64 * self.wavelengths as u64;
        self.windows[i].seg_cycles as f64 / capacity as f64
    }

    /// Fraction of window `i`'s source-cycles spent gate-stalled
    /// (stall cycles over `nodes × window`).
    ///
    /// A message's full stall is booked to the window that finally
    /// admits it, so deep closed-loop backlogs push individual windows
    /// above 1.0 while the run total stays conserved.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn stall_fraction(&self, i: usize) -> f64 {
        self.windows[i].stall_cycles as f64 / (self.window * self.nodes as u64) as f64
    }
}

/// A [`SimProbe`] folding the fact stream into a [`TimeSeries`].
///
/// Per-source and per-flow buffers are sized at construction; the
/// window vector grows on demand, allocation-free up to the capacity
/// reserved with [`with_horizon_hint`](Self::with_horizon_hint).
#[derive(Debug, Clone)]
pub struct TimeSeriesProbe {
    window: u64,
    nodes: usize,
    wavelengths: usize,
    bins: Vec<WindowBin>,
    /// Flat `bins.len() × nodes` matrix of per-source retired bits.
    src_window_bits: Vec<f64>,
    src_hists: Vec<LatencyHistogram>,
    src_retired: Vec<u64>,
    src_retired_bits: Vec<f64>,
    flow_bits: Vec<f64>,
    flow_messages: Vec<u64>,
    horizon: u64,
    last_injection: u64,
}

impl TimeSeriesProbe {
    /// A probe with `window`-cycle bins for runs on a `nodes`-core ring
    /// with a `wavelengths`-channel comb.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    #[must_use]
    pub fn new(window: u64, nodes: usize, wavelengths: usize) -> Self {
        assert!(window > 0, "the telemetry window must be at least 1 cycle");
        Self {
            window,
            nodes,
            wavelengths,
            bins: Vec::new(),
            src_window_bits: Vec::new(),
            src_hists: vec![LatencyHistogram::new(); nodes],
            src_retired: vec![0; nodes],
            src_retired_bits: vec![0.0; nodes],
            flow_bits: vec![0.0; nodes * nodes],
            flow_messages: vec![0; nodes * nodes],
            horizon: 0,
            last_injection: 0,
        }
    }

    /// Reserves window capacity for a run expected to span `horizon`
    /// cycles, so folding it allocates nothing.
    #[must_use]
    pub fn with_horizon_hint(mut self, horizon: u64) -> Self {
        #[allow(clippy::cast_possible_truncation)]
        let bins = (horizon / self.window + 2) as usize;
        self.bins.reserve(bins);
        self.src_window_bits.reserve(bins * self.nodes);
        self
    }

    /// The window length in cycles.
    #[must_use]
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Clears the folded state so the probe can observe another run
    /// (buffers keep their capacity).
    pub fn reset(&mut self) {
        self.bins.clear();
        self.src_window_bits.clear();
        for h in &mut self.src_hists {
            *h = LatencyHistogram::new();
        }
        self.src_retired.fill(0);
        self.src_retired_bits.fill(0.0);
        self.flow_bits.fill(0.0);
        self.flow_messages.fill(0);
        self.horizon = 0;
        self.last_injection = 0;
    }

    #[allow(clippy::cast_possible_truncation)]
    fn bin_index(&self, cycle: u64) -> usize {
        (cycle / self.window) as usize
    }

    /// Grows the window vector (and the per-source matrix in lockstep)
    /// to cover bin `idx`.
    fn ensure_bin(&mut self, idx: usize) -> &mut WindowBin {
        while self.bins.len() <= idx {
            self.bins.push(WindowBin::default());
            self.src_window_bits
                .resize(self.bins.len() * self.nodes, 0.0);
        }
        &mut self.bins[idx]
    }

    /// Assembles the time series of the observed run.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn report(&self) -> TimeSeries {
        let (mut offered, mut admitted, mut started, mut completed) = (0u64, 0u64, 0u64, 0u64);
        let windows = self
            .bins
            .iter()
            .enumerate()
            .map(|(i, bin)| {
                offered += bin.offered;
                admitted += bin.admitted;
                started += bin.started;
                completed += bin.completed;
                let xs = &self.src_window_bits[i * self.nodes..(i + 1) * self.nodes];
                let sum: f64 = xs.iter().sum();
                let sq: f64 = xs.iter().map(|x| x * x).sum();
                let fairness = if sum > 0.0 {
                    sum * sum / (self.nodes as f64 * sq)
                } else {
                    1.0
                };
                WindowStats {
                    start: i as u64 * self.window,
                    offered: bin.offered,
                    admitted: bin.admitted,
                    started: bin.started,
                    completed: bin.completed,
                    retired: bin.retired,
                    retired_bits: bin.retired_bits,
                    stall_cycles: bin.stall_cycles,
                    ecn_marks: bin.ecn_marks,
                    lane_cycles: bin.lane_cycles,
                    seg_cycles: bin.seg_cycles,
                    // Saturating: a full engine stream keeps these
                    // ordered (offered ≥ admitted ≥ started ≥
                    // completed), but partial hand-fed streams may not.
                    gate_held: offered.saturating_sub(admitted),
                    queue_depth: admitted.saturating_sub(started),
                    in_flight: started.saturating_sub(completed),
                    fairness,
                }
            })
            .collect();
        TimeSeries {
            window: self.window,
            nodes: self.nodes,
            wavelengths: self.wavelengths,
            horizon: self.horizon,
            last_injection: self.last_injection,
            windows,
            source_latency: self.src_hists.iter().map(LatencyHistogram::stats).collect(),
            source_retired: self.src_retired.clone(),
            source_retired_bits: self.src_retired_bits.clone(),
            flow_bits: self.flow_bits.clone(),
            flow_messages: self.flow_messages.clone(),
        }
    }
}

impl SimProbe for TimeSeriesProbe {
    #[inline]
    fn admitted(&mut self, now: u64, stall: u64, _src: NodeId) {
        let offered_bin = self.bin_index(now - stall);
        self.ensure_bin(offered_bin).offered += 1;
        let bin = self.bin_index(now);
        let b = self.ensure_bin(bin);
        b.admitted += 1;
        b.stall_cycles += stall;
        self.last_injection = self.last_injection.max(now - stall);
    }

    #[inline]
    fn started(&mut self, fact: TxFact) {
        let b = self.ensure_bin(self.bin_index(fact.start));
        b.started += 1;
        if fact.marked {
            b.ecn_marks += 1;
        }
    }

    #[inline]
    fn completed(&mut self, fact: TxFact) {
        let end_bin = self.bin_index(fact.end);
        self.ensure_bin(end_bin).completed += 1;
        if fact.end == fact.start {
            return;
        }
        // Spread the busy interval over every window it overlaps.
        let lanes = fact.lane_count() as u64;
        let hops = fact.hops as u64;
        let last = self.bin_index(fact.end - 1);
        for idx in self.bin_index(fact.start)..=last {
            let w_start = idx as u64 * self.window;
            let w_end = w_start + self.window;
            let overlap = fact.end.min(w_end) - fact.start.max(w_start);
            let b = self.ensure_bin(idx);
            b.lane_cycles += overlap * lanes;
            b.seg_cycles += overlap * lanes * hops;
        }
    }

    #[inline]
    fn retired(&mut self, record: &MsgRecord, volume_bits: f64, _hops: usize) {
        let idx = self.bin_index(record.completed);
        let nodes = self.nodes;
        let b = self.ensure_bin(idx);
        b.retired += 1;
        b.retired_bits += volume_bits;
        self.src_window_bits[idx * nodes + record.src.0] += volume_bits;
        self.src_hists[record.src.0].record(record.latency());
        self.src_retired[record.src.0] += 1;
        self.src_retired_bits[record.src.0] += volume_bits;
        let flow = record.src.0 * nodes + record.dst.0;
        self.flow_bits[flow] += volume_bits;
        self.flow_messages[flow] += 1;
    }

    #[inline]
    fn finished(&mut self, horizon: u64, last_injection: u64) {
        self.horizon = horizon;
        self.last_injection = last_injection;
        // Materialise the trailing idle windows up to the horizon so the
        // series always covers the whole run.
        if horizon > 0 {
            let last = self.bin_index(horizon - 1);
            self.ensure_bin(last);
        }
    }
}

/// A [`SimProbe`] exporting every retirement as a Chrome trace-event
/// duration ("X") event — the JSON the Perfetto UI and
/// `chrome://tracing` load directly.
///
/// The trace timeline is in engine cycles, written as the format's
/// microsecond `ts`/`dur` fields (1 cycle = 1 µs on screen). Each
/// source is one track (`tid`), and every event carries the message's
/// destination, bits, hops, lane count, gate stall and NI queueing as
/// `args`.
#[derive(Debug, Clone, Default)]
pub struct ChromeTraceProbe {
    events: Vec<(MsgRecord, f64, usize)>,
}

impl ChromeTraceProbe {
    /// An empty exporter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An exporter with room for `messages` retirements.
    #[must_use]
    pub fn with_capacity(messages: usize) -> Self {
        Self {
            events: Vec::with_capacity(messages),
        }
    }

    /// Number of events captured.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were captured.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders the captured run as Chrome trace-event JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 160);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, (r, bits, hops)) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{src}->{dst}\",\"cat\":\"tx\",\"ph\":\"X\",\
                 \"ts\":{ts},\"dur\":{dur},\"pid\":0,\"tid\":{src},\
                 \"args\":{{\"dst\":{dst},\"bits\":{bits},\"hops\":{hops},\
                 \"lanes\":{lanes},\"stall\":{stall},\"queueing\":{queueing}}}}}",
                src = r.src.0,
                dst = r.dst.0,
                ts = r.started,
                dur = r.completed - r.started,
                bits = bits,
                hops = hops,
                lanes = r.lanes,
                stall = r.stall(),
                queueing = r.queueing(),
            ));
        }
        out.push_str("]}");
        out
    }
}

impl SimProbe for ChromeTraceProbe {
    #[inline]
    fn retired(&mut self, record: &MsgRecord, volume_bits: f64, hops: usize) {
        self.events.push((*record, volume_bits, hops));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fact(start: u64, end: u64, lanes: u128, hops: usize, src: usize, dst: usize) -> TxFact {
        TxFact {
            start,
            end,
            lanes,
            hops,
            src: NodeId(src),
            dst: NodeId(dst),
            marked: false,
        }
    }

    fn record(src: usize, dst: usize, injected: u64, completed: u64) -> MsgRecord {
        MsgRecord {
            src: NodeId(src),
            dst: NodeId(dst),
            injected,
            admitted: injected,
            started: injected,
            completed,
            lanes: 1,
        }
    }

    #[test]
    fn windows_fold_hand_computed_counts() {
        let mut probe = TimeSeriesProbe::new(10, 4, 2);
        // Admitted at 3 after a 1-cycle stall: offered in window 0.
        probe.admitted(3, 1, NodeId(0));
        // A 2-lane transmission spanning windows 0..2 (cycles 5..25).
        probe.started(fact(5, 25, 0b11, 2, 0, 2));
        probe.completed(fact(5, 25, 0b11, 2, 0, 2));
        probe.retired(&record(0, 2, 2, 25), 40.0, 2);
        probe.finished(25, 2);
        let series = probe.report();
        assert_eq!(series.windows.len(), 3);
        let w0 = &series.windows[0];
        assert_eq!((w0.offered, w0.admitted, w0.started), (1, 1, 1));
        assert_eq!(w0.stall_cycles, 1);
        // Overlaps: window 0 holds cycles 5..10 → 5 × 2 lanes = 10.
        assert_eq!(w0.lane_cycles, 10);
        assert_eq!(series.windows[1].lane_cycles, 20);
        assert_eq!(series.windows[2].lane_cycles, 10);
        assert_eq!(w0.seg_cycles, 20);
        // The transmission completes and retires in window 2.
        assert_eq!(series.windows[2].completed, 1);
        assert_eq!(series.windows[2].retired, 1);
        assert!((series.windows[2].retired_bits - 40.0).abs() < 1e-12);
        // Occupancy at window ends: in flight through windows 0 and 1.
        assert_eq!(w0.in_flight, 1);
        assert_eq!(series.windows[1].in_flight, 1);
        assert_eq!(series.windows[2].in_flight, 0);
        assert_eq!(series.total_retired(), 1);
        assert!((series.total_retired_bits() - 40.0).abs() < 1e-12);
        // Only source 0 retired bits in window 2: J = 1/4 on 4 nodes.
        assert!((series.windows[2].fairness - 0.25).abs() < 1e-12);
        // Idle window 1 reports the trivially fair 1.0.
        assert!((series.windows[1].fairness - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fairness_is_one_when_sources_are_equal() {
        let mut probe = TimeSeriesProbe::new(100, 4, 1);
        for src in 0..4 {
            probe.retired(&record(src, (src + 1) % 4, 0, 50), 64.0, 1);
        }
        probe.finished(50, 0);
        let series = probe.report();
        assert!((series.windows[0].fairness - 1.0).abs() < 1e-12);
        assert_eq!(series.source_retired, vec![1, 1, 1, 1]);
        assert_eq!(series.source_latency[0].count, 1);
        assert_eq!(series.source_latency[0].max, 50);
    }

    #[test]
    fn finished_materialises_trailing_idle_windows() {
        let mut probe = TimeSeriesProbe::new(10, 2, 1);
        probe.retired(&record(0, 1, 0, 5), 8.0, 1);
        probe.finished(95, 0);
        let series = probe.report();
        assert_eq!(series.windows.len(), 10);
        assert_eq!(series.windows[9].retired, 0);
        assert_eq!(series.horizon, 95);
    }

    #[test]
    fn horizon_hint_presizes_all_window_growth() {
        let mut probe = TimeSeriesProbe::new(8, 4, 2).with_horizon_hint(800);
        let bins_cap = probe.bins.capacity();
        let src_cap = probe.src_window_bits.capacity();
        for k in 0..100u64 {
            probe.admitted(k * 8, 0, NodeId(0));
            probe.retired(&record(0, 1, k * 8, k * 8 + 7), 8.0, 1);
        }
        probe.finished(799, 792);
        assert_eq!(probe.bins.capacity(), bins_cap, "bins reallocated");
        assert_eq!(
            probe.src_window_bits.capacity(),
            src_cap,
            "per-source matrix reallocated"
        );
    }

    #[test]
    fn ecn_marks_count_marked_starts_only() {
        let mut probe = TimeSeriesProbe::new(10, 4, 1);
        let mut marked = fact(1, 5, 1, 1, 0, 1);
        marked.marked = true;
        probe.started(marked);
        probe.started(fact(2, 6, 1, 1, 1, 2));
        let series = probe.report();
        assert_eq!(series.windows[0].ecn_marks, 1);
        assert_eq!(series.windows[0].started, 2);
        assert_eq!(series.total_ecn_marks(), 1);
    }

    #[test]
    fn chrome_trace_renders_duration_events() {
        let mut probe = ChromeTraceProbe::with_capacity(2);
        let mut r = record(3, 7, 10, 25);
        r.started = 12;
        r.admitted = 11;
        probe.retired(&r, 128.0, 4);
        assert_eq!(probe.len(), 1);
        let json = probe.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"3->7\""));
        assert!(json.contains("\"ts\":12"));
        assert!(json.contains("\"dur\":13"));
        assert!(json.contains("\"tid\":3"));
        assert!(json.contains("\"stall\":1"));
        assert!(json.contains("\"queueing\":1"));
        // An empty capture still renders a valid document.
        assert_eq!(
            ChromeTraceProbe::new().to_json(),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}"
        );
    }

    #[test]
    #[should_panic(expected = "window must be at least 1")]
    fn zero_window_panics() {
        let _ = TimeSeriesProbe::new(0, 4, 1);
    }
}
