//! A cycle-bucketed calendar queue for the simulation hot path.
//!
//! The event loops of this crate pop events in `(time, event)` order where
//! `event` is a small `Ord` enum whose variant order encodes the
//! same-cycle tie-break. A `BinaryHeap<Reverse<(u64, E)>>` gives that
//! ordering at `O(log n)` per operation with poor cache behaviour; the
//! simulators' timestamps, however, advance monotonically and cluster
//! tightly (transmission durations are a few hundred to a few thousand
//! cycles), which is exactly the regime calendar queues (Brown, CACM '88)
//! serve in `O(1)`.
//!
//! [`EventQueue`] keeps a ring of [`EventQueue::WINDOW`] per-cycle
//! buckets; events scheduled further ahead than the window land in a
//! sorted overflow heap and migrate into the ring as the cursor
//! approaches them. Because all live events sit in `[cursor,
//! cursor + WINDOW)` — the pop cursor trails the global minimum — each
//! bucket holds events of exactly one timestamp, so a pop is "scan the
//! current bucket for the minimum event", which is tiny (events per cycle
//! are few) and allocation-free once the buckets are warm.
//!
//! The ordering contract is verified against the `BinaryHeap` reference
//! implementation by a property test below.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A monotone priority queue over `(u64, E)` with `O(1)` push/pop for
/// near-future events.
///
/// Invariant required from the caller (and upheld by event-driven
/// simulation): an event may never be pushed with a timestamp smaller
/// than the last popped timestamp. `push` panics (debug) on violations.
#[derive(Debug, Clone)]
pub(crate) struct EventQueue<E> {
    /// `WINDOW` per-cycle buckets, indexed by `time & (WINDOW - 1)`.
    buckets: Vec<Vec<E>>,
    /// Timestamp of the last pop (the floor of every live event).
    cursor: u64,
    /// Lower bound on the earliest non-empty bucket's timestamp.
    next_hint: u64,
    /// Events currently in the bucket ring.
    window_len: usize,
    /// Far-future events (`time >= cursor + WINDOW`), sorted.
    overflow: BinaryHeap<Reverse<(u64, E)>>,
}

impl<E: Copy + Ord> EventQueue<E> {
    /// Bucket-ring span in cycles (power of two). Chosen to cover typical
    /// transmission durations so the overflow heap stays cold.
    pub(crate) const WINDOW: u64 = 4096;

    pub(crate) fn new() -> Self {
        Self {
            buckets: (0..Self::WINDOW).map(|_| Vec::new()).collect(),
            cursor: 0,
            next_hint: 0,
            window_len: 0,
            overflow: BinaryHeap::new(),
        }
    }

    /// Empties the queue, keeping every bucket's capacity for reuse.
    pub(crate) fn clear(&mut self) {
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.cursor = 0;
        self.next_hint = 0;
        self.window_len = 0;
        self.overflow.clear();
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.window_len == 0 && self.overflow.is_empty()
    }

    fn bucket_insert(&mut self, time: u64, event: E) {
        debug_assert!(time >= self.cursor && time < self.cursor + Self::WINDOW);
        self.buckets[(time & (Self::WINDOW - 1)) as usize].push(event);
        self.window_len += 1;
        if time < self.next_hint {
            self.next_hint = time;
        }
    }

    /// Schedules `event` at `time` (which must not precede the last pop).
    pub(crate) fn push(&mut self, time: u64, event: E) {
        debug_assert!(
            time >= self.cursor,
            "event scheduled at {time} before the queue cursor {}",
            self.cursor
        );
        if time < self.cursor + Self::WINDOW {
            self.bucket_insert(time, event);
        } else {
            self.overflow.push(Reverse((time, event)));
        }
    }

    /// Moves every overflow event that entered the window into its bucket.
    fn migrate_overflow(&mut self) {
        while let Some(&Reverse((t, _))) = self.overflow.peek() {
            if t >= self.cursor + Self::WINDOW {
                break;
            }
            let Reverse((t, e)) = self.overflow.pop().expect("peeked");
            self.bucket_insert(t, e);
        }
    }

    /// Timestamp of the earliest event, or `None` when empty. Never moves
    /// the cursor — peeking must not forbid pushes at times the caller is
    /// still allowed to schedule (e.g. source events due before a
    /// far-future wake-up).
    pub(crate) fn peek_time(&mut self) -> Option<u64> {
        self.migrate_overflow();
        if self.window_len > 0 {
            let mut t = self.next_hint.max(self.cursor);
            while self.buckets[(t & (Self::WINDOW - 1)) as usize].is_empty() {
                t += 1;
                debug_assert!(t < self.cursor + Self::WINDOW, "window_len > 0 lied");
            }
            self.next_hint = t;
            Some(t)
        } else {
            self.overflow.peek().map(|&Reverse((t, _))| t)
        }
    }

    /// Removes and returns the earliest `(time, event)` pair; same-time
    /// events pop in `E`'s `Ord` order.
    pub(crate) fn pop(&mut self) -> Option<(u64, E)> {
        let t = self.peek_time()?;
        if self.window_len == 0 {
            // Every live event is far-future: jump the cursor to the
            // earliest one and pull its cohort into the ring. Safe here
            // (unlike in peek): the caller processes this pop at `t`, so
            // nothing may be scheduled before it anymore.
            self.cursor = t;
            self.next_hint = t;
            self.migrate_overflow();
        }
        let bucket = &mut self.buckets[(t & (Self::WINDOW - 1)) as usize];
        let mut best = 0;
        for i in 1..bucket.len() {
            if bucket[i] < bucket[best] {
                best = i;
            }
        }
        let event = bucket.swap_remove(best);
        self.window_len -= 1;
        self.cursor = t;
        self.next_hint = t;
        Some((t, event))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// A stand-in for the engines' event enums: variant-ordered, then
    /// payload-ordered.
    type Ev = (u8, u32);

    #[test]
    fn empty_queue_behaves() {
        let mut q: EventQueue<Ev> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_cycle_events_pop_in_ord_order() {
        let mut q: EventQueue<Ev> = EventQueue::new();
        q.push(10, (3, 0));
        q.push(10, (0, 7));
        q.push(10, (0, 2));
        q.push(10, (1, 1));
        assert_eq!(q.pop(), Some((10, (0, 2))));
        assert_eq!(q.pop(), Some((10, (0, 7))));
        assert_eq!(q.pop(), Some((10, (1, 1))));
        assert_eq!(q.pop(), Some((10, (3, 0))));
        assert!(q.is_empty());
    }

    #[test]
    fn far_future_events_round_trip_through_overflow() {
        let mut q: EventQueue<Ev> = EventQueue::new();
        let far = EventQueue::<Ev>::WINDOW * 3 + 17;
        q.push(far, (1, 1));
        q.push(5, (0, 0));
        assert_eq!(q.pop(), Some((5, (0, 0))));
        // Mid-flight push that becomes eligible before the overflow event.
        q.push(far - 1, (2, 2));
        assert_eq!(q.pop(), Some((far - 1, (2, 2))));
        assert_eq!(q.pop(), Some((far, (1, 1))));
        assert!(q.is_empty());
    }

    #[test]
    fn overflow_event_is_not_shadowed_by_later_window_push() {
        // Regression shape: an event lands in overflow, the cursor then
        // advances close enough that a *later* event fits the window. The
        // earlier overflow event must still pop first.
        let w = EventQueue::<Ev>::WINDOW;
        let mut q: EventQueue<Ev> = EventQueue::new();
        q.push(w + 10, (0, 0)); // overflow relative to cursor 0
        q.push(20, (0, 1));
        assert_eq!(q.pop(), Some((20, (0, 1)))); // cursor now 20
        q.push(w + 11, (0, 2)); // fits the window now
        assert_eq!(q.pop(), Some((w + 10, (0, 0))));
        assert_eq!(q.pop(), Some((w + 11, (0, 2))));
    }

    #[test]
    fn clear_resets_for_reuse() {
        let mut q: EventQueue<Ev> = EventQueue::new();
        q.push(3, (0, 0));
        q.push(EventQueue::<Ev>::WINDOW * 2, (0, 1));
        q.clear();
        assert!(q.is_empty());
        q.push(1, (1, 1));
        assert_eq!(q.pop(), Some((1, (1, 1))));
    }

    proptest! {
        /// The calendar queue dequeues exactly like the `BinaryHeap`
        /// reference under any monotone-push workload, including pushes
        /// landing in the overflow heap and interleaved pops.
        ///
        /// Each raw op packs `(time delta, variant, payload, pop?)` into
        /// one integer (the vendored proptest has no tuple strategies).
        #[test]
        fn matches_binary_heap_reference(
            raw_ops in proptest::collection::vec(0u64..=u64::MAX, 1..200),
        ) {
            let mut calendar: EventQueue<Ev> = EventQueue::new();
            let mut reference: BinaryHeap<Reverse<(u64, Ev)>> = BinaryHeap::new();
            let mut clock = 0u64;
            for raw in raw_ops {
                // Deltas up to 8191 exercise both the 4096-cycle window
                // and the overflow heap.
                let delta = raw & 0x1FFF;
                let variant = ((raw >> 13) & 3) as u8;
                let payload = ((raw >> 15) & 63) as u32;
                let pop_now = raw >> 63 == 1;
                // Monotone schedule: never before the last popped time.
                let time = clock + delta;
                calendar.push(time, (variant, payload));
                reference.push(Reverse((time, (variant, payload))));
                if pop_now {
                    let got = calendar.pop();
                    let want = reference.pop().map(|Reverse((t, e))| (t, e));
                    prop_assert_eq!(got, want);
                    clock = got.expect("both queues held an event").0;
                }
            }
            loop {
                let got = calendar.pop();
                let want = reference.pop().map(|Reverse((t, e))| (t, e));
                prop_assert_eq!(got, want);
                if got.is_none() {
                    break;
                }
            }
        }
    }
}
