//! WDM wavelength grids.

use onoc_units::Nanometers;

use crate::MicroRing;

/// Index of a WDM channel within a [`WavelengthGrid`].
///
/// Channel indices order the grid from the shortest to the longest
/// wavelength. The index also fixes the position of the channel's receiver
/// micro-ring inside each optical network interface (ONI) stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WavelengthId(pub usize);

impl WavelengthId {
    /// Returns the raw index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl core::fmt::Display for WavelengthId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "λ{}", self.0 + 1) // the paper numbers wavelengths from λ1
    }
}

/// An equally spaced WDM comb covering one free spectral range.
///
/// The paper assumes "equal Channel Spacing (CS) between two consecutive
/// wavelengths covering a whole Free Spectral Range (FSR)" (§III-B), so for
/// `count` channels the spacing is `FSR / count` and the comb is centred on
/// the grid's centre wavelength.
///
/// # Examples
///
/// ```
/// use onoc_photonics::WavelengthGrid;
/// use onoc_units::Nanometers;
///
/// let grid = WavelengthGrid::paper_grid(8);
/// assert_eq!(grid.count(), 8);
/// assert!((grid.spacing().value() - 1.6).abs() < 1e-12);
///
/// // Consecutive channels are one spacing apart.
/// let d = grid
///     .wavelength(grid.channel(3).unwrap())
///     .distance(grid.wavelength(grid.channel(4).unwrap()));
/// assert!((d.value() - 1.6).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WavelengthGrid {
    center: Nanometers,
    fsr: Nanometers,
    quality_factor: f64,
    count: usize,
}

impl WavelengthGrid {
    /// Centre wavelength used throughout the paper's experiments (C band).
    pub const PAPER_CENTER: Nanometers = Nanometers::new(1550.0);
    /// Free spectral range used in the paper (§IV): 12.8 nm.
    pub const PAPER_FSR: Nanometers = Nanometers::new(12.8);
    /// Micro-ring quality factor used in the paper (§IV): 9600.
    pub const PAPER_Q: f64 = 9600.0;

    /// Creates a grid of `count` channels spread over `fsr` around `center`,
    /// with micro-ring resonators of quality factor `quality_factor`.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero, `fsr` or `center` are not strictly
    /// positive, or `quality_factor` is not strictly positive. These are
    /// programmer errors: no physical grid exists with such parameters.
    #[must_use]
    pub fn new(center: Nanometers, fsr: Nanometers, quality_factor: f64, count: usize) -> Self {
        assert!(count > 0, "a wavelength grid needs at least one channel");
        assert!(
            center.value() > 0.0 && fsr.value() > 0.0,
            "centre wavelength and FSR must be strictly positive"
        );
        assert!(
            quality_factor > 0.0,
            "quality factor must be strictly positive"
        );
        Self {
            center,
            fsr,
            quality_factor,
            count,
        }
    }

    /// The grid used in the paper's result section: 1550 nm centre,
    /// 12.8 nm FSR, Q = 9600, `count` channels.
    #[must_use]
    pub fn paper_grid(count: usize) -> Self {
        Self::new(Self::PAPER_CENTER, Self::PAPER_FSR, Self::PAPER_Q, count)
    }

    /// Number of WDM channels.
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Channel spacing `FSR / count`.
    #[must_use]
    pub fn spacing(&self) -> Nanometers {
        self.fsr / self.count as f64
    }

    /// The grid's centre wavelength.
    #[must_use]
    pub fn center(&self) -> Nanometers {
        self.center
    }

    /// The free spectral range covered by the comb.
    #[must_use]
    pub fn fsr(&self) -> Nanometers {
        self.fsr
    }

    /// Micro-ring quality factor of the receivers on this grid.
    #[must_use]
    pub fn quality_factor(&self) -> f64 {
        self.quality_factor
    }

    /// Returns the channel with index `index`, or `None` if out of range.
    #[must_use]
    pub fn channel(&self, index: usize) -> Option<WavelengthId> {
        (index < self.count).then_some(WavelengthId(index))
    }

    /// The physical wavelength of a channel.
    ///
    /// Channels are placed at the centres of `count` equal slots covering the
    /// FSR: `λ_i = center − FSR/2 + (i + 1/2)·CS`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this grid (index out of range).
    #[must_use]
    pub fn wavelength(&self, id: WavelengthId) -> Nanometers {
        assert!(
            id.0 < self.count,
            "channel {id} out of range for a {}-channel grid",
            self.count
        );
        let cs = self.spacing();
        self.center - self.fsr * 0.5 + cs * (id.0 as f64 + 0.5)
    }

    /// Spectral distance between two channels.
    #[must_use]
    pub fn channel_distance(&self, a: WavelengthId, b: WavelengthId) -> Nanometers {
        self.wavelength(a).distance(self.wavelength(b))
    }

    /// The receiver micro-ring resonant on channel `id`.
    #[must_use]
    pub fn micro_ring(&self, id: WavelengthId) -> MicroRing {
        MicroRing::new(self.wavelength(id), self.quality_factor)
    }

    /// Iterates over all channels, shortest wavelength first.
    pub fn channels(&self) -> impl ExactSizeIterator<Item = WavelengthId> + use<> {
        (0..self.count).map(WavelengthId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_grid_spacing() {
        assert!((WavelengthGrid::paper_grid(4).spacing().value() - 3.2).abs() < 1e-12);
        assert!((WavelengthGrid::paper_grid(8).spacing().value() - 1.6).abs() < 1e-12);
        assert!((WavelengthGrid::paper_grid(12).spacing().value() - 12.8 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn comb_is_centred() {
        let grid = WavelengthGrid::paper_grid(8);
        let first = grid.wavelength(WavelengthId(0));
        let last = grid.wavelength(WavelengthId(7));
        let mid = (first + last) * 0.5;
        assert!((mid.value() - 1550.0).abs() < 1e-9);
    }

    #[test]
    fn comb_fits_within_fsr() {
        for n in [1, 2, 4, 8, 12, 64] {
            let grid = WavelengthGrid::paper_grid(n);
            let lo = grid.wavelength(WavelengthId(0));
            let hi = grid.wavelength(WavelengthId(n - 1));
            assert!(lo.value() >= 1550.0 - 6.4);
            assert!(hi.value() <= 1550.0 + 6.4);
        }
    }

    #[test]
    fn channel_lookup_bounds() {
        let grid = WavelengthGrid::paper_grid(4);
        assert_eq!(grid.channel(3), Some(WavelengthId(3)));
        assert_eq!(grid.channel(4), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn foreign_channel_panics() {
        let grid = WavelengthGrid::paper_grid(4);
        let _ = grid.wavelength(WavelengthId(4));
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn empty_grid_panics() {
        let _ = WavelengthGrid::paper_grid(0);
    }

    #[test]
    fn display_is_one_based() {
        assert_eq!(WavelengthId(0).to_string(), "λ1");
    }

    proptest! {
        #[test]
        fn consecutive_channels_are_one_spacing_apart(n in 2usize..64, i in 0usize..62) {
            prop_assume!(i + 1 < n);
            let grid = WavelengthGrid::paper_grid(n);
            let d = grid.channel_distance(WavelengthId(i), WavelengthId(i + 1));
            prop_assert!((d.value() - grid.spacing().value()).abs() < 1e-9);
        }

        #[test]
        fn channel_distance_proportional_to_index_gap(
            n in 2usize..64,
            i in 0usize..63,
            j in 0usize..63,
        ) {
            prop_assume!(i < n && j < n);
            let grid = WavelengthGrid::paper_grid(n);
            let d = grid.channel_distance(WavelengthId(i), WavelengthId(j));
            let expected = grid.spacing().value() * (i as f64 - j as f64).abs();
            prop_assert!((d.value() - expected).abs() < 1e-9);
        }
    }
}
