//! Bit-error-rate model for OOK direct detection (Eq. 9).

/// Which SNR scale is plugged into the BER formula of Eq. 9.
///
/// The paper writes `BER = ½·e^(−SNR/2)·(1 + SNR/4)` without stating the SNR
/// scale. With the paper's own parameters (−10 dBm laser, −30 dBm zero level,
/// Q = 9600, FSR = 12.8 nm) a *linear* SNR puts every reported design point
/// below `log10(BER) = −20`, while the published Figs. 6(b)/7 span
/// `log10(BER) ∈ [−3.7, −3.0]` — exactly what the formula yields when the
/// **dB value** of the SNR is substituted. The reproduction therefore
/// defaults to [`BerConvention::PaperDb`] and keeps [`BerConvention::Linear`]
/// as an ablation (see DESIGN.md, substitution S5, and the `ablation` bench
/// binary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BerConvention {
    /// Substitute the SNR expressed in dB into Eq. 9 (matches the paper's
    /// reported numbers).
    #[default]
    PaperDb,
    /// Substitute the linear SNR into Eq. 9 (the textbook reading).
    Linear,
}

impl core::fmt::Display for BerConvention {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BerConvention::PaperDb => write!(f, "paper-dB"),
            BerConvention::Linear => write!(f, "linear"),
        }
    }
}

/// Bit error rate of OOK direct detection (Eq. 9):
/// `BER = ½·e^(−x/2)·(1 + x/4)` with `x` selected by `convention`.
///
/// The result saturates at `0.5` for non-positive `x`: an OOK receiver
/// guessing at random is wrong half of the time, and Eq. 9 is only a valid
/// error model on `x >= 0` where it decreases monotonically from ½ to 0.
///
/// # Examples
///
/// ```
/// use onoc_photonics::{ber, BerConvention};
///
/// // 17 dB SNR → BER ≈ 5.3e-4 under the paper's convention.
/// let b = ber(10f64.powf(1.7), BerConvention::PaperDb);
/// assert!(b > 4e-4 && b < 7e-4);
///
/// // The same SNR read as linear is essentially error-free.
/// let linear = ber(10f64.powf(1.7), BerConvention::Linear);
/// assert!(linear < 1e-10);
/// ```
///
/// # Panics
///
/// Panics if `snr_linear` is not strictly positive (an SNR of zero has no dB
/// representation).
#[must_use]
pub fn ber(snr_linear: f64, convention: BerConvention) -> f64 {
    assert!(
        snr_linear > 0.0,
        "SNR must be strictly positive, got {snr_linear}"
    );
    let x = match convention {
        BerConvention::PaperDb => 10.0 * snr_linear.log10(),
        BerConvention::Linear => snr_linear,
    };
    // Eq. 9 is only meaningful for x >= 0 (it is monotone decreasing there,
    // with value 1/2 at x = 0). Below that the receiver is no better than a
    // coin flip, so saturate at 1/2.
    let x = x.max(0.0);
    0.5 * (-x / 2.0).exp() * (1.0 + x / 4.0)
}

/// `log10` of [`ber`], the quantity on the y-axis of Figs. 6(b) and 7.
///
/// # Panics
///
/// Panics under the same conditions as [`ber`].
#[must_use]
pub fn log10_ber(snr_linear: f64, convention: BerConvention) -> f64 {
    ber(snr_linear, convention).log10()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Evaluates the raw Eq. 9 with a dB argument for cross-checking.
    fn eq9(x: f64) -> f64 {
        0.5 * (-x / 2.0).exp() * (1.0 + x / 4.0)
    }

    #[test]
    fn paper_window_endpoints() {
        // The Fig. 6(b)/7 BER window [−3.7, −3.0] corresponds to SNRs of
        // roughly 19 dB and 15.5 dB under the paper-dB convention.
        let best = log10_ber(10f64.powf(1.9), BerConvention::PaperDb);
        let worst = log10_ber(10f64.powf(1.55), BerConvention::PaperDb);
        assert!((best - -3.67).abs() < 0.05, "best = {best}");
        assert!((worst - -2.99).abs() < 0.05, "worst = {worst}");
    }

    #[test]
    fn matches_raw_formula_inside_validity_range() {
        for snr_db in [5.0, 10.0, 16.0, 20.0] {
            let linear = 10f64.powf(snr_db / 10.0);
            assert!((ber(linear, BerConvention::PaperDb) - eq9(snr_db)).abs() < 1e-15);
            assert!((ber(linear, BerConvention::Linear) - eq9(linear)).abs() < 1e-15);
        }
    }

    #[test]
    fn saturates_at_one_half() {
        // Any sub-0 dB SNR is indistinguishable from guessing.
        assert_eq!(ber(1e-9, BerConvention::PaperDb), 0.5);
        assert_eq!(ber(0.5, BerConvention::PaperDb), 0.5);
        assert_eq!(ber(1.0, BerConvention::PaperDb), 0.5);
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn zero_snr_panics() {
        let _ = ber(0.0, BerConvention::Linear);
    }

    #[test]
    fn conventions_differ_materially() {
        let snr = 10f64.powf(1.6); // 16 dB
        let paper = ber(snr, BerConvention::PaperDb);
        let linear = ber(snr, BerConvention::Linear);
        assert!(paper / linear > 1e3, "paper={paper} linear={linear}");
    }

    proptest! {
        #[test]
        fn ber_is_probability(snr in 1e-6f64..1e6) {
            for conv in [BerConvention::PaperDb, BerConvention::Linear] {
                let b = ber(snr, conv);
                prop_assert!((0.0..=0.5).contains(&b));
            }
        }

        #[test]
        fn ber_monotone_decreasing_in_snr(a in 1.0f64..1e5, b in 1.0f64..1e5) {
            prop_assume!(a < b);
            for conv in [BerConvention::PaperDb, BerConvention::Linear] {
                prop_assert!(ber(b, conv) <= ber(a, conv));
            }
        }
    }
}
