//! Photodetector model.

use onoc_units::{DbMilliwatts, Decibels};

/// A receiver photodetector characterised by the optical power it needs at
/// its input.
///
/// The energy model of the reproduction (DESIGN.md, substitution S6) sizes
/// each transmit laser so that, after all path losses, the photodetector
/// still receives `target_power`. The paper motivates this indirectly:
/// "energy consumption per bit increases with the number of reserved
/// wavelengths … due to the additional ON-state MRs suffering from more
/// propagation loss".
///
/// # Examples
///
/// ```
/// use onoc_photonics::Photodetector;
/// use onoc_units::{DbMilliwatts, Decibels};
///
/// let pd = Photodetector::default();
/// // 2 dB of path loss requires a -26 dBm laser to hit a -28 dBm target.
/// let laser = pd.required_launch_power(Decibels::new(-2.0));
/// assert_eq!(laser, DbMilliwatts::new(-26.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Photodetector {
    target_power: DbMilliwatts,
}

impl Photodetector {
    /// Receiver target power used by the reproduction's calibration:
    /// −28 dBm. Germanium photodetectors reach −26…−30 dBm sensitivity at
    /// the 1 Gb/s per-wavelength rate of the paper instance (DESIGN.md S2);
    /// this value also places the energy model in the 3.5–8 fJ/bit band of
    /// Fig. 6(a).
    pub const DEFAULT_TARGET: DbMilliwatts = DbMilliwatts::new(-28.0);

    /// Creates a photodetector requiring `target_power` at its input.
    #[must_use]
    pub fn new(target_power: DbMilliwatts) -> Self {
        Self { target_power }
    }

    /// The optical power the detector needs at its input.
    #[must_use]
    pub fn target_power(&self) -> DbMilliwatts {
        self.target_power
    }

    /// Launch power a transmitter must emit through a path with total gain
    /// `path_loss` (a negative dB value) so that this detector still receives
    /// its target power.
    ///
    /// # Panics
    ///
    /// Panics if `path_loss` is positive — passive optical paths attenuate.
    #[must_use]
    pub fn required_launch_power(&self, path_loss: Decibels) -> DbMilliwatts {
        assert!(
            path_loss.value() <= 0.0,
            "passive path loss must be <= 0 dB, got {path_loss}"
        );
        self.target_power - path_loss
    }
}

impl Default for Photodetector {
    fn default() -> Self {
        Self::new(Self::DEFAULT_TARGET)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_path_requires_target_power() {
        let pd = Photodetector::default();
        assert_eq!(
            pd.required_launch_power(Decibels::ZERO),
            Photodetector::DEFAULT_TARGET
        );
    }

    #[test]
    fn more_loss_requires_more_power() {
        let pd = Photodetector::default();
        let a = pd.required_launch_power(Decibels::new(-1.0));
        let b = pd.required_launch_power(Decibels::new(-3.0));
        assert!(b > a);
    }

    #[test]
    #[should_panic(expected = "must be <= 0 dB")]
    fn positive_loss_panics() {
        let _ = Photodetector::default().required_launch_power(Decibels::new(1.0));
    }
}
