//! Loss and crosstalk coefficients (Table I of the paper).

use onoc_units::Decibels;

/// Power-loss and crosstalk coefficients of the optical elements.
///
/// Defaults reproduce Table I of Luo et al. (DATE 2017):
///
/// | Parameter | Symbol | Value |
/// |-----------|--------|-------|
/// | Propagation loss | `Lp` | −0.274 dB/cm |
/// | Bending loss | `Lb` | −0.005 dB/90° |
/// | Power loss: OFF-state MR | `Lp0` | −0.005 dB |
/// | Power loss: ON-state MR | `Lp1` | −0.5 dB |
/// | Crosstalk loss: OFF-state MR | `Kp0` | −20 dB |
/// | Crosstalk loss: ON-state MR | `Kp1` | −25 dB |
///
/// All values are expressed as (negative) gains in dB so they can be added
/// straight into a dBm power budget.
///
/// # Examples
///
/// ```
/// use onoc_photonics::LossParams;
/// use onoc_units::Decibels;
///
/// let table_i = LossParams::default();
/// assert_eq!(table_i.mr_on, Decibels::new(-0.5));
///
/// let low_loss = LossParams {
///     mr_on: Decibels::new(-0.2),
///     ..LossParams::default()
/// };
/// assert_eq!(low_loss.mr_off, table_i.mr_off);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossParams {
    /// Waveguide propagation loss per centimetre (`Lp`).
    pub propagation_per_cm: Decibels,
    /// Loss per 90° waveguide bend (`Lb`).
    pub bending_per_90deg: Decibels,
    /// Through-port loss of an OFF-state MR (`Lp0`, Eq. 2).
    pub mr_off: Decibels,
    /// ON-state MR loss (`Lp1`): applies to the dropped resonant signal
    /// (Eq. 5, i = m) and to non-resonant signals passing the through port
    /// (Eq. 4, i ≠ m).
    pub mr_on: Decibels,
    /// Crosstalk coefficient of an OFF-state MR (`Kp0`, Eq. 3): residual of
    /// the resonant wavelength that leaks into the drop port even when the
    /// MR is off.
    pub crosstalk_off: Decibels,
    /// Crosstalk coefficient of an ON-state MR (`Kp1`, Eq. 4): residual of
    /// the resonant wavelength that survives at the through port after the
    /// MR dropped it.
    pub crosstalk_on: Decibels,
}

impl Default for LossParams {
    /// Table I of the paper.
    fn default() -> Self {
        Self {
            propagation_per_cm: Decibels::new(-0.274),
            bending_per_90deg: Decibels::new(-0.005),
            mr_off: Decibels::new(-0.005),
            mr_on: Decibels::new(-0.5),
            crosstalk_off: Decibels::new(-20.0),
            crosstalk_on: Decibels::new(-25.0),
        }
    }
}

impl LossParams {
    /// Validates that every coefficient is a finite, non-positive gain.
    ///
    /// # Errors
    ///
    /// Returns a description of the first offending coefficient. Optical
    /// passives cannot amplify, so positive values are almost certainly a
    /// sign-convention mistake by the caller.
    pub fn validate(&self) -> Result<(), String> {
        let fields = [
            ("propagation_per_cm", self.propagation_per_cm),
            ("bending_per_90deg", self.bending_per_90deg),
            ("mr_off", self.mr_off),
            ("mr_on", self.mr_on),
            ("crosstalk_off", self.crosstalk_off),
            ("crosstalk_on", self.crosstalk_on),
        ];
        for (name, v) in fields {
            if !v.is_finite() {
                return Err(format!("loss parameter `{name}` is not finite"));
            }
            if v.value() > 0.0 {
                return Err(format!(
                    "loss parameter `{name}` is a gain ({v}); losses must be <= 0 dB"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table_i() {
        let p = LossParams::default();
        assert_eq!(p.propagation_per_cm, Decibels::new(-0.274));
        assert_eq!(p.bending_per_90deg, Decibels::new(-0.005));
        assert_eq!(p.mr_off, Decibels::new(-0.005));
        assert_eq!(p.mr_on, Decibels::new(-0.5));
        assert_eq!(p.crosstalk_off, Decibels::new(-20.0));
        assert_eq!(p.crosstalk_on, Decibels::new(-25.0));
    }

    #[test]
    fn default_validates() {
        assert!(LossParams::default().validate().is_ok());
    }

    #[test]
    fn positive_loss_rejected() {
        let bad = LossParams {
            mr_on: Decibels::new(0.5),
            ..LossParams::default()
        };
        let err = bad.validate().unwrap_err();
        assert!(err.contains("mr_on"), "unexpected message: {err}");
    }

    #[test]
    fn non_finite_rejected() {
        let bad = LossParams {
            crosstalk_off: Decibels::new(f64::NAN),
            ..LossParams::default()
        };
        assert!(bad.validate().is_err());
    }
}
