//! Signal-to-noise ratio at a photodetector input (Eq. 8).

use onoc_units::{Decibels, Milliwatts};

use crate::{BerConvention, ber, log10_ber};

/// The optical signal and accumulated noise at one photodetector input.
///
/// The noise term bundles the inter-channel crosstalk contributions (Eq. 7)
/// together with the residual `P0` power the OOK laser emits for zeros, as in
/// the paper's simplified SNR model (Eq. 8):
///
/// ```text
/// SNR_λm = P_signal / (P_noise + P0)
/// ```
///
/// # Examples
///
/// ```
/// use onoc_photonics::{BerConvention, SignalNoise};
/// use onoc_units::Milliwatts;
///
/// let sn = SignalNoise::new(Milliwatts::new(0.08), Milliwatts::new(0.0016));
/// assert!((sn.snr_linear() - 50.0).abs() < 1e-9);
/// assert!((sn.snr_db().value() - 16.99).abs() < 0.01);
/// let ber = sn.ber(BerConvention::PaperDb);
/// assert!(ber > 1e-4 && ber < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignalNoise {
    signal: Milliwatts,
    noise: Milliwatts,
}

impl SignalNoise {
    /// Bundles a received signal power with the total noise power at the
    /// same photodetector.
    ///
    /// # Panics
    ///
    /// Panics if the signal is not strictly positive or the noise is
    /// negative. A zero noise floor is rejected too: the paper's model always
    /// includes the non-zero `P0` term.
    #[must_use]
    pub fn new(signal: Milliwatts, noise: Milliwatts) -> Self {
        assert!(
            signal.value() > 0.0,
            "signal power must be strictly positive, got {signal}"
        );
        assert!(
            noise.value() > 0.0,
            "noise power must be strictly positive (P0 never vanishes), got {noise}"
        );
        Self { signal, noise }
    }

    /// The received signal power.
    #[must_use]
    pub fn signal(&self) -> Milliwatts {
        self.signal
    }

    /// The total noise power (crosstalk + `P0`).
    #[must_use]
    pub fn noise(&self) -> Milliwatts {
        self.noise
    }

    /// SNR on the linear scale.
    #[must_use]
    pub fn snr_linear(&self) -> f64 {
        self.signal / self.noise
    }

    /// SNR in dB.
    #[must_use]
    pub fn snr_db(&self) -> Decibels {
        Decibels::from_linear(self.snr_linear())
    }

    /// Bit error rate under the paper's OOK direct-detection model (Eq. 9).
    #[must_use]
    pub fn ber(&self, convention: BerConvention) -> f64 {
        ber(self.snr_linear(), convention)
    }

    /// `log10` of the bit error rate, the quantity plotted in Figs. 6(b)/7.
    #[must_use]
    pub fn log10_ber(&self, convention: BerConvention) -> f64 {
        log10_ber(self.snr_linear(), convention)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn snr_of_equal_powers_is_zero_db() {
        let sn = SignalNoise::new(Milliwatts::new(0.5), Milliwatts::new(0.5));
        assert!(sn.snr_db().value().abs() < 1e-12);
        assert!((sn.snr_linear() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "signal power")]
    fn zero_signal_panics() {
        let _ = SignalNoise::new(Milliwatts::new(0.0), Milliwatts::new(0.1));
    }

    #[test]
    #[should_panic(expected = "noise power")]
    fn zero_noise_panics() {
        let _ = SignalNoise::new(Milliwatts::new(0.1), Milliwatts::new(0.0));
    }

    proptest! {
        #[test]
        fn more_noise_means_worse_ber(
            sig in 0.01f64..1.0,
            n1 in 1e-6f64..1e-2,
            n2 in 1e-2f64..1.0,
        ) {
            let quiet = SignalNoise::new(Milliwatts::new(sig), Milliwatts::new(n1));
            let loud = SignalNoise::new(Milliwatts::new(sig), Milliwatts::new(n2));
            prop_assert!(quiet.ber(BerConvention::PaperDb) <= loud.ber(BerConvention::PaperDb));
            prop_assert!(quiet.ber(BerConvention::Linear) <= loud.ber(BerConvention::Linear));
        }

        #[test]
        fn snr_db_matches_linear(sig in 1e-6f64..1.0, noise in 1e-6f64..1.0) {
            let sn = SignalNoise::new(Milliwatts::new(sig), Milliwatts::new(noise));
            prop_assert!((sn.snr_db().to_linear() - sn.snr_linear()).abs() <= 1e-9 * sn.snr_linear());
        }
    }
}
