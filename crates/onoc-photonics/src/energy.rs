//! Device-level energy coefficients for the link energy model.
//!
//! The paper's analytic objective (DESIGN.md S6) accounts only for laser
//! electrical energy; the measurement-side model in `onoc-sim` adds the
//! two device contributions the photonic-NoC literature treats as
//! first-class (Li et al., *Energy-efficient optical crossbars on chip*;
//! Das et al., arXiv:1608.06972):
//!
//! * **dynamic TX/RX energy per bit** — modulator driver and
//!   photodetector/TIA switching energy, proportional to traffic,
//! * **per-ring MR tuning power** — thermal power holding every
//!   micro-ring resonator on resonance, burned for the whole run
//!   regardless of traffic.
//!
//! [`EnergyParams`] bundles these coefficients; the laser term is derived
//! separately from [`Vcsel`](crate::Vcsel) /
//! [`Photodetector`](crate::Photodetector) and the path-loss budget.

/// Traffic-dependent and always-on energy coefficients of one optical
/// link, excluding the laser (which is sized from the power budget).
///
/// # Examples
///
/// ```
/// use onoc_photonics::EnergyParams;
///
/// let paper = EnergyParams::paper();
/// // 100 bits through one TX/RX pair cost 100 × (tx + rx) fJ of
/// // dynamic energy.
/// let dynamic_fj = 100.0 * (paper.tx_fj_per_bit + paper.rx_fj_per_bit);
/// assert!((dynamic_fj - 10_000.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// Dynamic transmitter energy per bit (modulator + driver), in fJ.
    pub tx_fj_per_bit: f64,
    /// Dynamic receiver energy per bit (photodetector + TIA), in fJ.
    pub rx_fj_per_bit: f64,
    /// Thermal tuning power per micro-ring resonator held on resonance,
    /// in mW. Burned continuously by every MR of the fabric.
    pub mr_tuning_mw: f64,
}

impl EnergyParams {
    /// Representative silicon-photonics values used with the paper's
    /// Table I devices: 50 fJ/bit modulator, 50 fJ/bit receiver, 20 µW
    /// thermal tuning per ring.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            tx_fj_per_bit: 50.0,
            rx_fj_per_bit: 50.0,
            mr_tuning_mw: 0.02,
        }
    }

    /// Validates that every coefficient is finite and nonnegative.
    ///
    /// # Errors
    ///
    /// Returns a description of the first offending coefficient.
    pub fn validate(&self) -> Result<(), String> {
        let fields = [
            ("tx_fj_per_bit", self.tx_fj_per_bit),
            ("rx_fj_per_bit", self.rx_fj_per_bit),
            ("mr_tuning_mw", self.mr_tuning_mw),
        ];
        for (name, v) in fields {
            if !v.is_finite() || v < 0.0 {
                return Err(format!(
                    "energy parameter `{name}` must be finite and >= 0, got {v}"
                ));
            }
        }
        Ok(())
    }
}

impl Default for EnergyParams {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values_are_the_documented_point() {
        let p = EnergyParams::paper();
        assert_eq!(p.tx_fj_per_bit, 50.0);
        assert_eq!(p.rx_fj_per_bit, 50.0);
        assert_eq!(p.mr_tuning_mw, 0.02);
        assert_eq!(EnergyParams::default(), p);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn negative_and_non_finite_values_rejected() {
        let bad = EnergyParams {
            tx_fj_per_bit: -1.0,
            ..EnergyParams::paper()
        };
        assert!(bad.validate().unwrap_err().contains("tx_fj_per_bit"));
        let nan = EnergyParams {
            mr_tuning_mw: f64::NAN,
            ..EnergyParams::paper()
        };
        assert!(nan.validate().is_err());
    }
}
