//! Micro-ring resonator (MR) filter model.

use onoc_units::{Decibels, Nanometers};

use crate::{LossParams, WavelengthGrid, WavelengthId};

/// Switching state of a micro-ring resonator.
///
/// An ON-state MR drops its resonant wavelength towards the photodetector;
/// an OFF-state MR lets every wavelength continue on the waveguide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MrState {
    /// The MR is configured to drop (receive) its resonant wavelength.
    On,
    /// The MR is transparent; signals pass towards the through port.
    Off,
}

impl core::fmt::Display for MrState {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MrState::On => write!(f, "ON"),
            MrState::Off => write!(f, "OFF"),
        }
    }
}

/// A micro-ring resonator with a Lorentzian drop-port response (Eq. 1).
///
/// The −3 dB bandwidth of the filter is `2δ = λ_m / Q`; the fraction of power
/// at wavelength `λ_i` that couples into the drop port is
///
/// ```text
/// Φ(λ_i, λ_m) = δ² / ((λ_i − λ_m)² + δ²)
/// ```
///
/// which is 1 (0 dB) on resonance and rolls off with the square of the
/// spectral distance — the physical origin of inter-channel crosstalk.
///
/// # Examples
///
/// ```
/// use onoc_photonics::MicroRing;
/// use onoc_units::Nanometers;
///
/// let mr = MicroRing::new(Nanometers::new(1550.0), 9600.0);
/// // On resonance the filter is transparent to the drop port.
/// assert!((mr.transmission(Nanometers::new(1550.0)) - 1.0).abs() < 1e-12);
/// // 1.6 nm away (one channel spacing at 8 channels) it attenuates ~26 dB.
/// let phi = mr.transmission_db(Nanometers::new(1551.6));
/// assert!(phi.value() < -25.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MicroRing {
    resonance: Nanometers,
    quality_factor: f64,
}

impl MicroRing {
    /// Creates an MR resonant at `resonance` with quality factor `q`.
    ///
    /// # Panics
    ///
    /// Panics if `resonance` or `q` are not strictly positive.
    #[must_use]
    pub fn new(resonance: Nanometers, q: f64) -> Self {
        assert!(
            resonance.value() > 0.0,
            "resonance wavelength must be strictly positive"
        );
        assert!(q > 0.0, "quality factor must be strictly positive");
        Self {
            resonance,
            quality_factor: q,
        }
    }

    /// The resonance wavelength `λ_m`.
    #[must_use]
    pub fn resonance(&self) -> Nanometers {
        self.resonance
    }

    /// The quality factor `Q = λ_m / 2δ`.
    #[must_use]
    pub fn quality_factor(&self) -> f64 {
        self.quality_factor
    }

    /// The Lorentzian half-width `δ = λ_m / (2Q)`.
    ///
    /// The paper defines `2δ` as the −3 dB bandwidth of the filter.
    #[must_use]
    pub fn delta(&self) -> Nanometers {
        self.resonance / (2.0 * self.quality_factor)
    }

    /// Drop-port power transmission `Φ(λ_i, λ_m)` (Eq. 1), linear scale.
    #[must_use]
    pub fn transmission(&self, at: Nanometers) -> f64 {
        let d2 = self.delta().squared();
        d2 / (at.distance(self.resonance).squared() + d2)
    }

    /// Drop-port power transmission `Φ` in dB.
    #[must_use]
    pub fn transmission_db(&self, at: Nanometers) -> Decibels {
        Decibels::from_linear(self.transmission(at))
    }
}

/// A micro-ring placed on a waveguide, bound to a WDM channel and a state.
///
/// `MrElement` evaluates the port-transfer equations of the paper
/// (Eqs. 2–5): what a signal at channel `i` loses when it crosses this MR
/// (resonant on channel `m`) towards the through port or the drop port.
///
/// # Examples
///
/// ```
/// use onoc_photonics::{LossParams, MrElement, MrState, WavelengthGrid};
///
/// let grid = WavelengthGrid::paper_grid(8);
/// let params = LossParams::default();
/// let mr = MrElement::new(grid.channel(2).unwrap(), MrState::On);
///
/// // The resonant signal is dropped with the ON-state insertion loss.
/// let drop = mr.drop_loss(grid.channel(2).unwrap(), &grid, &params);
/// assert_eq!(drop, params.mr_on);
///
/// // A neighbouring channel leaks into the drop port via the Lorentzian.
/// let leak = mr.drop_loss(grid.channel(3).unwrap(), &grid, &params);
/// assert!(leak.value() < -20.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MrElement {
    channel: WavelengthId,
    state: MrState,
}

impl MrElement {
    /// Creates an element resonant on `channel` in the given `state`.
    #[must_use]
    pub fn new(channel: WavelengthId, state: MrState) -> Self {
        Self { channel, state }
    }

    /// The WDM channel this MR is resonant on (`λ_m`).
    #[must_use]
    pub fn channel(&self) -> WavelengthId {
        self.channel
    }

    /// The switching state.
    #[must_use]
    pub fn state(&self) -> MrState {
        self.state
    }

    /// Loss suffered by a signal on `signal` continuing to the through port
    /// (Eqs. 2 and 4).
    ///
    /// * OFF-state: every wavelength loses `Lp0`.
    /// * ON-state, non-resonant signal: loses `Lp1`.
    /// * ON-state, resonant signal: only the `Kp1` residue survives — the
    ///   signal was dropped here. Callers that route a live signal through an
    ///   ON-state MR at its own wavelength almost certainly violate the
    ///   wavelength-disjointness constraint upstream.
    #[must_use]
    pub fn through_loss(
        &self,
        signal: WavelengthId,
        _grid: &WavelengthGrid,
        params: &LossParams,
    ) -> Decibels {
        match (self.state, signal == self.channel) {
            (MrState::Off, _) => params.mr_off,
            (MrState::On, false) => params.mr_on,
            (MrState::On, true) => params.crosstalk_on,
        }
    }

    /// Loss suffered by a signal on `signal` emerging at the drop port
    /// (Eqs. 3 and 5).
    ///
    /// * Resonant + ON: the intended drop, insertion loss `Lp1`.
    /// * Resonant + OFF: only the `Kp0` residue leaks to the drop port.
    /// * Non-resonant (either state): the Lorentzian leakage
    ///   `Φ(λ_m, λ_signal)` — the inter-channel crosstalk term of Eq. 7.
    #[must_use]
    pub fn drop_loss(
        &self,
        signal: WavelengthId,
        grid: &WavelengthGrid,
        params: &LossParams,
    ) -> Decibels {
        match (self.state, signal == self.channel) {
            (MrState::On, true) => params.mr_on,
            (MrState::Off, true) => params.crosstalk_off,
            (_, false) => grid
                .micro_ring(self.channel)
                .transmission_db(grid.wavelength(signal)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn paper_mr() -> MicroRing {
        MicroRing::new(Nanometers::new(1550.0), 9600.0)
    }

    #[test]
    fn delta_matches_q_definition() {
        // 2δ = λ/Q = 1550/9600 nm.
        let mr = paper_mr();
        assert!((2.0 * mr.delta().value() - 1550.0 / 9600.0).abs() < 1e-12);
    }

    #[test]
    fn resonant_transmission_is_unity() {
        let mr = paper_mr();
        assert!((mr.transmission(Nanometers::new(1550.0)) - 1.0).abs() < 1e-15);
        assert!(mr.transmission_db(Nanometers::new(1550.0)).value().abs() < 1e-12);
    }

    #[test]
    fn half_power_at_delta() {
        // At |λi − λm| = δ the Lorentzian is exactly 1/2 (−3 dB point).
        let mr = paper_mr();
        let at = mr.resonance() + mr.delta();
        assert!((mr.transmission(at) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn adjacent_channel_leakage_magnitude() {
        // δ ≈ 0.0807 nm; one 1.6 nm spacing away: Φ = δ²/(CS²+δ²) ≈ 2.54e-3.
        let mr = paper_mr();
        let phi = mr.transmission(Nanometers::new(1551.6));
        assert!((phi - 2.54e-3).abs() < 5e-5, "phi = {phi}");
    }

    #[test]
    fn through_port_rules() {
        let grid = WavelengthGrid::paper_grid(8);
        let params = LossParams::default();
        let m = grid.channel(4).unwrap();
        let other = grid.channel(5).unwrap();

        let off = MrElement::new(m, MrState::Off);
        assert_eq!(off.through_loss(m, &grid, &params), params.mr_off);
        assert_eq!(off.through_loss(other, &grid, &params), params.mr_off);

        let on = MrElement::new(m, MrState::On);
        assert_eq!(on.through_loss(other, &grid, &params), params.mr_on);
        assert_eq!(on.through_loss(m, &grid, &params), params.crosstalk_on);
    }

    #[test]
    fn drop_port_rules() {
        let grid = WavelengthGrid::paper_grid(8);
        let params = LossParams::default();
        let m = grid.channel(1).unwrap();
        let far = grid.channel(7).unwrap();

        let on = MrElement::new(m, MrState::On);
        assert_eq!(on.drop_loss(m, &grid, &params), params.mr_on);

        let off = MrElement::new(m, MrState::Off);
        assert_eq!(off.drop_loss(m, &grid, &params), params.crosstalk_off);

        // Non-resonant leakage falls off with spectral distance.
        let near_leak = on.drop_loss(grid.channel(2).unwrap(), &grid, &params);
        let far_leak = on.drop_loss(far, &grid, &params);
        assert!(far_leak.value() < near_leak.value());
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn zero_q_panics() {
        let _ = MicroRing::new(Nanometers::new(1550.0), 0.0);
    }

    proptest! {
        #[test]
        fn transmission_is_bounded(offset in -50.0f64..50.0) {
            let mr = paper_mr();
            let t = mr.transmission(Nanometers::new(1550.0 + offset));
            prop_assert!((0.0..=1.0).contains(&t));
        }

        #[test]
        fn transmission_is_symmetric(offset in 0.0f64..50.0) {
            let mr = paper_mr();
            let hi = mr.transmission(Nanometers::new(1550.0 + offset));
            let lo = mr.transmission(Nanometers::new(1550.0 - offset));
            prop_assert!((hi - lo).abs() < 1e-12);
        }

        #[test]
        fn transmission_decreases_with_distance(a in 0.0f64..25.0, b in 0.0f64..25.0) {
            prop_assume!(a < b);
            let mr = paper_mr();
            let near = mr.transmission(Nanometers::new(1550.0 + a));
            let far = mr.transmission(Nanometers::new(1550.0 + b));
            prop_assert!(far <= near);
        }

        #[test]
        fn higher_q_filters_more_sharply(q1 in 100.0f64..5_000.0, q2 in 5_000.0f64..50_000.0) {
            let wide = MicroRing::new(Nanometers::new(1550.0), q1);
            let sharp = MicroRing::new(Nanometers::new(1550.0), q2);
            let at = Nanometers::new(1551.6);
            prop_assert!(sharp.transmission(at) < wide.transmission(at));
        }
    }
}
