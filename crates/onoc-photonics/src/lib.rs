//! Photonic device models for WDM optical networks-on-chip.
//!
//! This crate implements the device-level physics used by the wavelength
//! allocation study of Luo et al. (DATE 2017):
//!
//! * [`WavelengthGrid`] — an equally spaced WDM comb covering one free
//!   spectral range (FSR),
//! * [`MicroRing`] — the Lorentzian micro-ring resonator (MR) filter response
//!   (Eq. 1 of the paper) and the OFF/ON-state through/drop port transfer
//!   functions (Eqs. 2–5),
//! * [`LossParams`] — the loss/crosstalk coefficients of Table I,
//! * [`Vcsel`] / [`Photodetector`] — the OOK laser source and the receiver,
//! * [`SignalNoise`] / [`ber()`] — the SNR (Eq. 8) and BER (Eq. 9) models,
//! * [`EnergyParams`] — TX/RX dynamic energy per bit and per-ring MR
//!   tuning power for the measurement-side energy model in `onoc-sim`.
//!
//! Everything here is *device level*: path-level accumulation over a concrete
//! ring topology lives in `onoc-topology`.
//!
//! # Example: inter-channel crosstalk of one MR
//!
//! ```
//! use onoc_photonics::{MicroRing, WavelengthGrid};
//! use onoc_units::Nanometers;
//!
//! let grid = WavelengthGrid::paper_grid(8); // FSR 12.8 nm, Q 9600, 8 channels
//! let mr = grid.micro_ring(grid.channel(0).unwrap());
//! // An adjacent channel (1.6 nm away) leaks ~ -26 dB into the drop port.
//! let leak = mr.transmission_db(grid.wavelength(grid.channel(1).unwrap()));
//! assert!(leak.value() < -25.0 && leak.value() > -27.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ber;
mod detector;
mod energy;
mod grid;
mod laser;
mod mr;
mod params;
mod snr;

pub use ber::{BerConvention, ber, log10_ber};
pub use detector::Photodetector;
pub use energy::EnergyParams;
pub use grid::{WavelengthGrid, WavelengthId};
pub use laser::Vcsel;
pub use mr::{MicroRing, MrElement, MrState};
pub use params::LossParams;
pub use snr::SignalNoise;
