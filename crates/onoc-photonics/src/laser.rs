//! On-chip VCSEL laser source model.

use onoc_units::{DbMilliwatts, Milliwatts};

/// An on-chip Vertical-Cavity Surface-Emitting Laser with OOK modulation.
///
/// Data are transmitted by current modulation: the laser emits `power_on`
/// for a logical 1 and `power_off` for a logical 0. Ideally no light is
/// emitted for a 0, but practical modulators leak, so the paper treats the
/// non-zero `P0` as part of the receiver noise (Eq. 8).
///
/// The `wall_plug_efficiency` converts emitted optical power into consumed
/// electrical power for the energy model (DESIGN.md, substitution S6).
///
/// # Examples
///
/// ```
/// use onoc_photonics::Vcsel;
/// use onoc_units::DbMilliwatts;
///
/// let laser = Vcsel::paper_laser();
/// assert_eq!(laser.power_on(), DbMilliwatts::new(-10.0));
/// assert_eq!(laser.power_off(), DbMilliwatts::new(-30.0));
/// // Extinction ratio is 20 dB.
/// assert_eq!((laser.power_on() - laser.power_off()).value(), 20.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Vcsel {
    power_on: DbMilliwatts,
    power_off: DbMilliwatts,
    wall_plug_efficiency: f64,
}

impl Vcsel {
    /// Wall-plug efficiency assumed by the reproduction when converting
    /// optical power into electrical energy per bit.
    pub const DEFAULT_EFFICIENCY: f64 = 0.3;

    /// Creates a laser emitting `power_on` dBm for ones and `power_off` dBm
    /// for zeros.
    ///
    /// # Panics
    ///
    /// Panics if `power_off >= power_on` (the extinction ratio must be
    /// positive) or if `wall_plug_efficiency` is outside `(0, 1]`.
    #[must_use]
    pub fn new(power_on: DbMilliwatts, power_off: DbMilliwatts, wall_plug_efficiency: f64) -> Self {
        assert!(
            power_off < power_on,
            "OOK laser requires power_off < power_on (got {power_off} >= {power_on})"
        );
        assert!(
            wall_plug_efficiency > 0.0 && wall_plug_efficiency <= 1.0,
            "wall-plug efficiency must be in (0, 1], got {wall_plug_efficiency}"
        );
        Self {
            power_on,
            power_off,
            wall_plug_efficiency,
        }
    }

    /// The laser used in the paper's results: `Pv(1) = −10 dBm`,
    /// `Pv(0) = −30 dBm`.
    #[must_use]
    pub fn paper_laser() -> Self {
        Self::new(
            DbMilliwatts::new(-10.0),
            DbMilliwatts::new(-30.0),
            Self::DEFAULT_EFFICIENCY,
        )
    }

    /// Optical power emitted for a logical 1 (`Pv`).
    #[must_use]
    pub fn power_on(&self) -> DbMilliwatts {
        self.power_on
    }

    /// Optical power emitted for a logical 0 (`P0`).
    #[must_use]
    pub fn power_off(&self) -> DbMilliwatts {
        self.power_off
    }

    /// Extinction ratio `power_on / power_off` in dB.
    #[must_use]
    pub fn extinction_ratio(&self) -> onoc_units::Decibels {
        self.power_on - self.power_off
    }

    /// Wall-plug efficiency (emitted optical power / consumed electrical
    /// power).
    #[must_use]
    pub fn wall_plug_efficiency(&self) -> f64 {
        self.wall_plug_efficiency
    }

    /// Electrical power drawn while emitting `optical` output.
    #[must_use]
    pub fn electrical_power(&self, optical: Milliwatts) -> Milliwatts {
        optical / self.wall_plug_efficiency
    }
}

impl Default for Vcsel {
    fn default() -> Self {
        Self::paper_laser()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_laser_values() {
        let l = Vcsel::paper_laser();
        assert!((l.power_on().to_milliwatts().value() - 0.1).abs() < 1e-12);
        assert!((l.power_off().to_milliwatts().value() - 0.001).abs() < 1e-12);
        assert_eq!(l.extinction_ratio().value(), 20.0);
    }

    #[test]
    fn electrical_power_scales_by_efficiency() {
        let l = Vcsel::paper_laser();
        let e = l.electrical_power(Milliwatts::new(0.3));
        assert!((e.value() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power_off < power_on")]
    fn inverted_levels_panic() {
        let _ = Vcsel::new(DbMilliwatts::new(-30.0), DbMilliwatts::new(-10.0), 0.3);
    }

    #[test]
    #[should_panic(expected = "efficiency")]
    fn zero_efficiency_panics() {
        let _ = Vcsel::new(DbMilliwatts::new(-10.0), DbMilliwatts::new(-30.0), 0.0);
    }
}
