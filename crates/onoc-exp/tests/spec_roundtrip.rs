//! Property-style round-trip coverage for the spec serializers: any
//! builder-valid [`ScenarioSpec`] must survive
//! `parse(serialize(spec)) == spec` through both the TOML-subset and the
//! JSON serializer, and the two document forms must agree.

use onoc_exp::{
    AllocatorSpec, DefragKind, HeuristicKind, KernelKind, Scale, ScenarioSpec, ServiceSpec,
    WorkloadSpec,
};
use onoc_sim::{DynamicPolicy, FlowAllocPolicy, InjectionMode};
use onoc_topology::NodeId;
use onoc_traffic::TrafficPattern;
use onoc_wa::{GrantPolicy, ObjectiveSet};
use proptest::prelude::*;

/// Draws one arbitrary-but-valid spec from the sampled raw material.
/// (The vendored proptest stub has no `Strategy` composition for enums,
/// so the enum choices are decoded from sampled integers.)
#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
fn decode_spec(
    name_salt: usize,
    seed: u64,
    scale_pick: usize,
    objectives_pick: usize,
    nodes_pick: usize,
    wavelengths: usize,
    workload_pick: usize,
    allocator_pick: usize,
    rate_millis: usize,
    stages: usize,
    lanes: usize,
) -> ScenarioSpec {
    let scale = [Scale::Paper, Scale::Quick, Scale::Smoke][scale_pick % 3];
    let objectives = [
        ObjectiveSet::TimeEnergy,
        ObjectiveSet::TimeBer,
        ObjectiveSet::TimeEnergyBer,
    ][objectives_pick % 3];
    #[allow(clippy::cast_precision_loss)]
    let rate = (rate_millis % 1000) as f64 / 1000.0;
    let patterns = [
        TrafficPattern::UniformRandom,
        TrafficPattern::Transpose,
        TrafficPattern::BitReversal,
        TrafficPattern::BitComplement,
        TrafficPattern::NearestNeighbor,
        TrafficPattern::Hotspot {
            hotspots: vec![NodeId(0), NodeId(1)],
            fraction: 0.25,
        },
    ];
    // Open-loop workloads may use any ring ≥ 2; closed-loop kernels keep
    // task counts ≤ nodes, and the paper app pins 16.
    let nodes = 2 + nodes_pick % 31;
    let (workload, nodes) = match workload_pick % 4 {
        0 => (WorkloadSpec::PaperApp, 16),
        1 => (
            WorkloadSpec::Kernel {
                kind: [
                    KernelKind::Pipeline,
                    KernelKind::ForkJoin,
                    KernelKind::Butterfly,
                    KernelKind::ReductionTree,
                ][stages % 4],
                stages: 1 + stages % 3,
                exec_kcc: 2.5,
                volume_kbits: 4.0,
                mapping_seed: seed ^ 0xabcd,
            },
            16.max(nodes),
        ),
        2 => (
            WorkloadSpec::Synthetic {
                pattern: patterns[name_salt % patterns.len()].clone(),
                injection_rate: rate,
                message_bits: 256.0,
                horizon: 4_000,
                burstiness: if seed.is_multiple_of(2) {
                    None
                } else {
                    Some((40.0, 160.0))
                },
            },
            nodes,
        ),
        _ => (
            WorkloadSpec::Sweep {
                patterns: vec![
                    patterns[name_salt % patterns.len()].clone(),
                    TrafficPattern::UniformRandom,
                ],
                injection_rates: vec![0.004, rate.clamp(0.001, 0.9)],
                wavelengths: vec![1 + wavelengths % 16, 8],
                ring_sizes: vec![nodes, 16],
                message_bits: 512.0,
                horizon: 6_000,
                burstiness: None,
            },
            nodes,
        ),
    };
    let closed_loop = matches!(
        workload,
        WorkloadSpec::PaperApp | WorkloadSpec::Kernel { .. }
    );
    let sweep = matches!(workload, WorkloadSpec::Sweep { .. });
    let nw = 1 + wavelengths % 64;
    let allocator = if sweep {
        AllocatorSpec::Dynamic {
            policy: if allocator_pick.is_multiple_of(2) {
                DynamicPolicy::Single
            } else {
                DynamicPolicy::Greedy { cap: 1 + lanes % 8 }
            },
        }
    } else if closed_loop {
        match allocator_pick % 4 {
            0 => AllocatorSpec::Nsga2 {
                population: lanes.is_multiple_of(2).then_some(40 + lanes),
                generations: stages.is_multiple_of(2).then_some(10 + stages),
            },
            1 => AllocatorSpec::Heuristic {
                kind: HeuristicKind::all()[lanes % 5],
            },
            2 => AllocatorSpec::Counts { counts: vec![1; 6] },
            _ => AllocatorSpec::Dynamic {
                policy: DynamicPolicy::Single,
            },
        }
    } else {
        match allocator_pick % 3 {
            0 => AllocatorSpec::Dynamic {
                policy: DynamicPolicy::Greedy { cap: 1 + lanes % 4 },
            },
            1 => AllocatorSpec::FlowSynthesis {
                policy: match lanes % 3 {
                    0 => FlowAllocPolicy::FirstFit,
                    1 => FlowAllocPolicy::Relaxed,
                    _ => FlowAllocPolicy::Proportional {
                        max_lanes_per_flow: 1 + lanes % 8,
                    },
                },
                spares: (lanes % 2) * (nw.saturating_sub(1) / 2),
            },
            _ => AllocatorSpec::Striped {
                lanes_per_flow: 1 + lanes % nw,
            },
        }
    };
    // Closed-loop injection applies to the message-stream workloads only.
    let injection = if closed_loop {
        InjectionMode::Open
    } else {
        match (rate_millis + stages) % 3 {
            0 => InjectionMode::Open,
            1 => InjectionMode::Credit {
                window: 1 + stages % 8,
            },
            _ => InjectionMode::Ecn {
                threshold: 0.25 + ((rate_millis % 3) as f64) * 0.25,
            },
        }
    };
    // The `[service]` table only composes with session-bearing workloads
    // (synthetic churn / trace replay); exercise it on the synthetic arm.
    let service = matches!(workload, WorkloadSpec::Synthetic { .. }).then(|| {
        let defrag = match stages % 4 {
            0 => None,
            1 => Some(DefragKind::Never),
            2 => Some(DefragKind::Threshold),
            _ => Some(DefragKind::Idle),
        };
        ServiceSpec {
            sessions: lanes.is_multiple_of(2).then_some(10 + stages),
            arrival_rate: seed.is_multiple_of(2).then_some(0.001 + rate * 0.05),
            mean_hold: seed.is_multiple_of(3).then_some(250.0),
            max_demand: lanes.is_multiple_of(3).then_some(1 + lanes % nw),
            policy: allocator_pick
                .is_multiple_of(2)
                .then_some(GrantPolicy::Shared),
            defrag,
            defrag_threshold: (defrag == Some(DefragKind::Threshold)).then_some(0.5),
            defrag_idle: (defrag == Some(DefragKind::Idle)).then_some(1 + stages as u64 * 100),
            max_wait: seed.is_multiple_of(5).then_some(1_000),
            trace_demand: None,
            stretch: None,
        }
    });
    let mut builder = ScenarioSpec::builder(format!("prop-{name_salt}"))
        .seed(seed)
        .scale(scale)
        .objectives(objectives)
        .nodes(nodes)
        .wavelengths(nw)
        .workload(workload)
        .allocator(allocator)
        .injection(injection);
    if let Some(service) = service {
        builder = builder.service(service);
    }
    builder
        .build()
        .expect("decoded specs are valid by construction")
}

proptest! {
    #[test]
    fn specs_round_trip_through_toml_and_json(
        name_salt in 0usize..1000,
        seed in 0u64..1_000_000,
        scale_pick in 0usize..3,
        objectives_pick in 0usize..3,
        nodes_pick in 0usize..31,
        wavelengths in 0usize..64,
        workload_pick in 0usize..4,
        allocator_pick in 0usize..4,
        rate_millis in 0usize..1000,
        stages in 0usize..12,
        lanes in 0usize..16,
    ) {
        let spec = decode_spec(
            name_salt, seed, scale_pick, objectives_pick, nodes_pick,
            wavelengths, workload_pick, allocator_pick, rate_millis,
            stages, lanes,
        );
        let toml = spec.to_toml();
        let from_toml = ScenarioSpec::from_toml_str(&toml)
            .expect("serialized TOML re-parses");
        prop_assert_eq!(&from_toml, &spec);

        let json = spec.to_json();
        let from_json = ScenarioSpec::from_json_str(&json)
            .expect("serialized JSON re-parses");
        prop_assert_eq!(&from_json, &spec);

        // The two document forms describe the same value.
        prop_assert_eq!(spec.to_value().to_json(), json);
    }
}

#[test]
fn second_serialization_is_a_fixed_point() {
    let spec = decode_spec(7, 99, 1, 2, 5, 11, 2, 1, 250, 4, 3);
    let once = spec.to_toml();
    let twice = ScenarioSpec::from_toml_str(&once).unwrap().to_toml();
    assert_eq!(once, twice, "serialize ∘ parse must be idempotent");
}
