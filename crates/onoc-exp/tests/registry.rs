//! Registry completeness + golden CSV headers: every experiment named by
//! `onoc list` must run (at smoke scale) and must emit its canonical
//! machine-readable artifact under the documented header — downstream
//! extraction scripts key on these.

use onoc_exp::{Registry, RunContext, Scale};
use onoc_traffic::SweepOutcome;

/// The canonical artifact per experiment: `(experiment, table, header)`.
fn golden_headers() -> Vec<(&'static str, &'static str, String)> {
    vec![
        ("table1", "table1", "parameter,value".into()),
        (
            "table2",
            "table2",
            "nw,valid_ours,valid_paper,front_ours,front_paper,unique_valid_ours".into(),
        ),
        ("fig6a", "fig6a", "nw,exec_kcc,bit_energy_fj,counts".into()),
        ("fig6b", "fig6b", "nw,exec_kcc,log10_ber,counts".into()),
        ("fig7", "fig7", "exec_kcc,log10_ber,kind".into()),
        ("anchors", "anchors", "anchor,paper,ours".into()),
        ("sim-validation", "sim_validation", "study,a,b,c,d".into()),
        (
            "baselines",
            "baselines",
            "method,exec_kcc,bit_energy_fj,log10_ber,counts".into(),
        ),
        ("ablation", "ablation", "study,a,b,c,d".into()),
        (
            "mapping-explore",
            "mapping_explore",
            "method,exec_kcc".into(),
        ),
        (
            "moea-comparison",
            "moea_comparison",
            "method,evaluations,front_size,hypervolume".into(),
        ),
        (
            "dynamic-vs-static",
            "dynamic_vs_static",
            "nw,static_opt_kcc,dynamic_single_kcc,dynamic_full_kcc,blocked".into(),
        ),
        (
            "traffic-sweep",
            "traffic_sweep",
            SweepOutcome::CSV_HEADER.to_string(),
        ),
        (
            "saturation",
            "saturation",
            "wavelengths,workload,offered_bits_per_cycle,accepted_bits_per_cycle,\
             latency_mean,latency_p99,occupancy"
                .into(),
        ),
        (
            "sustained-saturation",
            "sustained_saturation",
            "allocator,injection_rate,offered_bits_per_cycle,accepted_bits_per_cycle,\
             stall_mean,credit_occupancy,latency_p99"
                .into(),
        ),
        (
            "sustained-knee",
            "sustained_knee",
            "allocator,wavelengths,knee_rate,knee_offered_bits_per_cycle,\
             plateau_bits_per_cycle,evaluations"
                .into(),
        ),
        (
            "energy-vs-load",
            "energy_vs_load",
            "allocator,injection_rate,offered_bits_per_cycle,\
             accepted_bits_per_cycle,energy_pj_per_bit,energy_static_frac,\
             latency_p99"
                .into(),
        ),
        (
            "saturation-timeline",
            "saturation_timeline",
            "injection_rate,window_start,offered,admitted,retired,\
             accepted_bits_per_cycle,stall_fraction,gate_held,in_flight,\
             lane_utilization,fairness"
                .into(),
        ),
        (
            "reliability-vs-fault-rate",
            "reliability_vs_fault_rate",
            "transport,ber,offered_bits_per_cycle,goodput_bits_per_cycle,\
             failed_attempts,retx_bits,lost,latency_p99,energy_pj_per_bit"
                .into(),
        ),
        (
            "self-healing-vs-outage",
            "self_healing_vs_outage",
            "regime,policy,delivered,goodput_bits_per_cycle,failed_attempts,\
             retx_bits,lost,outages,heals,recovery_p50,recovery_p95,\
             recovery_p99,energy_pj_per_bit"
                .into(),
        ),
        (
            "workload-sweep",
            "workload_sweep",
            "workload,tasks,comms,pairs,front,exec_lo,exec_hi,fj_lo,fj_hi,ber_lo,ber_hi".into(),
        ),
        (
            "online-allocation",
            "online_allocation",
            "defrag,arrival_rate,offered,admitted,blocked,blocking_rate,\
             admission_p50,admission_p95,admission_p99,mean_wait,defrag_runs,\
             defrag_moves,mean_largest_free_run,mean_occupancy_jain,\
             incremental_packs,full_repack_packs"
                .into(),
        ),
    ]
}

#[test]
fn every_listed_experiment_runs_and_emits_its_golden_artifact() {
    let registry = Registry::standard();
    let golden = golden_headers();
    assert_eq!(
        registry.len(),
        golden.len(),
        "golden table must cover the whole registry"
    );
    let ctx = RunContext::new(Scale::Smoke).with_threads(2);
    for (experiment_name, table_name, header) in &golden {
        let experiment = registry
            .get(experiment_name)
            .unwrap_or_else(|| panic!("{experiment_name} missing from the registry"));
        let report = experiment.run(&ctx);
        assert!(
            !report.title.is_empty() && !report.tables().is_empty(),
            "{experiment_name} must produce at least one table"
        );
        let table = report
            .tables()
            .into_iter()
            .find(|t| t.name() == *table_name)
            .unwrap_or_else(|| {
                panic!(
                    "{experiment_name} lost its canonical `{table_name}` artifact; tables: {:?}",
                    report
                        .tables()
                        .iter()
                        .map(|t| t.name().to_string())
                        .collect::<Vec<_>>()
                )
            });
        assert_eq!(
            &table.csv_header(),
            header,
            "{experiment_name}/{table_name} golden header changed"
        );
        assert!(
            !table.rows().is_empty(),
            "{experiment_name}/{table_name} must have rows"
        );
        // The fenced block downstream tools grep for.
        let rendered = report.render();
        assert!(
            rendered.contains(&format!("--- begin csv: {table_name} ---")),
            "{experiment_name} render lost the CSV fence"
        );
    }
}

#[test]
fn registry_order_matches_the_documented_index() {
    let names = Registry::standard().names();
    assert_eq!(
        names,
        vec![
            "table1",
            "table2",
            "fig6a",
            "fig6b",
            "fig7",
            "anchors",
            "sim-validation",
            "baselines",
            "ablation",
            "mapping-explore",
            "moea-comparison",
            "dynamic-vs-static",
            "traffic-sweep",
            "saturation",
            "sustained-saturation",
            "sustained-knee",
            "energy-vs-load",
            "saturation-timeline",
            "reliability-vs-fault-rate",
            "self-healing-vs-outage",
            "workload-sweep",
            "online-allocation",
        ]
    );
}

#[test]
fn experiments_are_seed_deterministic() {
    let registry = Registry::standard();
    let ctx = RunContext::new(Scale::Smoke).with_seed(11).with_threads(2);
    // A GA-backed and a sweep-backed experiment; both must reproduce
    // bit-identical artifacts for the same context.
    for name in ["table2", "traffic-sweep"] {
        let exp = registry.get(name).unwrap();
        let a = exp.run(&ctx);
        let b = exp.run(&ctx);
        assert_eq!(a.tables(), b.tables(), "{name} is not deterministic");
    }
}
