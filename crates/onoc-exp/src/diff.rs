//! Field-by-field comparison of report artifacts (`onoc diff`).
//!
//! Corpus runs (`onoc run --all specs/ --json --out dir`) leave one JSON
//! artifact per spec; this module compares two such artifacts — same
//! spec, different commits — cell by cell, so paper-scale regression
//! runs are checkable with an exit code instead of eyeballs.
//!
//! Numeric cells compare under a relative tolerance (plus a small
//! absolute epsilon so zeroes compare cleanly); everything else must
//! match exactly. Differences are reported as human-readable drift
//! lines naming the table, row, column and both values.

use crate::value::Value;

/// Everything that differs between two report artifacts.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// One line per drift, in document order.
    pub drifts: Vec<String>,
    /// Cells compared (drifted or not), for the summary line.
    pub cells_compared: usize,
}

impl DiffReport {
    /// Whether the artifacts agree within the tolerance.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.drifts.is_empty()
    }
}

/// Absolute epsilon under which two numeric cells always compare equal
/// (keeps `0` vs `0.0000` and formatting noise out of the drift list).
const ABS_EPSILON: f64 = 1e-9;

/// Compares two report artifacts (the JSON produced by
/// [`Report::to_json`](crate::Report::to_json)).
///
/// `tolerance` is the allowed relative difference for numeric cells
/// (e.g. `0.0` for exact, `0.05` for 5%).
///
/// # Errors
///
/// Returns a description when either document is not a report artifact
/// (missing `title`/`tables`).
pub fn diff_reports(a: &Value, b: &Value, tolerance: f64) -> Result<DiffReport, String> {
    let mut drifts = Vec::new();
    let mut cells = 0usize;

    let title_a = report_title(a, "first")?;
    let title_b = report_title(b, "second")?;
    if title_a != title_b {
        drifts.push(format!("title: {title_a:?} vs {title_b:?}"));
    }

    let tables_a = report_tables(a, "first")?;
    let tables_b = report_tables(b, "second")?;

    for ta in &tables_a {
        let name = table_name(ta);
        let Some(tb) = tables_b.iter().find(|t| table_name(t) == name) else {
            drifts.push(format!("table `{name}`: missing from the second artifact"));
            continue;
        };
        diff_table(name, ta, tb, tolerance, &mut drifts, &mut cells);
    }
    for tb in &tables_b {
        let name = table_name(tb);
        if !tables_a.iter().any(|t| table_name(t) == name) {
            drifts.push(format!("table `{name}`: missing from the first artifact"));
        }
    }

    Ok(DiffReport {
        drifts,
        cells_compared: cells,
    })
}

fn report_title<'a>(doc: &'a Value, which: &str) -> Result<&'a str, String> {
    doc.get("title")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("the {which} artifact has no `title` (not a report JSON?)"))
}

fn report_tables<'a>(doc: &'a Value, which: &str) -> Result<Vec<&'a Value>, String> {
    Ok(doc
        .get("tables")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("the {which} artifact has no `tables` array (not a report JSON?)"))?
        .iter()
        .collect())
}

fn table_name(table: &Value) -> &str {
    table
        .get("name")
        .and_then(Value::as_str)
        .unwrap_or("<unnamed>")
}

fn string_rows(table: &Value, key: &str) -> Vec<Vec<String>> {
    table
        .get(key)
        .and_then(Value::as_array)
        .map(|rows| {
            rows.iter()
                .map(|row| match row.as_array() {
                    Some(cells) => cells.iter().map(cell_to_string).collect(),
                    None => vec![cell_to_string(row)],
                })
                .collect()
        })
        .unwrap_or_default()
}

fn cell_to_string(cell: &Value) -> String {
    match cell {
        Value::Str(s) => s.clone(),
        other => other.to_json(),
    }
}

fn columns_of(table: &Value) -> Vec<String> {
    table
        .get("columns")
        .and_then(Value::as_array)
        .map(|cols| cols.iter().map(cell_to_string).collect())
        .unwrap_or_default()
}

fn diff_table(
    name: &str,
    a: &Value,
    b: &Value,
    tolerance: f64,
    drifts: &mut Vec<String>,
    cells: &mut usize,
) {
    let cols_a = columns_of(a);
    let cols_b = columns_of(b);
    if cols_a != cols_b {
        drifts.push(format!(
            "table `{name}`: columns differ ({} vs {})",
            cols_a.join(","),
            cols_b.join(",")
        ));
        return;
    }
    let rows_a = string_rows(a, "rows");
    let rows_b = string_rows(b, "rows");
    if rows_a.len() != rows_b.len() {
        drifts.push(format!(
            "table `{name}`: {} rows vs {} rows",
            rows_a.len(),
            rows_b.len()
        ));
        return;
    }
    for (i, (ra, rb)) in rows_a.iter().zip(&rows_b).enumerate() {
        for (j, (ca, cb)) in ra.iter().zip(rb).enumerate() {
            *cells += 1;
            if cells_agree(ca, cb, tolerance) {
                continue;
            }
            let column = cols_a.get(j).map_or_else(|| j.to_string(), Clone::clone);
            drifts.push(format!(
                "table `{name}` row {i} column `{column}`: {ca} vs {cb}"
            ));
        }
        if ra.len() != rb.len() {
            drifts.push(format!(
                "table `{name}` row {i}: {} cells vs {}",
                ra.len(),
                rb.len()
            ));
        }
    }
}

/// Two numbers agree within the relative tolerance (or the absolute
/// epsilon) — the closeness rule shared by the artifact differ and the
/// bench energy gate.
pub(crate) fn values_agree(x: f64, y: f64, tolerance: f64) -> bool {
    let diff = (x - y).abs();
    diff <= ABS_EPSILON || diff <= tolerance * x.abs().max(y.abs())
}

/// Two cells agree when equal as strings, or both numeric and within the
/// relative tolerance (or the absolute epsilon).
fn cells_agree(a: &str, b: &str, tolerance: f64) -> bool {
    if a == b {
        return true;
    }
    match (a.parse::<f64>(), b.parse::<f64>()) {
        (Ok(x), Ok(y)) => values_agree(x, y, tolerance),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::{Report, Table};

    fn artifact(latency: &str, extra_table: bool) -> Value {
        let mut report = Report::new("Scenario `x`");
        let mut table = Table::new("scenario", &["mode", "latency_mean", "conflicts"]);
        table.push_row(vec!["dynamic-single".into(), latency.into(), "0".into()]);
        report.push_table(table);
        if extra_table {
            let mut t = Table::new("extra", &["k"]);
            t.push_row(vec!["v".into()]);
            report.push_table(t);
        }
        Value::parse_json(&report.to_json()).unwrap()
    }

    #[test]
    fn identical_artifacts_are_clean() {
        let a = artifact("12.50", false);
        let diff = diff_reports(&a, &a, 0.0).unwrap();
        assert!(diff.is_clean());
        assert_eq!(diff.cells_compared, 3);
    }

    #[test]
    fn numeric_drift_respects_the_tolerance() {
        let a = artifact("100.00", false);
        let b = artifact("104.00", false);
        // 4% apart: dirty at exact, clean at 5%.
        let exact = diff_reports(&a, &b, 0.0).unwrap();
        assert_eq!(exact.drifts.len(), 1);
        assert!(
            exact.drifts[0].contains("latency_mean"),
            "{:?}",
            exact.drifts
        );
        assert!(exact.drifts[0].contains("100.00") && exact.drifts[0].contains("104.00"));
        let loose = diff_reports(&a, &b, 0.05).unwrap();
        assert!(loose.is_clean(), "{:?}", loose.drifts);
    }

    #[test]
    fn string_drift_is_always_reported() {
        let a = artifact("1.0", false);
        let mut report = Report::new("Scenario `x`");
        let mut table = Table::new("scenario", &["mode", "latency_mean", "conflicts"]);
        table.push_row(vec!["dynamic-greedy".into(), "1.0".into(), "0".into()]);
        report.push_table(table);
        let b = Value::parse_json(&report.to_json()).unwrap();
        let diff = diff_reports(&a, &b, 1.0).unwrap();
        assert_eq!(diff.drifts.len(), 1);
        assert!(diff.drifts[0].contains("dynamic-single"));
    }

    #[test]
    fn missing_tables_and_shape_changes_are_drifts() {
        let a = artifact("1.0", true);
        let b = artifact("1.0", false);
        let diff = diff_reports(&a, &b, 0.0).unwrap();
        assert_eq!(diff.drifts.len(), 1);
        assert!(diff.drifts[0].contains("`extra`"));
        assert!(diff.drifts[0].contains("second"));
        // Symmetric direction.
        let diff = diff_reports(&b, &a, 0.0).unwrap();
        assert!(diff.drifts[0].contains("first"));
    }

    #[test]
    fn non_reports_are_a_clean_error() {
        let junk = Value::parse_json("{\"x\": 1}").unwrap();
        let a = artifact("1.0", false);
        assert!(diff_reports(&junk, &a, 0.0).is_err());
        assert!(diff_reports(&a, &junk, 0.0).is_err());
    }
}
