//! The experiment layer of the ring-wdm-onoc workspace: declarative
//! scenarios, the named-experiment registry, and structured artifacts.
//!
//! The paper's evaluation is a grid of experiments over the
//! (architecture × workload × allocator × scale) space. This crate makes
//! that grid *data*:
//!
//! * [`ScenarioSpec`] — a typed, validated spec naming one point of the
//!   space, with a builder and TOML-subset/JSON round-trip serialization
//!   (hand-rolled in [`value`]; the build container has no crates.io
//!   access),
//! * [`scenario::run_spec`] — the generic interpreter: any spec file runs
//!   without new Rust code,
//! * [`Experiment`] + [`Registry`] — the 20 named paper
//!   experiments/extensions (the 15 former hand-rolled `onoc-bench`
//!   binaries plus the closed-loop `sustained-saturation` /
//!   `sustained-knee` studies, the `energy-vs-load` curve, the
//!   windowed `saturation-timeline`, and the fault-injection
//!   `reliability-vs-fault-rate` study), each returning a structured
//!   [`Report`],
//! * [`artifact`] — the table/CSV/JSON output layer replacing per-binary
//!   `println!` plumbing,
//! * [`diff`] — field-by-field comparison of two report artifacts
//!   (`onoc diff a.json b.json`), non-zero exit on drift,
//! * the `onoc` CLI (`onoc list`, `onoc run fig6a --quick`,
//!   `onoc run --spec scenario.toml`, `onoc sweep …`) — thin lookups over
//!   the registry and the spec runner.
//!
//! # Example: a named experiment
//!
//! ```
//! use onoc_exp::{Registry, RunContext, Scale};
//!
//! let registry = Registry::standard();
//! let anchors = registry.get("anchors").unwrap();
//! let report = anchors.run(&RunContext::new(Scale::Smoke));
//! assert!(!report.tables().is_empty());
//! ```
//!
//! # Example: a declarative scenario
//!
//! ```
//! use onoc_exp::{ScenarioSpec, scenario::run_spec};
//!
//! let spec = ScenarioSpec::from_toml_str(r#"
//! name = "frugal-point"
//! scale = "smoke"
//!
//! [arch]
//! nodes = 16
//! wavelengths = 4
//!
//! [workload]
//! kind = "paper-app"
//!
//! [allocator]
//! kind = "counts"
//! counts = [1, 1, 1, 1, 1, 1]
//! "#).unwrap();
//! let report = run_spec(&spec, 2).unwrap();
//! assert_eq!(report.tables()[0].rows()[0][1], "38.0000"); // kcc anchor
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod bench;
pub mod diff;
pub mod experiment;
pub mod experiments;
pub mod scenario;
pub mod serve;
pub mod spec;
pub mod value;

pub use artifact::{Block, Report, Table};
pub use diff::{DiffReport, diff_reports};
pub use experiment::{Experiment, Registry, RunContext, default_threads};
pub use scenario::{ScenarioError, capture_trace, run_spec};
pub use serve::{build_requests, run_serve, service_config};
pub use spec::{
    AimdSpec, AllocatorSpec, ArchSpec, DefragKind, EnergySpec, EngineSpec, FaultSpec, HealingSpec,
    HeuristicKind, KernelKind, ReportKind, Scale, ScenarioSpec, ScenarioSpecBuilder, ServiceSpec,
    SpecError, TelemetrySpec, TransportSpec, WorkloadSpec,
};
pub use value::{ParseError, Value};
